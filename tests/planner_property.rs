//! Property test for the batch planner: planned/grouped execution is
//! **bit-identical** to the per-query `answer_batch` path — across epoch
//! layouts, shuffled batch orders, and worker thread counts.
//!
//! The planner's whole contract is that it only changes *who pays* for
//! snapshot resolution, never the answers. This test generates random
//! heterogeneous batches (mixed budgets, grouping-friendly skewed
//! ranges, shared-topic and solo weighted queries), shuffles their order
//! with a seeded RNG, and asserts exact equality of the full answer
//! structs on four engines: the same 2400-set pool frozen in 1, 2, 3 and
//! 4 epochs (the epoch-merge machinery must be invisible), each checked
//! at 1 and 4 worker threads.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{Model, NodeCosts, SamplingContext, SeedQuery, SeedQueryEngine};

const POOL_SETS: u64 = 2400;

/// The same deterministic 2400-set pool frozen under four epoch
/// layouts: [2400], [1200, 1200], [800 × 3], [600 × 4]. Sampling is
/// indexed, so all four engines hold bit-identical pools — only the
/// epoch boundaries (and with them the snapshot-merge paths) differ.
fn engines() -> &'static Vec<(String, SeedQueryEngine, SeedQueryEngine)> {
    static ENGINES: OnceLock<Vec<(String, SeedQueryEngine, SeedQueryEngine)>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let g = gen::erdos_renyi(400, 2400, 19).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(29);
        [1u64, 2, 3, 4]
            .iter()
            .map(|&epochs| {
                let build = |threads: usize| {
                    let per = POOL_SETS / epochs;
                    let mut e = SeedQueryEngine::sample(&ctx, per).with_threads(threads);
                    for _ in 1..epochs {
                        e.extend(&ctx, per);
                    }
                    assert_eq!(e.pool().len() as u64, POOL_SETS);
                    assert_eq!(e.pool().epoch_boundaries().len() as u64, epochs);
                    e
                };
                (format!("{epochs}-epoch layout"), build(1), build(4))
            })
            .collect()
    })
}

/// Shared topic weight vectors (two topics over 400 nodes). Shared
/// `Arc`s with stable topic ids are what lets the planner form
/// [`GroupKey::Topic`](stop_and_stare::GroupKey::Topic) groups.
fn topic_weights(topic: usize) -> Arc<[f64]> {
    static TOPICS: OnceLock<Vec<Arc<[f64]>>> = OnceLock::new();
    TOPICS.get_or_init(|| {
        (0..2)
            .map(|t| {
                (0..400).map(|v| if v % (3 + t) == 0 { 1.0 + t as f64 } else { 0.0 }).collect()
            })
            .collect()
    })[topic]
        .clone()
}

/// One shared per-node cost table (400 nodes) for the budgeted flavors.
/// Like topic weights, the shared `Arc` is the sharing discipline real
/// cost-aware callers would use; budgeted queries still group by range
/// alone (snapshots are cost-agnostic).
fn shared_costs() -> NodeCosts {
    static COSTS: OnceLock<Arc<[f64]>> = OnceLock::new();
    NodeCosts::per_node(
        COSTS.get_or_init(|| (0..400u32).map(|v| 0.5 + f64::from(v % 4) * 0.25).collect()).clone(),
    )
}

/// Decodes one generated query spec: budget, one of four skewed ranges,
/// and a flavor — plain, one of two shared topics, a solo weighted
/// query (no topic id, so the planner must isolate it), or a budgeted
/// query (uniform-cost degeneration or shared per-node costs).
fn decode(k: usize, range_pick: u32, flavor: u32) -> SeedQuery {
    let total = POOL_SETS as u32;
    let range = match range_pick {
        0 => 0..total,
        1 => 0..total / 2,
        2 => total / 2..total,
        _ => 0..total / 4,
    };
    let q = SeedQuery::top_k(k).over_range(range.clone());
    match flavor {
        0..=4 => q,
        5..=6 => q.with_root_weights(topic_weights(0)).with_topic(100),
        7 => q.with_root_weights(topic_weights(1)).with_topic(101),
        8 => q.with_root_weights(topic_weights(0)),
        // budgeted flavors share the plain snapshot groups
        9..=10 => SeedQuery::budgeted(k as f64).over_range(range),
        _ => SeedQuery::budgeted(k as f64 * 0.75).with_costs(shared_costs()).over_range(range),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn planned_execution_is_bit_identical_across_layouts_orders_and_threads(
        specs in prop_vec((1usize..=12, 0u32..4, 0u32..12), 1..24),
        shuffle_seed in 0u64..1_000_000,
    ) {
        let mut batch: Vec<SeedQuery> =
            specs.iter().map(|&(k, r, f)| decode(k, r, f)).collect();
        batch.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));

        // Reference: the per-query path on the single-epoch engine.
        let reference = engines()[0].1.answer_batch(&batch).unwrap();
        for (layout, single, threaded) in engines() {
            for (threads, engine) in [("1 thread", single), ("4 threads", threaded)] {
                prop_assert_eq!(
                    &engine.answer_planned(&batch).unwrap(),
                    &reference,
                    "planned != per-query on {} at {}",
                    layout,
                    threads
                );
                prop_assert_eq!(
                    &engine.answer_batch(&batch).unwrap(),
                    &reference,
                    "per-query path drifted on {} at {}",
                    layout,
                    threads
                );
            }
        }
    }
}
