//! Grow-while-serving linearizability: queries racing the single-writer
//! [`Grower`](stop_and_stare::Grower) must each be answered
//! bit-identically to a direct query against *some* sealed prefix of the
//! final pool, and a store save racing a concurrent seal must persist a
//! valid sealed prefix. The thread count is overridable with
//! `SNS_CONCURRENCY_THREADS` so CI can pin the 1/2/8 matrix; the
//! answers themselves must not depend on it.

use std::collections::BTreeSet;
use std::sync::mpsc;

use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{Model, SamplingContext, SeedQuery, SeedQueryEngine};

const INITIAL: u64 = 800;
const GROW_STEPS: u64 = 4;
const GROW_SETS: u64 = 400;
const WORKERS: usize = 3;
const QUERIES_PER_WORKER: usize = 12;

/// Thread counts to exercise: the CI matrix pins one via the env var;
/// local runs sweep the single-threaded and parallel engines.
fn thread_counts() -> Vec<usize> {
    match std::env::var("SNS_CONCURRENCY_THREADS") {
        Ok(v) => vec![v.parse().expect("SNS_CONCURRENCY_THREADS must be a thread count")],
        Err(_) => vec![1, 4],
    }
}

fn fixture(seed: u64) -> stop_and_stare::Graph {
    gen::rmat(900, 5400, gen::RmatParams::GRAPH500, seed)
        .build(WeightModel::WeightedCascade)
        .unwrap()
}

/// Interleaves `Grower::extend` with concurrent queries and checks every
/// answer against a direct query on the one-shot reference engine over
/// the same sealed prefix.
#[test]
fn concurrent_answers_are_bit_identical_to_a_sealed_prefix() {
    for threads in thread_counts() {
        for seed in [21u64, 22] {
            let g = fixture(seed);
            let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
            let engine = SeedQueryEngine::sample(&ctx, INITIAL).with_threads(threads);

            // The only pool lengths the directory ever publishes.
            let sealed: BTreeSet<u32> = (0..=GROW_STEPS)
                .map(|s| u32::try_from(INITIAL + s * GROW_SETS).expect("test pools fit u32"))
                .collect();

            let (done_tx, done_rx) = mpsc::channel::<()>();
            let collected: Vec<Vec<stop_and_stare::SeedAnswer>> = std::thread::scope(|scope| {
                let engine_ref = &engine;
                let ctx_ref = &ctx;
                scope.spawn(move || {
                    for _ in 0..GROW_STEPS {
                        let outcome = engine_ref.grower().extend(ctx_ref, GROW_SETS);
                        assert!(outcome.seal().epoch().is_some(), "growth must publish");
                    }
                    drop(done_tx);
                });
                let workers: Vec<_> = (0..WORKERS)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut answers = Vec::new();
                            let mut last_end = 0u32;
                            for i in 0..QUERIES_PER_WORKER {
                                let k = 1 + (w + i) % 8;
                                let answer = engine_ref.answer(&SeedQuery::top_k(k)).unwrap();
                                // Generations only move forward, so each
                                // worker's pinned prefix is monotone.
                                assert!(answer.range.end >= last_end, "prefix went backwards");
                                last_end = answer.range.end;
                                answers.push(answer);
                            }
                            answers
                        })
                    })
                    .collect();
                // Keep at least one query in flight after the last
                // publish so the final generation is also exercised.
                let _ = done_rx.recv();
                let tail = engine_ref.answer(&SeedQuery::top_k(5)).unwrap();
                let mut collected: Vec<_> =
                    workers.into_iter().map(|w| w.join().expect("worker panicked")).collect();
                collected.push(vec![tail]);
                collected
            });

            // Reference: the same context sampled to the final size in
            // one shot — prefix determinism makes its first L sets
            // bit-identical to every sealed prefix the workers pinned.
            let final_len = INITIAL + GROW_STEPS * GROW_SETS;
            assert_eq!(engine.pool().len() as u64, final_len);
            let reference = SeedQueryEngine::sample(&ctx, final_len).with_threads(threads);
            for (w, answers) in collected.iter().enumerate() {
                for (i, answer) in answers.iter().enumerate() {
                    assert!(
                        sealed.contains(&answer.range.end),
                        "worker {w} query {i} pinned unsealed prefix {:?} (threads {threads})",
                        answer.range
                    );
                    let k = answer.seeds.len().max(1);
                    let direct = reference
                        .answer(&SeedQuery::top_k(k).over_range(0..answer.range.end))
                        .unwrap();
                    assert_eq!(
                        answer, &direct,
                        "worker {w} query {i} diverged from its sealed prefix \
                         (threads {threads}, seed {seed})"
                    );
                }
            }
        }
    }
}

/// A store save racing a concurrent seal must persist one of the sealed
/// generations — never a torn pool — and the persisted prefix must
/// reload and answer bit-identically to the reference.
#[test]
fn store_save_racing_a_concurrent_seal_persists_a_sealed_prefix() {
    let threads = thread_counts()[0];
    let seed = 27u64;
    let g = fixture(seed);
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
    let engine = SeedQueryEngine::sample(&ctx, INITIAL).with_threads(threads);

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("concurrent-save-{threads}"));
    std::fs::create_dir_all(&dir).expect("create store dir");

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let ctx_ref = &ctx;
        let grow = scope.spawn(move || {
            for _ in 0..2 {
                engine_ref.grower().extend(ctx_ref, GROW_SETS);
            }
        });
        // The save pins whatever generation is current when it starts;
        // concurrent publishes must not tear it.
        engine.save(&dir).expect("save during concurrent growth");
        grow.join().expect("grower panicked");
    });

    let loaded = SeedQueryEngine::from_store(&dir, &ctx).expect("reload persisted pool");
    let loaded_len = loaded.pool().len() as u64;
    let sealed: BTreeSet<u64> = (0..=2).map(|s| INITIAL + s * GROW_SETS).collect();
    assert!(sealed.contains(&loaded_len), "persisted a torn pool of {loaded_len} sets");

    let reference = SeedQueryEngine::sample(&ctx, loaded_len).with_threads(threads);
    let restored = loaded.answer(&SeedQuery::top_k(8)).unwrap();
    let direct = reference.answer(&SeedQuery::top_k(8)).unwrap();
    assert_eq!(restored, direct, "persisted prefix diverged from the reference");
}
