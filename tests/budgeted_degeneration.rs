//! Degeneration property of budgeted selection: with uniform costs and
//! `budget = k`, a budgeted query **is** the top-k query — same seeds,
//! same covered count, same floats, bit for bit. The ratio heap orders
//! by `gain / 1.0`, which is order-isomorphic to the plain gain heap
//! (u32 → f64 is exact and division by one changes nothing), the
//! padding walks the same ascending ids, and the single-node fallback
//! needs a *strict* improvement it can never get — so any divergence is
//! a bug, not noise.
//!
//! Checked across four epoch layouts of the same deterministic pool,
//! skewed offset ranges, forced/excluded constraint combinations, and
//! 1 vs 4 engine threads.

use std::sync::OnceLock;

use proptest::prelude::*;
use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{Model, SamplingContext, SeedQuery, SeedQueryEngine};

const POOL_SETS: u64 = 2400;

/// The same deterministic 2400-set pool frozen under four epoch
/// layouts: [2400], [1200, 1200], [800 × 3], [600 × 4], each at 1 and 4
/// worker threads — sampling is indexed, so all hold identical pools
/// and only the snapshot/merge machinery differs.
fn engines() -> &'static Vec<(String, SeedQueryEngine, SeedQueryEngine)> {
    static ENGINES: OnceLock<Vec<(String, SeedQueryEngine, SeedQueryEngine)>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let g = gen::erdos_renyi(400, 2400, 23).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(31);
        [1u64, 2, 3, 4]
            .iter()
            .map(|&epochs| {
                let build = |threads: usize| {
                    let per = POOL_SETS / epochs;
                    let mut e = SeedQueryEngine::sample(&ctx, per).with_threads(threads);
                    for _ in 1..epochs {
                        e.extend(&ctx, per);
                    }
                    e
                };
                (format!("{epochs}-epoch layout"), build(1), build(4))
            })
            .collect()
    })
}

/// Decodes a constraint spec into (forced, excluded) node lists —
/// disjoint by construction (forced from one residue class, excluded
/// from another), sized to stay inside every generated k.
fn constraints(pick: u32) -> (Vec<u32>, Vec<u32>) {
    match pick {
        0 => (vec![], vec![]),
        1 => (vec![7], vec![]),
        2 => (vec![], vec![0, 13]),
        3 => (vec![7, 21], vec![0, 13]),
        _ => (vec![3], vec![50, 51, 52]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn uniform_costs_with_budget_k_are_bit_identical_to_top_k(
        k in 2usize..=12,
        range_pick in 0u32..4,
        constraint_pick in 0u32..5,
    ) {
        let total = POOL_SETS as u32;
        let range = match range_pick {
            0 => 0..total,
            1 => 0..total / 2,
            2 => total / 2..total,
            _ => total / 4..total / 2,
        };
        let (forced, excluded) = constraints(constraint_pick);
        let topk = SeedQuery::top_k(k)
            .over_range(range.clone())
            .with_forced(forced.clone())
            .with_excluded(excluded.clone());
        let budgeted = SeedQuery::budgeted(k as f64)
            .over_range(range)
            .with_forced(forced)
            .with_excluded(excluded);

        // Reference: the plain path on the single-epoch engine.
        let reference = engines()[0].1.answer(&topk).unwrap();
        for (layout, single, threaded) in engines() {
            for (threads, engine) in [("1 thread", single), ("4 threads", threaded)] {
                prop_assert_eq!(
                    &engine.answer(&budgeted).unwrap(),
                    &reference,
                    "budgeted != top-k on {} at {}",
                    layout,
                    threads
                );
                prop_assert_eq!(
                    &engine.answer(&topk).unwrap(),
                    &reference,
                    "top-k drifted on {} at {}",
                    layout,
                    threads
                );
            }
        }
    }
}
