//! Failure injection and boundary-condition tests across the stack.

use stop_and_stare::graph::{gen, io, GraphBuilder, GraphError, WeightModel};
use stop_and_stare::{Dssa, Model, Params, SamplingContext, Ssa};

/// Malformed inputs fail loudly with actionable errors, never panic.
#[test]
fn malformed_edge_lists_are_rejected() {
    for (text, expect_line) in [
        ("0\n", 1usize),
        ("0 1 0.5\n0 x\n", 2),
        ("0 1 2.5e400\n", 1), // weight overflows f32 parse -> inf, caught at build or parse
        ("a b\n", 1),
    ] {
        match io::read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, expect_line, "{text:?}"),
            Ok(builder) => {
                // the inf-weight case parses (f32: inf) and must then be
                // rejected at build time
                assert!(
                    builder.build(WeightModel::Provided).is_err(),
                    "{text:?} should fail somewhere"
                );
            }
            Err(other) => panic!("{text:?}: unexpected error {other}"),
        }
    }
}

/// Graphs with isolated nodes, sink-only nodes and zero-weight edges are
/// all legal and the algorithms behave sensibly on them.
#[test]
fn degenerate_graphs_run_cleanly() {
    // 10 nodes, one dead (p = 0) edge, eight isolated nodes.
    let mut b = GraphBuilder::new();
    b.set_num_nodes(10);
    b.add_edge(0, 1, 0.0);
    let g = b.build(WeightModel::Provided).unwrap();

    let params = Params::new(3, 0.3, 0.1).unwrap();
    for model in [Model::IndependentCascade, Model::LinearThreshold] {
        let ctx = SamplingContext::new(&g, model).with_seed(1);
        let r = Dssa::new(params).run(&ctx).unwrap();
        assert_eq!(r.seeds.len(), 3);
        // every node influences exactly itself: Î ≈ k
        assert!((r.influence_estimate - 3.0).abs() < 1.0, "{model}: Î = {}", r.influence_estimate);
    }
}

/// k ≥ n: all nodes are returned, no panic, estimate ≈ n on a dead graph.
#[test]
fn k_larger_than_n() {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(4);
    b.add_edge(0, 1, 0.0);
    let g = b.build(WeightModel::Provided).unwrap();
    let params = Params::new(100, 0.3, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
    for r in [Ssa::new(params).run(&ctx).unwrap(), Dssa::new(params).run(&ctx).unwrap()] {
        let mut seeds = r.seeds.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 1, 2, 3]);
    }
}

/// Parameter validation rejects out-of-domain (k, ε, δ) combinations.
#[test]
fn parameter_domain_enforced() {
    assert!(Params::new(0, 0.1, 0.1).is_err());
    assert!(Params::new(1, -0.1, 0.1).is_err());
    assert!(Params::new(1, 0.1, 1.5).is_err());
    // ε beyond 1 − 1/e makes the guarantee vacuous
    assert!(Params::new(1, 0.64, 0.1).is_err());
    // boundary-adjacent values are accepted
    assert!(Params::new(1, 0.63, 0.999).is_ok());
    assert!(Params::new(1, 1e-6, 1e-12).is_ok());
}

/// LT reverse walks require Σ w(u,v) ≤ 1; a graph violating it is
/// detectable, and normalize_for_lt repairs it.
#[test]
fn lt_constraint_detection_and_repair() {
    let mut b = GraphBuilder::new();
    b.add_edge(0, 2, 0.9);
    b.add_edge(1, 2, 0.9);
    let g = b.clone().build(WeightModel::Provided).unwrap();
    assert!(!g.lt_compatible());

    b.normalize_for_lt(true);
    let g = b.build(WeightModel::Provided).unwrap();
    assert!(g.lt_compatible());
    // and LT algorithms run on the repaired graph
    let params = Params::new(1, 0.3, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(4);
    assert_eq!(Dssa::new(params).run(&ctx).unwrap().seeds.len(), 1);
}

/// Extreme ε/δ near their boundaries still terminate (via cap or
/// conditions) on a small graph.
#[test]
fn boundary_epsilon_delta_terminate() {
    let g = gen::erdos_renyi(60, 240, 3).build(WeightModel::WeightedCascade).unwrap();
    // very lax: huge ε (close to limit), huge δ
    let lax = Params::new(2, 0.6, 0.9).unwrap();
    // strict-ish but tiny graph keeps it fast
    let strict = Params::new(2, 0.05, 1e-6).unwrap();
    for params in [lax, strict] {
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(8);
        let r = Dssa::new(params).run(&ctx).unwrap();
        assert_eq!(r.seeds.len(), 2);
    }
}

/// Binary graph round-trip composes with the full algorithm stack.
#[test]
fn io_roundtrip_then_run() {
    let g = gen::rmat(500, 3000, gen::RmatParams::GRAPH500, 6)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    let g2 = io::read_binary(&buf[..]).unwrap();

    let params = Params::new(5, 0.3, 0.1).unwrap();
    let r1 = Dssa::new(params)
        .run(&SamplingContext::new(&g, Model::IndependentCascade).with_seed(3))
        .unwrap();
    let r2 = Dssa::new(params)
        .run(&SamplingContext::new(&g2, Model::IndependentCascade).with_seed(3))
        .unwrap();
    assert_eq!(r1.seeds, r2.seeds, "round-tripped graph must behave identically");
}

/// Fault injection against the persistent pool store: truncations at
/// every section boundary, single-bit flips, manifest deletion, version
/// skew in both directions, stale temp files. Every fault must surface
/// as a typed [`stop_and_stare::StoreError`] from the strict loader and
/// either a typed error or a *verified* valid-prefix recovery from the
/// recovering loader — never a panic, never silently wrong answers.
// Test-only reference model keyed by query id; iteration order is never
// observed, so hash order cannot reach an assertion.
#[allow(clippy::disallowed_types)]
mod store_faults {
    use std::collections::HashMap;
    use std::fs;
    use std::path::{Path, PathBuf};

    use proptest::prelude::*;
    use stop_and_stare::graph::{gen, Graph, WeightModel};
    use stop_and_stare::{
        Model, Recovery, SamplingContext, SeedAnswer, SeedQuery, SeedQueryEngine,
    };

    const MANIFEST: &str = "MANIFEST";
    const SEG0: &str = "epoch-00000.rr";
    const SEG1: &str = "epoch-00001.rr";
    /// 300 + 200 + 100 sets across three sealed epochs.
    const TOTAL_SETS: u64 = 600;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sns-store-faults-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_graph() -> Graph {
        gen::erdos_renyi(200, 1000, 33).build(WeightModel::WeightedCascade).unwrap()
    }

    /// Rewrite `file` inside `dir` through a byte-level mutator.
    fn patch(dir: &Path, file: &str, mutate: impl FnOnce(&mut Vec<u8>)) {
        let path = dir.join(file);
        let mut bytes = fs::read(&path).unwrap();
        mutate(&mut bytes);
        fs::write(&path, &bytes).unwrap();
    }

    fn flip_bit(dir: &Path, file: &str, at: usize) {
        patch(dir, file, |b| {
            let i = at.min(b.len() - 1);
            b[i] ^= 0x01;
        });
    }

    fn truncate_to(dir: &Path, file: &str, len: usize) {
        patch(dir, file, |b| b.truncate(len.min(b.len())));
    }

    /// Overwrite the little-endian `u32` version field at offset 4.
    fn set_version(dir: &Path, file: &str, version: u32) {
        patch(dir, file, |b| b[4..8].copy_from_slice(&version.to_le_bytes()));
    }

    /// Reset `dst` to a byte-exact copy of the pristine store in `src`.
    fn restore(src: &Path, dst: &Path) {
        let _ = fs::remove_dir_all(dst);
        fs::create_dir_all(dst).unwrap();
        for entry in fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }

    /// ≥ 30 distinct faults; each must yield a typed strict-load error and
    /// a recovery outcome whose surviving prefix answers bit-identically
    /// to a pool sampled directly to that prefix.
    #[test]
    fn corruption_sweep_never_panics_and_recovers_valid_prefixes() {
        let g = small_graph();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(33);

        let mut baked = SeedQueryEngine::sample(&ctx, 300);
        baked.extend(&ctx, 200);
        baked.extend(&ctx, 100);
        assert_eq!(baked.pool().epoch_boundaries(), &[300, 500, 600]);

        let pristine = scratch("pristine");
        baked.save(&pristine).unwrap();
        let probe = SeedQuery::top_k(3);

        // Reference answers for every epoch prefix a recovery can return:
        // a prefix of the stored pool must answer exactly like a pool
        // sampled from scratch to the same length (determinism pins the
        // per-sample RNG streams to sample indices, not pool history).
        let mut reference: HashMap<u64, SeedAnswer> = HashMap::new();
        reference.insert(TOTAL_SETS, baked.answer(&probe).unwrap());
        for kept in [300u64, 500] {
            reference.insert(kept, SeedQueryEngine::sample(&ctx, kept).answer(&probe).unwrap());
        }

        let seg1_len = fs::metadata(pristine.join(SEG1)).unwrap().len() as usize;
        let man_len = fs::metadata(pristine.join(MANIFEST)).unwrap().len() as usize;

        // Segment layout: magic[0..4] version[4..8] epoch[8..12]
        // start[12..16] sets[16..20] entries[20..28] edges[28..36]
        // width[36..40] | offsets | node data | checksum[-12..-4] magic[-4..].
        // Manifest: magic version fingerprint … epoch table checksum[-8..].
        type Fault = Box<dyn Fn(&Path)>;
        let faults: Vec<(&'static str, Fault)> = vec![
            // -- segment truncation at every section boundary --
            ("seg: empty file", Box::new(|d: &Path| truncate_to(d, SEG1, 0))),
            ("seg: cut after magic", Box::new(|d: &Path| truncate_to(d, SEG1, 4))),
            ("seg: cut after version", Box::new(|d: &Path| truncate_to(d, SEG1, 8))),
            ("seg: cut inside header", Box::new(|d: &Path| truncate_to(d, SEG1, 39))),
            ("seg: header only", Box::new(|d: &Path| truncate_to(d, SEG1, 40))),
            ("seg: cut after offsets", Box::new(|d: &Path| truncate_to(d, SEG1, 40 + 200 * 4))),
            (
                "seg: cut before footer",
                Box::new(move |d: &Path| truncate_to(d, SEG1, seg1_len - 12)),
            ),
            (
                "seg: cut before end magic",
                Box::new(move |d: &Path| truncate_to(d, SEG1, seg1_len - 4)),
            ),
            ("seg: one byte short", Box::new(move |d: &Path| truncate_to(d, SEG1, seg1_len - 1))),
            // -- segment bit flips, field by field --
            ("seg: flip magic", Box::new(|d: &Path| flip_bit(d, SEG1, 0))),
            (
                "seg: version 1 -> 0 (file older than reader)",
                Box::new(|d: &Path| set_version(d, SEG1, 0)),
            ),
            (
                "seg: version 1 -> 2 (file newer than reader)",
                Box::new(|d: &Path| set_version(d, SEG1, 2)),
            ),
            ("seg: flip epoch id", Box::new(|d: &Path| flip_bit(d, SEG1, 8))),
            ("seg: flip start boundary", Box::new(|d: &Path| flip_bit(d, SEG1, 12))),
            ("seg: flip set count", Box::new(|d: &Path| flip_bit(d, SEG1, 16))),
            ("seg: flip entry count", Box::new(|d: &Path| flip_bit(d, SEG1, 20))),
            ("seg: flip edges delta", Box::new(|d: &Path| flip_bit(d, SEG1, 28))),
            ("seg: flip offset width", Box::new(|d: &Path| flip_bit(d, SEG1, 36))),
            ("seg: flip first offset", Box::new(|d: &Path| flip_bit(d, SEG1, 40))),
            ("seg: flip payload byte", Box::new(move |d: &Path| flip_bit(d, SEG1, seg1_len / 2))),
            (
                "seg: flip stored checksum",
                Box::new(move |d: &Path| flip_bit(d, SEG1, seg1_len - 12)),
            ),
            ("seg: flip end magic", Box::new(move |d: &Path| flip_bit(d, SEG1, seg1_len - 1))),
            // -- segment structural damage --
            ("seg: trailing garbage", Box::new(|d: &Path| patch(d, SEG1, |b| b.push(0xAB)))),
            (
                "seg: zero length with intact manifest",
                Box::new(|d: &Path| fs::write(d.join(SEG1), b"").unwrap()),
            ),
            ("seg: epoch 1 deleted", Box::new(|d: &Path| fs::remove_file(d.join(SEG1)).unwrap())),
            (
                "seg: epoch 0 deleted (no prefix survives)",
                Box::new(|d: &Path| fs::remove_file(d.join(SEG0)).unwrap()),
            ),
            (
                "seg: files swapped",
                Box::new(|d: &Path| {
                    let a = fs::read(d.join(SEG0)).unwrap();
                    let b = fs::read(d.join(SEG1)).unwrap();
                    fs::write(d.join(SEG0), &b).unwrap();
                    fs::write(d.join(SEG1), &a).unwrap();
                }),
            ),
            // -- manifest damage (always a hard error: the epoch table
            //    itself can no longer be trusted) --
            ("manifest: deleted", Box::new(|d: &Path| fs::remove_file(d.join(MANIFEST)).unwrap())),
            ("manifest: empty file", Box::new(|d: &Path| truncate_to(d, MANIFEST, 0))),
            ("manifest: cut after magic", Box::new(|d: &Path| truncate_to(d, MANIFEST, 4))),
            ("manifest: cut after version", Box::new(|d: &Path| truncate_to(d, MANIFEST, 8))),
            (
                "manifest: checksum stripped",
                Box::new(move |d: &Path| truncate_to(d, MANIFEST, man_len - 8)),
            ),
            (
                "manifest: one byte short",
                Box::new(move |d: &Path| truncate_to(d, MANIFEST, man_len - 1)),
            ),
            ("manifest: flip magic", Box::new(|d: &Path| flip_bit(d, MANIFEST, 0))),
            (
                "manifest: version 1 -> 2 (file newer than reader)",
                Box::new(|d: &Path| set_version(d, MANIFEST, 2)),
            ),
            (
                "manifest: version 1 -> 0 (file older than reader)",
                Box::new(|d: &Path| set_version(d, MANIFEST, 0)),
            ),
            ("manifest: flip fingerprint byte", Box::new(|d: &Path| flip_bit(d, MANIFEST, 12))),
            (
                "manifest: flip epoch table byte",
                Box::new(move |d: &Path| flip_bit(d, MANIFEST, man_len - 20)),
            ),
            (
                "manifest: flip checksum",
                Box::new(move |d: &Path| flip_bit(d, MANIFEST, man_len - 1)),
            ),
            (
                "manifest: trailing garbage",
                Box::new(|d: &Path| patch(d, MANIFEST, |b| b.extend_from_slice(b"junk"))),
            ),
        ];
        assert!(faults.len() >= 30, "sweep must cover >= 30 faults, has {}", faults.len());

        let dir = scratch("sweep");
        for (name, fault) in &faults {
            restore(&pristine, &dir);
            fault(&dir);

            let err = match SeedQueryEngine::from_store(&dir, &ctx) {
                Ok(_) => panic!("case {name:?}: strict load accepted a damaged store"),
                Err(e) => e,
            };
            assert!(!err.to_string().is_empty(), "case {name:?}: error must render");

            match SeedQueryEngine::from_store_recovering(&dir, &ctx) {
                Ok((engine, Recovery::Recovered { epochs_lost, sets_lost })) => {
                    assert!(epochs_lost >= 1, "case {name:?}: recovery must report losses");
                    let kept = TOTAL_SETS - sets_lost;
                    assert_eq!(
                        engine.pool().len() as u64,
                        kept,
                        "case {name:?}: prefix length mismatch"
                    );
                    if kept > 0 {
                        let got = engine.answer(&probe).unwrap();
                        let want = reference.get(&kept).unwrap_or_else(|| {
                            panic!("case {name:?}: {kept} sets is not an epoch prefix")
                        });
                        assert_eq!(
                            &got, want,
                            "case {name:?}: recovered prefix must answer bit-identically \
                             to a pool sampled to {kept} sets"
                        );
                    }
                }
                Ok((_, Recovery::Intact)) => {
                    panic!("case {name:?}: damaged store reported as intact")
                }
                Err(e) => {
                    assert!(!e.to_string().is_empty(), "case {name:?}: error must render")
                }
            }
        }

        let _ = fs::remove_dir_all(&pristine);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Leftover `.tmp` files from an interrupted commit are ignored by the
    /// loader and silently replaced by the next save.
    #[test]
    fn stale_temp_files_are_ignored() {
        let g = small_graph();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(9);
        let mut engine = SeedQueryEngine::sample(&ctx, 250);
        let dir = scratch("stale-tmp");
        engine.save(&dir).unwrap();

        fs::write(dir.join("MANIFEST.tmp"), b"half-written manifest junk").unwrap();
        fs::write(dir.join("epoch-00001.rr.tmp"), b"partial segment from a crash").unwrap();

        let probe = SeedQuery::top_k(4);
        let loaded = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
        assert_eq!(loaded.answer(&probe).unwrap(), engine.answer(&probe).unwrap());

        // The next commit cycle overwrites the stale temps without error.
        engine.extend(&ctx, 150);
        engine.save(&dir).unwrap();
        let reloaded = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
        assert_eq!(reloaded.answer(&probe).unwrap(), engine.answer(&probe).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Deterministic round trip across distinct epoch layouts: a saved
    /// pool answers bit-identically after reload, whatever the boundary
    /// structure was.
    #[test]
    fn round_trip_is_bit_identical_across_epoch_layouts() {
        let g = small_graph();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(17);
        let queries = vec![
            SeedQuery::top_k(1),
            SeedQuery::top_k(5),
            SeedQuery::top_k(2).over_range(0..300),
            SeedQuery::top_k(3).with_excluded(vec![0, 1]),
        ];
        let layouts: [&[u64]; 5] =
            [&[600], &[300, 300], &[300, 200, 100], &[150, 150, 150, 150], &[450, 50, 50, 50]];
        for (i, layout) in layouts.iter().enumerate() {
            let mut live = SeedQueryEngine::sample(&ctx, layout[0]);
            for &count in &layout[1..] {
                live.extend(&ctx, count);
            }
            let dir = scratch(&format!("layout-{i}"));
            live.save(&dir).unwrap();
            let loaded = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
            assert_eq!(
                live.answer_batch(&queries).unwrap(),
                loaded.answer_batch(&queries).unwrap(),
                "layout {layout:?} must round-trip bit-identically"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// save → load → extend → save → load pins bit-identical answers
        /// across randomized seeds and epoch layouts, and the second save
        /// reuses every epoch the first one committed.
        #[test]
        fn save_load_extend_save_load_pins_answers(
            seed in 0u64..64,
            epochs in proptest::collection::vec(40u64..160, 1..4),
            extra in 40u64..120,
        ) {
            let g = gen::erdos_renyi(120, 600, 11)
                .build(WeightModel::WeightedCascade)
                .unwrap();
            let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);

            let mut live = SeedQueryEngine::sample(&ctx, epochs[0]);
            for &count in &epochs[1..] {
                live.extend(&ctx, count);
            }
            let dir = scratch(&format!("prop-{seed}-{}-{extra}", epochs.len()));
            let first = live.save(&dir).unwrap();

            let probe = SeedQuery::top_k(4);
            let mut reloaded = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
            prop_assert_eq!(live.answer(&probe).unwrap(), reloaded.answer(&probe).unwrap());

            // Grow the *reloaded* engine and append-save: the incremental
            // path must reuse every epoch of the first commit verbatim.
            reloaded.extend(&ctx, extra);
            live.extend(&ctx, extra);
            let second = reloaded.save(&dir).unwrap();
            prop_assert_eq!(second.epochs_reused, first.epochs_written);
            prop_assert!(second.epochs_written >= 1);

            let again = SeedQueryEngine::from_store(&dir, &ctx).unwrap();
            prop_assert_eq!(live.answer(&probe).unwrap(), again.answer(&probe).unwrap());
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Empty and zero-weight TVM audiences are rejected; a one-node audience
/// works.
#[test]
fn tvm_weight_edge_cases() {
    use stop_and_stare::tvm::{DssaTvm, TargetWeights};
    let g = gen::erdos_renyi(50, 250, 2).build(WeightModel::WeightedCascade).unwrap();
    assert!(TargetWeights::from_weights(vec![0.0; 50]).is_err());
    assert!(TargetWeights::from_weights(vec![]).is_err());

    let mut w = vec![0.0; 50];
    w[17] = 2.5;
    let audience = TargetWeights::from_weights(w).unwrap();
    let params = Params::new(1, 0.3, 0.1).unwrap();
    let r = DssaTvm::new(params).run(&g, Model::IndependentCascade, &audience, 4, 1).unwrap();
    assert_eq!(r.seeds.len(), 1);
    // the only mass is on node 17; influence can't exceed Γ = 2.5
    assert!(r.influence_estimate <= 2.5 + 1e-9);
}
