//! Failure injection and boundary-condition tests across the stack.

use stop_and_stare::graph::{gen, io, GraphBuilder, GraphError, WeightModel};
use stop_and_stare::{Dssa, Model, Params, SamplingContext, Ssa};

/// Malformed inputs fail loudly with actionable errors, never panic.
#[test]
fn malformed_edge_lists_are_rejected() {
    for (text, expect_line) in [
        ("0\n", 1usize),
        ("0 1 0.5\n0 x\n", 2),
        ("0 1 2.5e400\n", 1), // weight overflows f32 parse -> inf, caught at build or parse
        ("a b\n", 1),
    ] {
        match io::read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, expect_line, "{text:?}"),
            Ok(builder) => {
                // the inf-weight case parses (f32: inf) and must then be
                // rejected at build time
                assert!(
                    builder.build(WeightModel::Provided).is_err(),
                    "{text:?} should fail somewhere"
                );
            }
            Err(other) => panic!("{text:?}: unexpected error {other}"),
        }
    }
}

/// Graphs with isolated nodes, sink-only nodes and zero-weight edges are
/// all legal and the algorithms behave sensibly on them.
#[test]
fn degenerate_graphs_run_cleanly() {
    // 10 nodes, one dead (p = 0) edge, eight isolated nodes.
    let mut b = GraphBuilder::new();
    b.set_num_nodes(10);
    b.add_edge(0, 1, 0.0);
    let g = b.build(WeightModel::Provided).unwrap();

    let params = Params::new(3, 0.3, 0.1).unwrap();
    for model in [Model::IndependentCascade, Model::LinearThreshold] {
        let ctx = SamplingContext::new(&g, model).with_seed(1);
        let r = Dssa::new(params).run(&ctx).unwrap();
        assert_eq!(r.seeds.len(), 3);
        // every node influences exactly itself: Î ≈ k
        assert!((r.influence_estimate - 3.0).abs() < 1.0, "{model}: Î = {}", r.influence_estimate);
    }
}

/// k ≥ n: all nodes are returned, no panic, estimate ≈ n on a dead graph.
#[test]
fn k_larger_than_n() {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(4);
    b.add_edge(0, 1, 0.0);
    let g = b.build(WeightModel::Provided).unwrap();
    let params = Params::new(100, 0.3, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
    for r in [Ssa::new(params).run(&ctx).unwrap(), Dssa::new(params).run(&ctx).unwrap()] {
        let mut seeds = r.seeds.clone();
        seeds.sort_unstable();
        assert_eq!(seeds, vec![0, 1, 2, 3]);
    }
}

/// Parameter validation rejects out-of-domain (k, ε, δ) combinations.
#[test]
fn parameter_domain_enforced() {
    assert!(Params::new(0, 0.1, 0.1).is_err());
    assert!(Params::new(1, -0.1, 0.1).is_err());
    assert!(Params::new(1, 0.1, 1.5).is_err());
    // ε beyond 1 − 1/e makes the guarantee vacuous
    assert!(Params::new(1, 0.64, 0.1).is_err());
    // boundary-adjacent values are accepted
    assert!(Params::new(1, 0.63, 0.999).is_ok());
    assert!(Params::new(1, 1e-6, 1e-12).is_ok());
}

/// LT reverse walks require Σ w(u,v) ≤ 1; a graph violating it is
/// detectable, and normalize_for_lt repairs it.
#[test]
fn lt_constraint_detection_and_repair() {
    let mut b = GraphBuilder::new();
    b.add_edge(0, 2, 0.9);
    b.add_edge(1, 2, 0.9);
    let g = b.clone().build(WeightModel::Provided).unwrap();
    assert!(!g.lt_compatible());

    b.normalize_for_lt(true);
    let g = b.build(WeightModel::Provided).unwrap();
    assert!(g.lt_compatible());
    // and LT algorithms run on the repaired graph
    let params = Params::new(1, 0.3, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(4);
    assert_eq!(Dssa::new(params).run(&ctx).unwrap().seeds.len(), 1);
}

/// Extreme ε/δ near their boundaries still terminate (via cap or
/// conditions) on a small graph.
#[test]
fn boundary_epsilon_delta_terminate() {
    let g = gen::erdos_renyi(60, 240, 3).build(WeightModel::WeightedCascade).unwrap();
    // very lax: huge ε (close to limit), huge δ
    let lax = Params::new(2, 0.6, 0.9).unwrap();
    // strict-ish but tiny graph keeps it fast
    let strict = Params::new(2, 0.05, 1e-6).unwrap();
    for params in [lax, strict] {
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(8);
        let r = Dssa::new(params).run(&ctx).unwrap();
        assert_eq!(r.seeds.len(), 2);
    }
}

/// Binary graph round-trip composes with the full algorithm stack.
#[test]
fn io_roundtrip_then_run() {
    let g = gen::rmat(500, 3000, gen::RmatParams::GRAPH500, 6)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    let g2 = io::read_binary(&buf[..]).unwrap();

    let params = Params::new(5, 0.3, 0.1).unwrap();
    let r1 = Dssa::new(params)
        .run(&SamplingContext::new(&g, Model::IndependentCascade).with_seed(3))
        .unwrap();
    let r2 = Dssa::new(params)
        .run(&SamplingContext::new(&g2, Model::IndependentCascade).with_seed(3))
        .unwrap();
    assert_eq!(r1.seeds, r2.seeds, "round-tripped graph must behave identically");
}

/// Empty and zero-weight TVM audiences are rejected; a one-node audience
/// works.
#[test]
fn tvm_weight_edge_cases() {
    use stop_and_stare::tvm::{DssaTvm, TargetWeights};
    let g = gen::erdos_renyi(50, 250, 2).build(WeightModel::WeightedCascade).unwrap();
    assert!(TargetWeights::from_weights(vec![0.0; 50]).is_err());
    assert!(TargetWeights::from_weights(vec![]).is_err());

    let mut w = vec![0.0; 50];
    w[17] = 2.5;
    let audience = TargetWeights::from_weights(w).unwrap();
    let params = Params::new(1, 0.3, 0.1).unwrap();
    let r = DssaTvm::new(params).run(&g, Model::IndependentCascade, &audience, 4, 1).unwrap();
    assert_eq!(r.seeds.len(), 1);
    // the only mass is on node 17; influence can't exceed Γ = 2.5
    assert!(r.influence_estimate <= 2.5 + 1e-9);
}
