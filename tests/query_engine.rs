//! Integration tests for the frozen-pool seed-query engine: the
//! acceptance contract is bit-identity — every batched answer must equal
//! the corresponding direct selection over the same pool slice — plus
//! thread-count invariance of batch answering.

use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::rrset::{max_coverage_range, CoverageView, GreedyScratch, SeedConstraints};
use stop_and_stare::tvm::TargetWeights;
use stop_and_stare::{Model, SamplingContext, SeedQuery, SeedQueryEngine};

fn fixture_engine(threads: usize) -> SeedQueryEngine {
    let g = gen::rmat(1000, 6000, gen::RmatParams::GRAPH500, 13)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(21);
    SeedQueryEngine::sample(&ctx, 5000).with_threads(threads)
}

/// A heterogeneous batch covering every query axis.
fn mixed_batch(pool_len: u32, weights: &TargetWeights) -> Vec<SeedQuery> {
    vec![
        SeedQuery::top_k(1),
        SeedQuery::top_k(10),
        SeedQuery::top_k(10).over_range(0..pool_len / 2),
        SeedQuery::top_k(7).over_range(pool_len / 4..pool_len),
        SeedQuery::top_k(10).with_excluded(vec![0, 1, 2]),
        SeedQuery::top_k(10).with_forced(vec![5, 6]),
        SeedQuery::top_k(6).over_range(0..pool_len / 2).with_forced(vec![9]).with_excluded(vec![3]),
        weights.seed_query(8),
        weights.seed_query(8).over_range(0..pool_len / 2),
    ]
}

#[test]
fn every_batched_answer_is_bit_identical_to_direct_selection() {
    let engine = fixture_engine(1);
    let pool = engine.pool();
    let pool_len = pool.len() as u32;
    let weights = {
        let mut w = vec![0.0f64; pool.num_nodes() as usize];
        for (v, slot) in w.iter_mut().enumerate().take(200) {
            *slot = 1.0 + (v % 3) as f64;
        }
        TargetWeights::from_weights(w).unwrap()
    };
    let batch = mixed_batch(pool_len, &weights);
    let answers = engine.answer_batch(&batch).unwrap();

    let mut scratch = GreedyScratch::new();
    for (query, answer) in batch.iter().zip(&answers) {
        let range = query.range.clone().unwrap_or(0..pool_len);
        assert_eq!(answer.range, range);
        let view = CoverageView::build(pool, range.clone());
        let constraints = SeedConstraints { forced: &query.forced, excluded: &query.excluded };
        match &query.root_weights {
            Some(w) => {
                // direct = fresh per-call weighted selection, no snapshot
                let direct = view.select_weighted(query.k, w, &constraints, &mut scratch);
                assert_eq!(answer.seeds, direct.seeds, "weighted query {query:?}");
                assert_eq!(answer.covered, direct.covered_weight);
                assert_eq!(answer.marginal_gains, direct.marginal_gains);
            }
            None => {
                // direct = fresh per-call histogram selection, no snapshot
                let direct = view.select_constrained(query.k, &constraints, &mut scratch);
                assert_eq!(answer.seeds, direct.seeds, "query {query:?}");
                assert_eq!(answer.covered, direct.covered as f64);
                if query.forced.is_empty() && query.excluded.is_empty() {
                    // and for plain queries, = the public one-shot API
                    let plain = max_coverage_range(pool, query.k, range.clone());
                    assert_eq!(answer.seeds, plain.seeds);
                }
            }
        }
    }
}

#[test]
fn batch_answers_do_not_depend_on_thread_count_or_composition() {
    let sequential_engine = fixture_engine(1);
    let weights = TargetWeights::synthetic_topic(
        &gen::rmat(1000, 6000, gen::RmatParams::GRAPH500, 13)
            .build(WeightModel::WeightedCascade)
            .unwrap(),
        0.1,
        1.0,
        5,
    )
    .unwrap();
    let batch = mixed_batch(sequential_engine.pool().len() as u32, &weights);
    let sequential = sequential_engine.answer_batch(&batch).unwrap();
    for threads in [2usize, 8] {
        let parallel = fixture_engine(threads).answer_batch(&batch).unwrap();
        assert_eq!(sequential, parallel, "{threads} worker threads");
    }
    // one-at-a-time answers equal the batch answers (no cross-query state)
    for (query, batched) in batch.iter().zip(&sequential) {
        assert_eq!(&sequential_engine.answer(query).unwrap(), batched);
    }
}

#[test]
fn repeated_queries_hit_the_frozen_snapshot_and_stay_stable() {
    let engine = fixture_engine(2);
    let query = SeedQuery::top_k(15);
    let first = engine.answer(&query).unwrap();
    for _ in 0..10 {
        assert_eq!(engine.answer(&query).unwrap(), first);
    }
    // interleaving other ranges / weighted queries must not disturb it
    engine.answer(&SeedQuery::top_k(3).over_range(10..900)).unwrap();
    let w = TargetWeights::uniform_all(engine.pool().num_nodes());
    engine.answer(&w.seed_query(4)).unwrap();
    assert_eq!(engine.answer(&query).unwrap(), first);
}

#[test]
fn uniform_weighted_query_agrees_with_unweighted_ranking() {
    // b ≡ 1 makes the weighted objective the plain covered count, so the
    // seeds and (scaled) estimates must coincide.
    let engine = fixture_engine(1);
    let w = TargetWeights::uniform_all(engine.pool().num_nodes());
    let weighted = engine.answer(&w.seed_query(10)).unwrap();
    let plain = engine.answer(&SeedQuery::top_k(10)).unwrap();
    assert_eq!(weighted.seeds, plain.seeds);
    assert!((weighted.covered - plain.covered).abs() < 1e-6);
}
