//! Integration tests for the frozen-pool seed-query engine: the
//! acceptance contract is bit-identity — every batched answer must equal
//! the corresponding direct selection over the same pool slice — plus
//! thread-count invariance of batch answering, epoch-merge equivalence
//! under pool growth, and the cache policy (LRU eviction under a byte
//! budget, pinned hit/miss/evict counters).

use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::rrset::{max_coverage_range, CoverageView, GreedyScratch, SeedConstraints};
use stop_and_stare::tvm::TargetWeights;
use stop_and_stare::{Model, SamplingContext, SeedQuery, SeedQueryEngine};

fn fixture_engine(threads: usize) -> SeedQueryEngine {
    let g = gen::rmat(1000, 6000, gen::RmatParams::GRAPH500, 13)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(21);
    SeedQueryEngine::sample(&ctx, 5000).with_threads(threads)
}

/// A heterogeneous batch covering every query axis.
fn mixed_batch(pool_len: u32, weights: &TargetWeights) -> Vec<SeedQuery> {
    vec![
        SeedQuery::top_k(1),
        SeedQuery::top_k(10),
        SeedQuery::top_k(10).over_range(0..pool_len / 2),
        SeedQuery::top_k(7).over_range(pool_len / 4..pool_len),
        SeedQuery::top_k(10).with_excluded(vec![0, 1, 2]),
        SeedQuery::top_k(10).with_forced(vec![5, 6]),
        SeedQuery::top_k(6).over_range(0..pool_len / 2).with_forced(vec![9]).with_excluded(vec![3]),
        weights.seed_query(8),
        weights.seed_query(8).over_range(0..pool_len / 2),
    ]
}

#[test]
fn every_batched_answer_is_bit_identical_to_direct_selection() {
    let engine = fixture_engine(1);
    let pool = engine.pool();
    let pool = &*pool;
    let pool_len = pool.len() as u32;
    let weights = {
        let mut w = vec![0.0f64; pool.num_nodes() as usize];
        for (v, slot) in w.iter_mut().enumerate().take(200) {
            *slot = 1.0 + (v % 3) as f64;
        }
        TargetWeights::from_weights(w).unwrap()
    };
    let batch = mixed_batch(pool_len, &weights);
    let answers = engine.answer_batch(&batch).unwrap();

    let mut scratch = GreedyScratch::new();
    for (query, answer) in batch.iter().zip(&answers) {
        let range = query.range.clone().unwrap_or(0..pool_len);
        assert_eq!(answer.range, range);
        let view = CoverageView::build(pool, range.clone());
        let constraints = SeedConstraints { forced: &query.forced, excluded: &query.excluded };
        match &query.root_weights {
            Some(w) => {
                // direct = fresh per-call weighted selection, no snapshot
                let direct = view.select_weighted(query.k, w, &constraints, &mut scratch);
                assert_eq!(answer.seeds, direct.seeds, "weighted query {query:?}");
                assert_eq!(answer.covered, direct.covered_weight);
                assert_eq!(answer.marginal_gains, direct.marginal_gains);
            }
            None => {
                // direct = fresh per-call histogram selection, no snapshot
                let direct = view.select_constrained(query.k, &constraints, &mut scratch);
                assert_eq!(answer.seeds, direct.seeds, "query {query:?}");
                assert_eq!(answer.covered, direct.covered as f64);
                if query.forced.is_empty() && query.excluded.is_empty() {
                    // and for plain queries, = the public one-shot API
                    let plain = max_coverage_range(pool, query.k, range.clone());
                    assert_eq!(answer.seeds, plain.seeds);
                }
            }
        }
    }
}

#[test]
fn batch_answers_do_not_depend_on_thread_count_or_composition() {
    let sequential_engine = fixture_engine(1);
    let weights = TargetWeights::synthetic_topic(
        &gen::rmat(1000, 6000, gen::RmatParams::GRAPH500, 13)
            .build(WeightModel::WeightedCascade)
            .unwrap(),
        0.1,
        1.0,
        5,
    )
    .unwrap();
    let batch = mixed_batch(sequential_engine.pool().len() as u32, &weights);
    let sequential = sequential_engine.answer_batch(&batch).unwrap();
    for threads in [2usize, 8] {
        let parallel = fixture_engine(threads).answer_batch(&batch).unwrap();
        assert_eq!(sequential, parallel, "{threads} worker threads");
    }
    // one-at-a-time answers equal the batch answers (no cross-query state)
    for (query, batched) in batch.iter().zip(&sequential) {
        assert_eq!(&sequential_engine.answer(query).unwrap(), batched);
    }
}

#[test]
fn repeated_queries_hit_the_frozen_snapshot_and_stay_stable() {
    let engine = fixture_engine(2);
    let query = SeedQuery::top_k(15);
    let first = engine.answer(&query).unwrap();
    for _ in 0..10 {
        assert_eq!(engine.answer(&query).unwrap(), first);
    }
    // interleaving other ranges / weighted queries must not disturb it
    engine.answer(&SeedQuery::top_k(3).over_range(10..900)).unwrap();
    let w = TargetWeights::uniform_all(engine.pool().num_nodes());
    engine.answer(&w.seed_query(4)).unwrap();
    assert_eq!(engine.answer(&query).unwrap(), first);
}

/// Acceptance: after N pool extensions, every answer assembled from
/// epoch-merged snapshots is bit-identical to direct `max_coverage` on
/// the full pool state, and no extension invalidates a previously frozen
/// epoch (old ranges keep answering as pure cache hits).
#[test]
fn epoch_merged_answers_survive_repeated_growth() {
    let g = gen::rmat(800, 4800, gen::RmatParams::GRAPH500, 17)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(23);
    let mut engine = SeedQueryEngine::sample(&ctx, 1500);
    let epoch0 = engine.answer(&SeedQuery::top_k(6).over_range(0..1500)).unwrap();

    for step in 1..=3u32 {
        engine.extend(&ctx, 1500);
        let len = engine.pool().len() as u32;
        assert_eq!(len, 1500 * (step + 1));
        assert_eq!(engine.pool().epoch_boundaries().len(), (step + 1) as usize);
        // merged full-range answer == direct greedy on the same state
        let merged = engine.answer(&SeedQuery::top_k(6)).unwrap();
        let direct = max_coverage_range(&engine.pool(), 6, 0..len);
        assert_eq!(merged.seeds, direct.seeds, "step {step}");
        assert_eq!(merged.covered, direct.covered as f64);
        // unaligned range spanning several epochs, also bit-identical
        let odd = 700..len - 300;
        let ranged = engine.answer(&SeedQuery::top_k(5).over_range(odd.clone())).unwrap();
        assert_eq!(ranged.seeds, max_coverage_range(&engine.pool(), 5, odd).seeds);
    }
    // per-epoch snapshots frozen exactly once each: 3 growth epochs (the
    // first epoch's snapshot came from the pre-growth direct query)
    let stats = engine.stats();
    assert_eq!(stats.epochs_frozen, 3, "{stats:?}");
    assert_eq!(stats.evictions, 0);
    // the very first frozen range still serves untouched
    let again = engine.answer(&SeedQuery::top_k(6).over_range(0..1500)).unwrap();
    assert_eq!(again, epoch0);
}

/// The cache policy under a budget too small for two snapshots: every
/// insertion evicts the other entry, and the counters pin the exact
/// hit/miss/evict sequence.
#[test]
fn tight_budget_evicts_lru_and_counts() {
    let g = gen::erdos_renyi(400, 2400, 31).build(WeightModel::WeightedCascade).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(31);
    let pool_snapshot_bytes = {
        // measure one snapshot to size a budget that fits exactly one
        let probe = SeedQueryEngine::sample(&ctx, 1200);
        probe.answer(&SeedQuery::top_k(2).over_range(0..600)).unwrap();
        probe.stats().cached_bytes
    };
    let engine = SeedQueryEngine::sample(&ctx, 1200).with_cache_budget(pool_snapshot_bytes * 3 / 2);

    let a = SeedQuery::top_k(2).over_range(0..600);
    let b = SeedQuery::top_k(2).over_range(600..1200);
    let first_a = engine.answer(&a).unwrap(); // miss, insert A
    let first_b = engine.answer(&b).unwrap(); // miss, insert B, evict A
    assert_eq!(engine.answer(&a).unwrap(), first_a); // miss again (A evicted), evict B
    assert_eq!(engine.answer(&a).unwrap(), first_a); // hit
    assert_eq!(engine.answer(&b).unwrap(), first_b); // miss, evict A
    let s = engine.stats();
    assert_eq!((s.snapshot_hits, s.snapshot_misses, s.evictions), (1, 4, 3), "{s:?}");
    assert!(s.cached_bytes <= s.budget_bytes, "{s:?}");
}

/// Repeated queries on one topic build the weighted gain snapshot once;
/// a different topic (same shape, different identity) builds its own.
#[test]
fn topic_keyed_weighted_snapshots_are_reused() {
    let engine = fixture_engine(1);
    let n = engine.pool().num_nodes();
    let topic_a = TargetWeights::synthetic_topic(
        &gen::rmat(1000, 6000, gen::RmatParams::GRAPH500, 13)
            .build(WeightModel::WeightedCascade)
            .unwrap(),
        0.1,
        1.0,
        5,
    )
    .unwrap();
    let topic_b = TargetWeights::uniform_all(n);

    let first = engine.answer(&topic_a.seed_query(6)).unwrap();
    for _ in 0..4 {
        assert_eq!(engine.answer(&topic_a.seed_query(6)).unwrap(), first);
    }
    let s = engine.stats();
    assert_eq!((s.weighted_hits, s.weighted_misses), (4, 1), "{s:?}");
    // frozen-topic answers equal the uncached weighted path
    let uncached =
        engine.answer(&SeedQuery::top_k(6).with_root_weights(topic_a.weights().to_vec())).unwrap();
    assert_eq!(first, uncached);
    let s = engine.stats();
    assert_eq!((s.weighted_hits, s.weighted_misses), (4, 1), "no-topic queries bypass the cache");

    engine.answer(&topic_b.seed_query(6)).unwrap();
    engine.answer(&topic_b.seed_query(6)).unwrap();
    let s = engine.stats();
    assert_eq!((s.weighted_hits, s.weighted_misses), (5, 2), "{s:?}");
}

#[test]
fn uniform_weighted_query_agrees_with_unweighted_ranking() {
    // b ≡ 1 makes the weighted objective the plain covered count, so the
    // seeds and (scaled) estimates must coincide.
    let engine = fixture_engine(1);
    let w = TargetWeights::uniform_all(engine.pool().num_nodes());
    let weighted = engine.answer(&w.seed_query(10)).unwrap();
    let plain = engine.answer(&SeedQuery::top_k(10)).unwrap();
    assert_eq!(weighted.seeds, plain.seeds);
    assert!((weighted.covered - plain.covered).abs() < 1e-6);
}
