//! Tests pinning the paper's *qualitative claims* — the statements the
//! evaluation section is built on. These are the repository's regression
//! guard for "did we actually reproduce the paper".

use stop_and_stare::baselines::{Imm, Tim};
use stop_and_stare::core::bounds;
use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{
    Dssa, Graph, GraphBuilder, Model, Params, SamplingContext, SpreadEstimator, Ssa, StopCondition,
    StoppingRule,
};

fn social_graph(seed: u64) -> Graph {
    gen::rmat(3000, 18_000, gen::RmatParams::GRAPH500, seed)
        .build(WeightModel::WeightedCascade)
        .unwrap()
}

/// Claim (§7.2.2/Table 3): D-SSA and SSA generate several times fewer RR
/// sets than IMM at equal (ε, δ), and D-SSA ≤ SSA.
#[test]
fn sample_ordering_dssa_ssa_imm() {
    let g = social_graph(1);
    let params = Params::new(50, 0.2, 1.0 / 3000.0).unwrap();
    for model in [Model::LinearThreshold, Model::IndependentCascade] {
        let ctx = SamplingContext::new(&g, model).with_seed(3);
        let d = Dssa::new(params).run(&ctx).unwrap();
        let s = Ssa::new(params).run(&ctx).unwrap();
        let i = Imm::new(params).run(&ctx).unwrap();
        // "D-SSA performs at least as good as SSA" holds in aggregate,
        // not pointwise — the doubling schedule quantizes pool sizes, so
        // allow one checkpoint (2x) of slack per instance.
        assert!(
            d.rr_sets_total() <= 2 * s.rr_sets_total(),
            "{model}: D-SSA {} > 2x SSA {}",
            d.rr_sets_total(),
            s.rr_sets_total()
        );
        assert!(
            s.rr_sets_total() < i.rr_sets_main,
            "{model}: SSA {} >= IMM {}",
            s.rr_sets_total(),
            i.rr_sets_main
        );
    }
}

/// Claim (§7.2.3): memory usage follows the same ordering — the pool is
/// the footprint.
#[test]
fn memory_ordering_dssa_ssa_imm() {
    let g = social_graph(2);
    let params = Params::new(50, 0.2, 1.0 / 3000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);
    let d = Dssa::new(params).run(&ctx).unwrap();
    let s = Ssa::new(params).run(&ctx).unwrap();
    let i = Imm::new(params).run(&ctx).unwrap();
    assert!(d.peak_pool_bytes <= s.peak_pool_bytes * 2, "D-SSA vs SSA pools");
    assert!(
        s.peak_pool_bytes < i.peak_pool_bytes,
        "SSA {} vs IMM {}",
        s.peak_pool_bytes,
        i.peak_pool_bytes
    );
}

/// Claim (§7.2.1): all methods return comparable seed-set quality — no
/// significant difference in expected influence.
#[test]
fn quality_parity_across_methods() {
    let g = social_graph(3);
    let params = Params::new(20, 0.2, 1.0 / 3000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(7);
    let est = SpreadEstimator::new(&g, Model::IndependentCascade);
    let spreads: Vec<(&str, f64)> = vec![
        ("D-SSA", est.estimate(&Dssa::new(params).run(&ctx).unwrap().seeds, 20_000, 9)),
        ("SSA", est.estimate(&Ssa::new(params).run(&ctx).unwrap().seeds, 20_000, 9)),
        ("IMM", est.estimate(&Imm::new(params).run(&ctx).unwrap().seeds, 20_000, 9)),
        ("TIM+", est.estimate(&Tim::plus(params).run(&ctx).unwrap().seeds, 20_000, 9)),
    ];
    let max = spreads.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    for (name, s) in &spreads {
        assert!(
            s / max > 0.9,
            "{name} spread {s:.1} more than 10% below best {max:.1}: {spreads:?}"
        );
    }
}

/// Claim (§1, Fig 2): influence gain saturates — after a few thousand
/// seeds (scaled: a few hundred) marginal influence becomes slim.
#[test]
fn influence_saturates_with_k() {
    let g = social_graph(4);
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(11);
    let est = SpreadEstimator::new(&g, Model::LinearThreshold);
    let mut prev = 0.0;
    let mut gains = Vec::new();
    for k in [10usize, 100, 400] {
        let params = Params::new(k, 0.2, 1.0 / 3000.0).unwrap();
        let r = Dssa::new(params).run(&ctx).unwrap();
        let s = est.estimate(&r.seeds, 10_000, 13);
        gains.push(s - prev);
        prev = s;
    }
    // marginal gain per added seed must shrink sharply
    let early_rate = gains[0] / 10.0;
    let late_rate = gains[2] / 300.0;
    assert!(
        late_rate < early_rate * 0.5,
        "no saturation: early {early_rate:.2}/seed, late {late_rate:.2}/seed"
    );
}

/// Regression (PR 3): Algorithm 4's ε₂/ε₃ must divide by the find-half
/// size `Λ·2^(t−1)`, not by `2^(t−1)` alone. The Λ-dropped variant
/// (present up to commit 12c1870) inflated ε₂/ε₃ by √Λ and made D-SSA
/// pay needless doublings after condition D1 was already satisfied. The
/// constants below are that variant's measured behavior on these
/// fixtures; the corrected rule must beat them by ≥4× where D2 was
/// binding and never do worse where D1 was.
#[test]
fn lambda_corrected_stopping_rule_cuts_samples() {
    // ER fixture where the dropped Λ cost two full doublings (t = 4
    // instead of t = 2): ≥4× fewer RR sets at unchanged (ε, δ), with the
    // influence estimate preserved within ε.
    let g = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
    let params = Params::new(80, 0.1, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(9);
    let r = Dssa::new(params).run(&ctx).unwrap();
    const PRE_FIX_ER_TOTAL: u64 = 19_184;
    const PRE_FIX_ER_INFLUENCE: f64 = 265.3;
    assert!(
        4 * r.rr_sets_total() <= PRE_FIX_ER_TOTAL,
        "expected a ≥4x sample drop: {} vs pre-fix {}",
        r.rr_sets_total(),
        PRE_FIX_ER_TOTAL
    );
    assert!(
        (r.influence_estimate - PRE_FIX_ER_INFLUENCE).abs() / PRE_FIX_ER_INFLUENCE
            <= params.epsilon,
        "influence moved beyond ε: {} vs pre-fix {}",
        r.influence_estimate,
        PRE_FIX_ER_INFLUENCE
    );

    // RMAT fixture where condition D1 (verify-half coverage), not D2,
    // was binding: here the fix changes nothing, and must not regress.
    let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let params = Params::new(10, 0.3, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);
    let d = Dssa::new(params).run(&ctx).unwrap();
    const PRE_FIX_RMAT_TOTAL: u64 = 1200;
    const PRE_FIX_RMAT_INFLUENCE: f64 = 980.0;
    assert!(
        d.rr_sets_total() <= PRE_FIX_RMAT_TOTAL,
        "D1-bound fixture regressed: {} vs {}",
        d.rr_sets_total(),
        PRE_FIX_RMAT_TOTAL
    );
    assert!(
        (d.influence_estimate - PRE_FIX_RMAT_INFLUENCE).abs() / PRE_FIX_RMAT_INFLUENCE
            <= params.epsilon
    );
}

/// Claim (§3.2/Theorem 1): the paper's worked thresholds are ordered —
/// IMM's Eq. 13 improves on TIM's Eq. 12 for identical inputs, and the
/// type-2 threshold D-SSA realizes is below both.
#[test]
fn threshold_hierarchy() {
    let (n, k, eps, delta) = (100_000u64, 100u64, 0.1, 1e-5);
    let opt = 5000.0;
    let t = bounds::prior_thresholds(n, k, eps, delta, opt);
    assert!(t.imm < t.tim);

    // D-SSA's realized sample count on a real instance sits far below
    // the prior thresholds computed with the *true* OPT of that instance.
    let g = social_graph(5);
    let params = Params::new(50, 0.2, 1.0 / 3000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(2);
    let d = Dssa::new(params).run(&ctx).unwrap();
    let opt_estimate = d.influence_estimate; // ≥ (1-1/e-ε)OPT
    let prior = bounds::prior_thresholds(3000, 50, 0.2, 1.0 / 3000.0, opt_estimate);
    assert!(
        (d.rr_sets_total() as f64) < prior.tim,
        "D-SSA used {} sets, TIM's threshold is {:.0}",
        d.rr_sets_total(),
        prior.tim
    );
}

/// Claim (abstract): SSA/D-SSA keep the (1 − 1/e − ε) guarantee with
/// probability 1 − δ. Empirical check: over repeated runs on a graph with
/// known OPT, failures stay rare.
#[test]
fn guarantee_holds_empirically() {
    // Star graph: OPT_1 = 1 + 30·0.5 = 16 exactly (IC closed form).
    let mut b = stop_and_stare::GraphBuilder::new();
    for v in 1..=30 {
        b.add_edge(0, v, 0.5);
    }
    let g = b.build(WeightModel::Provided).unwrap();
    let est = SpreadEstimator::new(&g, Model::IndependentCascade);
    let opt = 16.0;
    let (eps, delta) = (0.3, 0.2);
    let params = Params::new(1, eps, delta).unwrap();
    let mut failures = 0;
    let runs = 40;
    for seed in 0..runs {
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
        let r = Dssa::new(params).run(&ctx).unwrap();
        let spread = est.estimate(&r.seeds, 20_000, 1000 + seed);
        if spread < (1.0 - 1.0 / std::f64::consts::E - eps) * opt {
            failures += 1;
        }
    }
    // δ = 0.2 ⇒ expect ≤ 8 failures; in practice the only node with
    // influence > 1 is the hub, so failures should be ~0
    assert!(failures <= runs / 5, "{failures}/{runs} guarantee violations");
}

// ---------------------------------------------------------------------------
// PR 5: the selectable stopping-rule engine (docs/DERIVATIONS.md §4).
// ---------------------------------------------------------------------------

/// The D2-bound regression fixture of PR 3: ER(400, 2400), IC, k = 80,
/// ε = 0.1, δ = 0.1, stream seed 9.
fn er_fixture() -> (Graph, Params, u64) {
    let g = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
    (g, Params::new(80, 0.1, 0.1).unwrap(), 9)
}

/// The D1-bound regression fixture of PR 3: RMAT(2000, 12 000), LT,
/// k = 10, ε = 0.3, δ = 0.1, stream seed 5.
fn rmat_fixture() -> (Graph, Params, u64) {
    let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    (g, Params::new(10, 0.3, 0.1).unwrap(), 5)
}

/// Pinned dual-mode sample counts (mirrored by `bench_diff`'s baseline
/// `results/bench_baselines/sample_counts.json`):
///
/// * `Conservative` must reproduce the repository's historical counts
///   bit-exactly — the certificate refactor is a pure reorganization for
///   that mode;
/// * `DssaFix` on the D2-bound ER fixture recovers *exactly* the
///   pre-PR-3 constants (19 184 sets, Î = 265.3): the numerically solved
///   stopping-rule anchor reproduces the Λ-cancelled closed form, which
///   is the settlement of DERIVATIONS §4 in one number;
/// * on the D1-bound RMAT fixture the two rules coincide (coverage, not
///   precision, is binding there).
#[test]
fn stopping_rule_engine_dual_mode_pinned_counts() {
    let (g, params, seed) = er_fixture();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
    let cons = Dssa::new(params).run(&ctx).unwrap();
    assert_eq!(cons.rr_sets_total(), 4_796, "conservative ER count must stay bit-exact");
    assert_eq!(cons.iterations, 2);
    assert_eq!(cons.stopping_rule, Some(StoppingRule::Conservative));
    assert_eq!(cons.binding, StopCondition::Coverage, "D1 fires at the stopping iteration");

    let fix = Dssa::new(params.with_stopping_rule(StoppingRule::DssaFix)).run(&ctx).unwrap();
    assert_eq!(fix.rr_sets_total(), 19_184, "DssaFix ER count (== the pre-PR-3 total)");
    assert_eq!(fix.iterations, 4);
    assert_eq!(fix.stopping_rule, Some(StoppingRule::DssaFix));
    assert_eq!(fix.binding, StopCondition::Precision, "D2 lags D1 by two doublings");
    const PRE_FIX_ER_INFLUENCE: f64 = 265.3;
    assert!(
        (fix.influence_estimate - PRE_FIX_ER_INFLUENCE).abs() < 0.1,
        "DssaFix must recover the pre-PR-3 influence estimate: {}",
        fix.influence_estimate
    );

    let (g, params, seed) = rmat_fixture();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(seed);
    let cons = Dssa::new(params).run(&ctx).unwrap();
    let fix = Dssa::new(params.with_stopping_rule(StoppingRule::DssaFix)).run(&ctx).unwrap();
    assert_eq!(cons.rr_sets_total(), 1_200, "conservative RMAT count must stay bit-exact");
    assert_eq!(fix.rr_sets_total(), 1_200, "D1-bound: the rules coincide");
    assert_eq!(cons.seeds, fix.seeds);
    assert_eq!(cons.binding, StopCondition::Coverage);
    assert_eq!(fix.binding, StopCondition::Coverage);
}

/// Property (the §4 settlement, direction included): on the same sample
/// stream the `DssaFix` anchor demands strictly more evidence than the
/// conservative closed forms — per checkpoint its certified ε₂ is never
/// smaller, so it can never stop *earlier*. Wherever both rules stop at
/// the same iteration they have seen identical pools and must select
/// identical seeds.
///
/// (ROADMAP's open item conjectured the opposite ordering — that the
/// stopping-rule-count reading was the optimistic one. The engine
/// settles it mechanically: conservative ≤ DssaFix on samples, always.)
#[test]
fn dssafix_never_stops_before_conservative() {
    let cases: &[(u64, Model, usize, f64)] = &[
        (1, Model::IndependentCascade, 10, 0.2),
        (2, Model::LinearThreshold, 25, 0.25),
        (3, Model::IndependentCascade, 80, 0.1),
        (4, Model::LinearThreshold, 5, 0.3),
        (5, Model::IndependentCascade, 40, 0.15),
    ];
    for &(seed, model, k, eps) in cases {
        let g = gen::erdos_renyi(400, 2400, seed).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(k, eps, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, model).with_seed(seed + 7);
        let (cons, cons_trace) = Dssa::new(params).run_traced(&ctx).unwrap();
        let (fix, fix_trace) =
            Dssa::new(params.with_stopping_rule(StoppingRule::DssaFix)).run_traced(&ctx).unwrap();
        assert!(
            cons.rr_sets_total() <= fix.rr_sets_total(),
            "seed {seed} {model}: conservative {} > DssaFix {}",
            cons.rr_sets_total(),
            fix.rr_sets_total()
        );
        if cons.iterations == fix.iterations {
            assert_eq!(cons.seeds, fix.seeds, "same stream + same stop ⇒ same seeds");
            assert_eq!(cons.rr_sets_total(), fix.rr_sets_total());
        }
        // Per-checkpoint: identical evidence (same stream), ε₂ᶠ ≥ ε₂ᶜ.
        for (c, f) in cons_trace.iter().zip(&fix_trace) {
            assert_eq!(c.pool_size, f.pool_size);
            assert_eq!(c.influence_find, f.influence_find);
            if let (Some((_, e2c, _)), Some((_, e2f, _))) = (c.epsilons, f.epsilons) {
                assert!(
                    e2f >= e2c,
                    "seed {seed} t={}: DssaFix certified a tighter ε₂ ({e2f}) than the \
                     conservative claim ({e2c})",
                    c.t
                );
            }
        }
    }
}

/// Satellite regression: `ε₁ = Î/Î^c − 1` is clamped at 0. Pinned flip
/// fixture — ER(300, 1800, graph seed 4), LT, k = 5, ε = 0.07, stream
/// seed 44 under `DssaFix`: at t = 2 the verify half over-estimates
/// (raw ε₁ ≈ −0.0055) and the *unclamped* composition would fire D2
/// (`ε_t ≈ 0.0675 ≤ ε`), while the clamped one correctly refuses
/// (`ε_t ≈ 0.0708 > ε`) and the run pays one more doubling.
#[test]
fn negative_eps1_clamp_changes_the_stopping_iteration() {
    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    let eps = 0.07;
    let g = gen::erdos_renyi(300, 1800, 4).build(WeightModel::WeightedCascade).unwrap();
    let params = Params::new(5, eps, 0.1).unwrap().with_stopping_rule(StoppingRule::DssaFix);
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(44);
    let (r, trace) = Dssa::new(params).run_traced(&ctx).unwrap();

    let t2 = &trace[1];
    assert_eq!(t2.t, 2);
    let i_c = t2.influence_verify.expect("D1 holds at t = 2 on this fixture");
    let raw_e1 = t2.influence_find / i_c - 1.0;
    assert!(raw_e1 < 0.0, "fixture must over-estimate on the verify half, got ε₁ = {raw_e1}");
    let (e1, e2, e3) = t2.epsilons.unwrap();
    assert_eq!(e1, 0.0, "negative disagreement must clamp to 0");
    let gap = one_minus_inv_e - eps;
    let raw_eps_t = (raw_e1 + e2 + raw_e1 * e2) * gap + one_minus_inv_e * e3;
    let clamped_eps_t = t2.eps_t.unwrap();
    assert!(
        raw_eps_t <= eps && clamped_eps_t > eps,
        "the clamp must flip D2 here: raw {raw_eps_t}, clamped {clamped_eps_t}"
    );
    assert_eq!(r.iterations, 3, "unclamped would have stopped at t = 2");
    assert_eq!(r.rr_sets_total(), 19_672);

    // And the invariant behind the clamp: no recorded ε₁ is ever negative,
    // under either rule, on the pinned regression fixtures.
    let (g, params, seed) = er_fixture();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
    for rule in [StoppingRule::Conservative, StoppingRule::DssaFix] {
        let (_, trace) = Dssa::new(params.with_stopping_rule(rule)).run_traced(&ctx).unwrap();
        for it in &trace {
            if let Some((e1, ..)) = it.epsilons {
                assert!(e1 >= 0.0, "{rule} t={}: negative ε₁ escaped the clamp", it.t);
            }
        }
    }
}

/// Under the conservative rule the clamp can *never* move a stop: once
/// D1 holds, the ε₁ = 0 floor of the composition is already below ε
/// (ε₂ ≤ ε·√((1+ε)/Λ₁) ≪ ε, likewise ε₃), so zeroing a negative ε₁
/// still stops. Checked on every D1-passing checkpoint the regression
/// fixtures produce.
#[test]
fn conservative_zero_eps1_floor_always_stops() {
    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    for (g, params, seed, model) in [
        (er_fixture().0, er_fixture().1, er_fixture().2, Model::IndependentCascade),
        (rmat_fixture().0, rmat_fixture().1, rmat_fixture().2, Model::LinearThreshold),
    ] {
        let ctx = SamplingContext::new(&g, model).with_seed(seed);
        let (_, trace) = Dssa::new(params).run_traced(&ctx).unwrap();
        let gap = one_minus_inv_e - params.epsilon;
        for it in &trace {
            let Some((_, e2, e3)) = it.epsilons else { continue };
            let floor = e2 * gap + one_minus_inv_e * e3;
            assert!(
                floor <= params.epsilon,
                "t={}: conservative ε₁=0 floor {floor} exceeds ε — the clamp could bind",
                it.t
            );
        }
    }
}

/// Satellite regression: the final doubling must not overshoot `Nmax`.
/// On this cap-hitting fixture (uniform singleton RR sets, so D1 needs
/// ≈ n·Λ₁ sets — more than the cap allows) the pre-fix schedule would
/// have extended to `Λ·2^t ≈ 2×` past the cap; the clamp pins the pool
/// to at most `⌈Nmax⌉` for both rules, and for SSA too.
#[test]
fn cap_clamps_the_final_extension() {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(30);
    b.add_edge(0, 1, 0.0); // dead edge: every RR set is a uniform singleton
    let g = b.build(WeightModel::Provided).unwrap();
    let params = Params::new(1, 0.5, 0.5).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(7);
    let n_max = bounds::nmax(30, 1, 0.5, 0.5, ctx.cap_ratio(1));
    let cap = n_max.ceil() as u64;

    for rule in [StoppingRule::Conservative, StoppingRule::DssaFix] {
        let r = Dssa::new(params.with_stopping_rule(rule)).run(&ctx).unwrap();
        assert!(
            r.rr_sets_total() <= cap,
            "{rule}: pool {} overshot ⌈Nmax⌉ = {cap}",
            r.rr_sets_total()
        );
        assert!(r.hit_cap, "{rule}: this fixture must terminate at the cap");
        assert_eq!(r.binding, StopCondition::Cap);
        // The clamp actually bound: the schedule wanted ≥ 2× more.
        let t_max = bounds::max_iterations(n_max, 0.5, 0.5);
        let delta_iter = 0.5 / (3.0 * f64::from(t_max));
        let lambda = bounds::upsilon(0.5, delta_iter).ceil().max(1.0) as u64;
        let scheduled = 2 * (lambda << (r.iterations - 1));
        assert!(
            scheduled > cap,
            "{rule}: schedule {scheduled} never exceeded the cap {cap} — fixture too weak"
        );
    }

    let s = Ssa::new(params).run(&ctx).unwrap();
    assert!(s.rr_sets_main <= cap, "SSA pool {} overshot ⌈Nmax⌉ = {cap}", s.rr_sets_main);
    assert!(s.hit_cap);
    assert_eq!(s.binding, StopCondition::Cap);
}

/// Satellite regression: bit-identity across worker-thread counts for
/// *both* stopping rules (per-index RNG streams make pool growth
/// parallelism-invariant; the certificate must not break that).
#[test]
fn thread_bit_identity_for_both_rules() {
    let g = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
    for rule in [StoppingRule::Conservative, StoppingRule::DssaFix] {
        let params = Params::new(5, 0.3, 0.1).unwrap().with_stopping_rule(rule);
        let r1 = Dssa::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(9).with_threads(1))
            .unwrap();
        let r4 = Dssa::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(9).with_threads(4))
            .unwrap();
        assert_eq!(r1.seeds, r4.seeds, "{rule}: seeds diverged across thread counts");
        assert_eq!(r1.rr_sets_main, r4.rr_sets_main, "{rule}: sample counts diverged");
        assert_eq!(r1.influence_estimate, r4.influence_estimate);
        assert_eq!(r1.binding, r4.binding);
    }
}

/// SSA's ε-split is chosen up front, so the rule selection is recorded
/// but cannot change its behavior: both readings must produce identical
/// runs.
#[test]
fn ssa_is_stopping_rule_invariant() {
    let (g, params, seed) = rmat_fixture();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(seed);
    let cons = Ssa::new(params).run(&ctx).unwrap();
    let fix = Ssa::new(params.with_stopping_rule(StoppingRule::DssaFix)).run(&ctx).unwrap();
    assert_eq!(cons.seeds, fix.seeds);
    assert_eq!(cons.rr_sets_main, fix.rr_sets_main);
    assert_eq!(cons.rr_sets_verify, fix.rr_sets_verify);
    assert_eq!(cons.iterations, fix.iterations);
    assert_eq!(cons.influence_estimate, fix.influence_estimate);
    assert_eq!(cons.binding, fix.binding);
    assert_eq!(cons.stopping_rule, Some(StoppingRule::Conservative));
    assert_eq!(fix.stopping_rule, Some(StoppingRule::DssaFix));
}
