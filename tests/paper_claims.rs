//! Tests pinning the paper's *qualitative claims* — the statements the
//! evaluation section is built on. These are the repository's regression
//! guard for "did we actually reproduce the paper".

use stop_and_stare::baselines::{Imm, Tim};
use stop_and_stare::core::bounds;
use stop_and_stare::graph::{gen, WeightModel};
use stop_and_stare::{Dssa, Graph, Model, Params, SamplingContext, SpreadEstimator, Ssa};

fn social_graph(seed: u64) -> Graph {
    gen::rmat(3000, 18_000, gen::RmatParams::GRAPH500, seed)
        .build(WeightModel::WeightedCascade)
        .unwrap()
}

/// Claim (§7.2.2/Table 3): D-SSA and SSA generate several times fewer RR
/// sets than IMM at equal (ε, δ), and D-SSA ≤ SSA.
#[test]
fn sample_ordering_dssa_ssa_imm() {
    let g = social_graph(1);
    let params = Params::new(50, 0.2, 1.0 / 3000.0).unwrap();
    for model in [Model::LinearThreshold, Model::IndependentCascade] {
        let ctx = SamplingContext::new(&g, model).with_seed(3);
        let d = Dssa::new(params).run(&ctx).unwrap();
        let s = Ssa::new(params).run(&ctx).unwrap();
        let i = Imm::new(params).run(&ctx).unwrap();
        // "D-SSA performs at least as good as SSA" holds in aggregate,
        // not pointwise — the doubling schedule quantizes pool sizes, so
        // allow one checkpoint (2x) of slack per instance.
        assert!(
            d.rr_sets_total() <= 2 * s.rr_sets_total(),
            "{model}: D-SSA {} > 2x SSA {}",
            d.rr_sets_total(),
            s.rr_sets_total()
        );
        assert!(
            s.rr_sets_total() < i.rr_sets_main,
            "{model}: SSA {} >= IMM {}",
            s.rr_sets_total(),
            i.rr_sets_main
        );
    }
}

/// Claim (§7.2.3): memory usage follows the same ordering — the pool is
/// the footprint.
#[test]
fn memory_ordering_dssa_ssa_imm() {
    let g = social_graph(2);
    let params = Params::new(50, 0.2, 1.0 / 3000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);
    let d = Dssa::new(params).run(&ctx).unwrap();
    let s = Ssa::new(params).run(&ctx).unwrap();
    let i = Imm::new(params).run(&ctx).unwrap();
    assert!(d.peak_pool_bytes <= s.peak_pool_bytes * 2, "D-SSA vs SSA pools");
    assert!(
        s.peak_pool_bytes < i.peak_pool_bytes,
        "SSA {} vs IMM {}",
        s.peak_pool_bytes,
        i.peak_pool_bytes
    );
}

/// Claim (§7.2.1): all methods return comparable seed-set quality — no
/// significant difference in expected influence.
#[test]
fn quality_parity_across_methods() {
    let g = social_graph(3);
    let params = Params::new(20, 0.2, 1.0 / 3000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(7);
    let est = SpreadEstimator::new(&g, Model::IndependentCascade);
    let spreads: Vec<(&str, f64)> = vec![
        ("D-SSA", est.estimate(&Dssa::new(params).run(&ctx).unwrap().seeds, 20_000, 9)),
        ("SSA", est.estimate(&Ssa::new(params).run(&ctx).unwrap().seeds, 20_000, 9)),
        ("IMM", est.estimate(&Imm::new(params).run(&ctx).unwrap().seeds, 20_000, 9)),
        ("TIM+", est.estimate(&Tim::plus(params).run(&ctx).unwrap().seeds, 20_000, 9)),
    ];
    let max = spreads.iter().map(|&(_, s)| s).fold(f64::MIN, f64::max);
    for (name, s) in &spreads {
        assert!(
            s / max > 0.9,
            "{name} spread {s:.1} more than 10% below best {max:.1}: {spreads:?}"
        );
    }
}

/// Claim (§1, Fig 2): influence gain saturates — after a few thousand
/// seeds (scaled: a few hundred) marginal influence becomes slim.
#[test]
fn influence_saturates_with_k() {
    let g = social_graph(4);
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(11);
    let est = SpreadEstimator::new(&g, Model::LinearThreshold);
    let mut prev = 0.0;
    let mut gains = Vec::new();
    for k in [10usize, 100, 400] {
        let params = Params::new(k, 0.2, 1.0 / 3000.0).unwrap();
        let r = Dssa::new(params).run(&ctx).unwrap();
        let s = est.estimate(&r.seeds, 10_000, 13);
        gains.push(s - prev);
        prev = s;
    }
    // marginal gain per added seed must shrink sharply
    let early_rate = gains[0] / 10.0;
    let late_rate = gains[2] / 300.0;
    assert!(
        late_rate < early_rate * 0.5,
        "no saturation: early {early_rate:.2}/seed, late {late_rate:.2}/seed"
    );
}

/// Regression (PR 3): Algorithm 4's ε₂/ε₃ must divide by the find-half
/// size `Λ·2^(t−1)`, not by `2^(t−1)` alone. The Λ-dropped variant
/// (present up to commit 12c1870) inflated ε₂/ε₃ by √Λ and made D-SSA
/// pay needless doublings after condition D1 was already satisfied. The
/// constants below are that variant's measured behavior on these
/// fixtures; the corrected rule must beat them by ≥4× where D2 was
/// binding and never do worse where D1 was.
#[test]
fn lambda_corrected_stopping_rule_cuts_samples() {
    // ER fixture where the dropped Λ cost two full doublings (t = 4
    // instead of t = 2): ≥4× fewer RR sets at unchanged (ε, δ), with the
    // influence estimate preserved within ε.
    let g = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
    let params = Params::new(80, 0.1, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(9);
    let r = Dssa::new(params).run(&ctx).unwrap();
    const PRE_FIX_ER_TOTAL: u64 = 19_184;
    const PRE_FIX_ER_INFLUENCE: f64 = 265.3;
    assert!(
        4 * r.rr_sets_total() <= PRE_FIX_ER_TOTAL,
        "expected a ≥4x sample drop: {} vs pre-fix {}",
        r.rr_sets_total(),
        PRE_FIX_ER_TOTAL
    );
    assert!(
        (r.influence_estimate - PRE_FIX_ER_INFLUENCE).abs() / PRE_FIX_ER_INFLUENCE
            <= params.epsilon,
        "influence moved beyond ε: {} vs pre-fix {}",
        r.influence_estimate,
        PRE_FIX_ER_INFLUENCE
    );

    // RMAT fixture where condition D1 (verify-half coverage), not D2,
    // was binding: here the fix changes nothing, and must not regress.
    let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let params = Params::new(10, 0.3, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);
    let d = Dssa::new(params).run(&ctx).unwrap();
    const PRE_FIX_RMAT_TOTAL: u64 = 1200;
    const PRE_FIX_RMAT_INFLUENCE: f64 = 980.0;
    assert!(
        d.rr_sets_total() <= PRE_FIX_RMAT_TOTAL,
        "D1-bound fixture regressed: {} vs {}",
        d.rr_sets_total(),
        PRE_FIX_RMAT_TOTAL
    );
    assert!(
        (d.influence_estimate - PRE_FIX_RMAT_INFLUENCE).abs() / PRE_FIX_RMAT_INFLUENCE
            <= params.epsilon
    );
}

/// Claim (§3.2/Theorem 1): the paper's worked thresholds are ordered —
/// IMM's Eq. 13 improves on TIM's Eq. 12 for identical inputs, and the
/// type-2 threshold D-SSA realizes is below both.
#[test]
fn threshold_hierarchy() {
    let (n, k, eps, delta) = (100_000u64, 100u64, 0.1, 1e-5);
    let opt = 5000.0;
    let t = bounds::prior_thresholds(n, k, eps, delta, opt);
    assert!(t.imm < t.tim);

    // D-SSA's realized sample count on a real instance sits far below
    // the prior thresholds computed with the *true* OPT of that instance.
    let g = social_graph(5);
    let params = Params::new(50, 0.2, 1.0 / 3000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(2);
    let d = Dssa::new(params).run(&ctx).unwrap();
    let opt_estimate = d.influence_estimate; // ≥ (1-1/e-ε)OPT
    let prior = bounds::prior_thresholds(3000, 50, 0.2, 1.0 / 3000.0, opt_estimate);
    assert!(
        (d.rr_sets_total() as f64) < prior.tim,
        "D-SSA used {} sets, TIM's threshold is {:.0}",
        d.rr_sets_total(),
        prior.tim
    );
}

/// Claim (abstract): SSA/D-SSA keep the (1 − 1/e − ε) guarantee with
/// probability 1 − δ. Empirical check: over repeated runs on a graph with
/// known OPT, failures stay rare.
#[test]
fn guarantee_holds_empirically() {
    // Star graph: OPT_1 = 1 + 30·0.5 = 16 exactly (IC closed form).
    let mut b = stop_and_stare::GraphBuilder::new();
    for v in 1..=30 {
        b.add_edge(0, v, 0.5);
    }
    let g = b.build(WeightModel::Provided).unwrap();
    let est = SpreadEstimator::new(&g, Model::IndependentCascade);
    let opt = 16.0;
    let (eps, delta) = (0.3, 0.2);
    let params = Params::new(1, eps, delta).unwrap();
    let mut failures = 0;
    let runs = 40;
    for seed in 0..runs {
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
        let r = Dssa::new(params).run(&ctx).unwrap();
        let spread = est.estimate(&r.seeds, 20_000, 1000 + seed);
        if spread < (1.0 - 1.0 / std::f64::consts::E - eps) * opt {
            failures += 1;
        }
    }
    // δ = 0.2 ⇒ expect ≤ 8 failures; in practice the only node with
    // influence > 1 is the hub, so failures should be ~0
    assert!(failures <= runs / 5, "{failures}/{runs} guarantee violations");
}
