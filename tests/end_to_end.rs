//! End-to-end integration tests: every algorithm against ground truth on
//! instances small enough to verify exhaustively or in closed form.

use stop_and_stare::baselines::{monte_carlo_greedy, Celf, CelfPlusPlus, Imm, Tim};
use stop_and_stare::graph::{GraphBuilder, WeightModel};
use stop_and_stare::{Dssa, Graph, Model, Params, SamplingContext, SpreadEstimator, Ssa};

/// Exhaustively computes OPT_k by brute-force search over all size-k
/// seed sets, with exact spread from long Monte Carlo runs.
fn brute_force_opt(graph: &Graph, model: Model, k: usize, sims: u64) -> (Vec<u32>, f64) {
    let n = graph.num_nodes();
    let est = SpreadEstimator::new(graph, model);
    let mut best: (Vec<u32>, f64) = (Vec::new(), -1.0);
    let mut current = Vec::with_capacity(k);
    fn rec(
        n: u32,
        k: usize,
        start: u32,
        current: &mut Vec<u32>,
        est: &SpreadEstimator<'_>,
        sims: u64,
        best: &mut (Vec<u32>, f64),
    ) {
        if current.len() == k {
            let s = est.estimate(current, sims, 1234);
            if s > best.1 {
                *best = (current.clone(), s);
            }
            return;
        }
        for v in start..n {
            current.push(v);
            rec(n, k, v + 1, current, est, sims, best);
            current.pop();
        }
    }
    rec(n, k, 0, &mut current, &est, sims, &mut best);
    best
}

/// A 12-node graph with asymmetric influence structure.
fn testbed() -> Graph {
    let mut b = GraphBuilder::new();
    // hub 0 with strong fan-out
    for v in 1..5 {
        b.add_edge(0, v, 0.8);
    }
    // chain with moderate probabilities
    b.add_edge(5, 6, 0.6);
    b.add_edge(6, 7, 0.6);
    b.add_edge(7, 8, 0.6);
    // second hub, weaker
    for v in 9..12 {
        b.add_edge(8, v, 0.5);
    }
    b.add_edge(4, 5, 0.3);
    b.build(WeightModel::Provided).unwrap()
}

/// Every algorithm must land within the (1 − 1/e − ε) guarantee of the
/// brute-force optimum on the testbed (they typically match it exactly).
#[test]
fn all_algorithms_meet_guarantee_against_brute_force() {
    let g = testbed();
    let k = 2;
    for model in [Model::IndependentCascade, Model::LinearThreshold] {
        let (_, opt) = brute_force_opt(&g, model, k, 4_000);
        let params = Params::new(k, 0.2, 0.05).unwrap();
        let ctx = SamplingContext::new(&g, model).with_seed(5);
        let est = SpreadEstimator::new(&g, model);

        let runs: Vec<(&str, Vec<u32>)> = vec![
            ("D-SSA", Dssa::new(params).run(&ctx).unwrap().seeds),
            ("SSA", Ssa::new(params).run(&ctx).unwrap().seeds),
            ("IMM", Imm::new(params).run(&ctx).unwrap().seeds),
            ("TIM", Tim::new(params).run(&ctx).unwrap().seeds),
            ("TIM+", Tim::plus(params).run(&ctx).unwrap().seeds),
            ("CELF", Celf::new(k).with_simulations(3000).run(&ctx).unwrap().seeds),
            ("CELF++", CelfPlusPlus::new(k).with_simulations(3000).run(&ctx).unwrap().seeds),
            ("MC-greedy", monte_carlo_greedy(&ctx, k, 3000).unwrap().seeds),
        ];
        // ε = 0.2 guarantee plus Monte Carlo slack
        let floor = (1.0 - 1.0 / std::f64::consts::E - 0.2) * opt * 0.95;
        for (name, seeds) in runs {
            let spread = est.estimate(&seeds, 4_000, 1234);
            assert!(
                spread >= floor,
                "{name} under {model}: spread {spread:.2} below floor {floor:.2} (opt {opt:.2})"
            );
        }
    }
}

/// The RIS estimate each algorithm reports must agree with ground-truth
/// forward simulation of its own seeds within the ε it promises.
#[test]
fn reported_estimates_match_forward_simulation() {
    let g = testbed();
    let params = Params::new(2, 0.2, 0.05).unwrap();
    for model in [Model::IndependentCascade, Model::LinearThreshold] {
        let ctx = SamplingContext::new(&g, model).with_seed(9);
        let est = SpreadEstimator::new(&g, model);
        for (name, r) in [
            ("D-SSA", Dssa::new(params).run(&ctx).unwrap()),
            ("SSA", Ssa::new(params).run(&ctx).unwrap()),
            ("IMM", Imm::new(params).run(&ctx).unwrap()),
        ] {
            let truth = est.estimate(&r.seeds, 30_000, 4321);
            let rel = (r.influence_estimate - truth).abs() / truth;
            assert!(
                rel < 0.25,
                "{name} under {model}: reported {:.2} vs simulated {truth:.2} (rel {rel:.3})",
                r.influence_estimate
            );
        }
    }
}

/// Seed sets must be exactly k distinct valid nodes for every algorithm.
#[test]
fn seed_sets_are_wellformed() {
    let g = testbed();
    let n = g.num_nodes();
    let params = Params::new(3, 0.25, 0.1).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(2);
    for (name, seeds) in [
        ("D-SSA", Dssa::new(params).run(&ctx).unwrap().seeds),
        ("SSA", Ssa::new(params).run(&ctx).unwrap().seeds),
        ("IMM", Imm::new(params).run(&ctx).unwrap().seeds),
        ("TIM+", Tim::plus(params).run(&ctx).unwrap().seeds),
    ] {
        assert_eq!(seeds.len(), 3, "{name}");
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "{name}: duplicate seeds {seeds:?}");
        assert!(sorted.iter().all(|&v| v < n), "{name}: out-of-range seed");
    }
}

/// Identical configuration implies identical output — across the whole
/// stack, including parallel pool growth.
#[test]
fn full_stack_determinism() {
    let g = testbed();
    let params = Params::new(2, 0.2, 0.05).unwrap();
    for threads in [1usize, 4] {
        let ctx =
            SamplingContext::new(&g, Model::LinearThreshold).with_seed(31).with_threads(threads);
        let a = Dssa::new(params).run(&ctx).unwrap();
        let b = Dssa::new(params).run(&ctx).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.influence_estimate, b.influence_estimate);
        assert_eq!(a.rr_sets_main, b.rr_sets_main);
    }
}

/// Different master seeds explore different sample streams but the
/// returned quality must stay within the guarantee band.
#[test]
fn quality_stable_across_seeds() {
    let g = testbed();
    let params = Params::new(2, 0.2, 0.05).unwrap();
    let est = SpreadEstimator::new(&g, Model::IndependentCascade);
    let mut spreads = Vec::new();
    for seed in 0..5 {
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
        let r = Dssa::new(params).run(&ctx).unwrap();
        spreads.push(est.estimate(&r.seeds, 10_000, 77));
    }
    let max = spreads.iter().cloned().fold(f64::MIN, f64::max);
    let min = spreads.iter().cloned().fold(f64::MAX, f64::min);
    assert!((max - min) / max < 0.15, "seed-to-seed spread varies too much: {spreads:?}");
}
