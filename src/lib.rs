//! # Stop-and-Stare
//!
//! A production-quality Rust implementation of *"Stop-and-Stare: Optimal
//! Sampling Algorithms for Viral Marketing in Billion-scale Networks"*
//! (Nguyen, Thai, Dinh — SIGMOD 2016): the SSA and D-SSA influence-
//! maximization algorithms, every substrate they stand on, the baselines
//! they are evaluated against, and the targeted-viral-marketing
//! extension.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graph storage, weight models, generators, IO
//!   (`sns-graph`);
//! * [`diffusion`] — IC/LT cascades, Monte Carlo spread, RR-set sampling
//!   (`sns-diffusion`);
//! * [`rrset`] — RR pools and greedy max-coverage (`sns-rrset`);
//! * [`core`] — SSA, D-SSA, Estimate-Inf and the unified RIS framework
//!   (`sns-core`);
//! * [`baselines`] — IMM, TIM/TIM+, CELF/CELF++ (`sns-baselines`);
//! * [`tvm`] — targeted viral marketing over weighted RIS (`sns-tvm`).
//!
//! The most common entry points are lifted to the crate root.
//!
//! ## Quickstart
//!
//! ```
//! use stop_and_stare::{Dssa, Model, Params, SamplingContext};
//! use stop_and_stare::graph::{gen::erdos_renyi, WeightModel};
//!
//! // 1. A network (here synthetic; see `graph::io` for file loading).
//! let g = erdos_renyi(500, 3000, 7).build(WeightModel::WeightedCascade).unwrap();
//!
//! // 2. Find 10 seeds with a (1 − 1/e − 0.3)-guarantee, 90% confidence.
//! let params = Params::new(10, 0.3, 0.1).unwrap();
//! let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(42);
//! let result = Dssa::new(params).run(&ctx).unwrap();
//!
//! assert_eq!(result.seeds.len(), 10);
//! println!("estimated influence: {:.1}", result.influence_estimate);
//! ```
//!
//! ## Further reading
//!
//! `README.md` has the crate map and quickstart pointers
//! (`examples/quickstart.rs`, `examples/seed_service.rs`);
//! `docs/ARCHITECTURE.md` walks the RR pipeline and the epoch/seal
//! lifecycle behind the serving layer; `docs/DERIVATIONS.md` derives
//! the stopping rules the solvers implement — all at the repository
//! root.

pub use sns_baselines as baselines;
pub use sns_core as core;
pub use sns_diffusion as diffusion;
pub use sns_graph as graph;
pub use sns_rrset as rrset;
pub use sns_tvm as tvm;

pub use sns_core::{
    AdmissionQueue, AdmissionStats, BatchPlan, Certificate, Dssa, DssaIteration, EpochDirectory,
    GroupKey, Grower, GrowthOutcome, NodeCosts, Params, Pending, PlanGroup, PoolStore, Priority,
    Recovery, RejectReason, RunResult, SamplingContext, SaveStats, SealOutcome, SeedAnswer,
    SeedQuery, SeedQueryEngine, Ssa, SsaEpsilons, StopCondition, StoppingRule, StoreError,
    StoreFingerprint,
};
pub use sns_diffusion::{Model, SpreadEstimator};
pub use sns_graph::{Graph, GraphBuilder, WeightModel};
