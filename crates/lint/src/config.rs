//! `lint-allow.toml` — the checked-in exemption list and rule scope.
//!
//! The file is the *documentation* of where nondeterminism and panics
//! are allowed to live: every `[[allow]]` entry must carry a non-empty
//! `reason` string, and entries that stop matching anything are
//! themselves an error (a stale exemption is a lie about the code).
//!
//! Parsed with a handwritten subset-of-TOML reader (the workspace is
//! offline and the linter takes zero dependencies). Supported syntax:
//! comments, `[section]`, `[[array-of-table]]`, `key = "string"`, and
//! `key = ["a", "b"]` (single- or multi-line). That is all this file
//! format needs; anything else is a parse error, not a silent skip.

use std::collections::BTreeMap;

/// One parsed `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (e.g. `determinism/wall-clock`).
    pub rule: String,
    /// Workspace-relative path (forward slashes) the entry applies to.
    pub path: String,
    /// Optional substring the flagged source line must contain; narrows
    /// an entry to specific sites within the file.
    pub contains: Option<String>,
    /// Why the exemption is sound. **Required and non-empty** — the
    /// allowlist is the documentation of sanctioned violations.
    pub reason: String,
}

/// Parsed `lint-allow.toml`: rule scope plus the exemption list.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Source trees (workspace-relative dirs or files) the determinism
    /// and cast rules walk.
    pub deterministic: Vec<String>,
    /// Files under the panic-path contract (no unwrap/expect/panic!/
    /// unchecked indexing outside `#[cfg(test)]`).
    pub panic_paths: Vec<String>,
    /// Files whose `as` casts are sanctioned (the designated checked-
    /// conversion helpers; everything else must route through them).
    pub cast_sanctioned: Vec<String>,
    /// Files under the lock-free serving contract: no blocking
    /// `.lock()` / `.read()` / `.write()` acquisition outside
    /// `#[cfg(test)]` — readers pin the epoch directory instead.
    pub lock_free_paths: Vec<String>,
    /// Directory names skipped during the walk (test/bench/fixture
    /// trees).
    pub skip_dirs: Vec<String>,
    /// The exemption entries.
    pub allows: Vec<AllowEntry>,
}

/// A configuration failure: file unreadable, syntax outside the
/// supported subset, or an entry violating the schema (most importantly,
/// a missing or empty `reason`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of `lint-allow.toml` the error points at (0 when the
    /// whole file is the problem).
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A parsed value: string or array of strings.
enum Value {
    Str(String),
    Arr(Vec<String>),
}

/// Parses the supported TOML subset out of `text`.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    // (section name, is_array_of_tables, key → value, header line)
    let mut section: Option<(String, bool, BTreeMap<String, Value>, u32)> = None;
    let err = |line: u32, message: String| Err(ConfigError { line, message });

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            flush(&mut cfg, section.take())?;
            section = Some((header.trim().to_string(), true, BTreeMap::new(), lineno));
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            flush(&mut cfg, section.take())?;
            section = Some((header.trim().to_string(), false, BTreeMap::new(), lineno));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(lineno, format!("expected `key = value`, got {line:?}"));
        };
        let key = line[..eq].trim().to_string();
        let mut rest = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming until the bracket closes.
        if rest.starts_with('[') {
            while !array_closed(&rest) {
                match lines.next() {
                    Some((_, cont)) => {
                        rest.push(' ');
                        rest.push_str(strip_comment(cont).trim());
                    }
                    None => return err(lineno, format!("unterminated array for key {key:?}")),
                }
            }
        }
        let value = parse_value(&rest).map_err(|m| ConfigError { line: lineno, message: m })?;
        let Some((_, _, map, _)) = section.as_mut() else {
            return err(lineno, format!("key {key:?} outside any [section]"));
        };
        if map.insert(key.clone(), value).is_some() {
            return err(lineno, format!("duplicate key {key:?} in one entry"));
        }
    }
    flush(&mut cfg, section.take())?;
    Ok(cfg)
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn array_closed(rest: &str) -> bool {
    // Counts brackets outside strings; the subset has no nested arrays.
    let mut in_str = false;
    let mut escaped = false;
    let mut open = 0i32;
    for c in rest.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => open += 1,
            ']' if !in_str => open -= 1,
            _ => {}
        }
        escaped = false;
    }
    open <= 0
}

fn parse_value(rest: &str) -> Result<Value, String> {
    if let Some(inner) = rest.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("array does not close")?;
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            items.push(parse_string(piece)?);
        }
        return Ok(Value::Arr(items));
    }
    Ok(Value::Str(parse_string(rest)?))
}

/// Splits an array body on commas outside strings.
fn split_top_level(inner: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in inner.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escaped = false;
    }
    out.push(cur);
    out
}

fn parse_string(piece: &str) -> Result<String, String> {
    let inner = piece
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("expected a \"quoted string\", got {piece:?}"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some(other) => return Err(format!("unsupported escape \\{other}")),
                None => return Err("dangling backslash".into()),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Folds a completed section into the config, enforcing the schema.
fn flush(
    cfg: &mut Config,
    section: Option<(String, bool, BTreeMap<String, Value>, u32)>,
) -> Result<(), ConfigError> {
    let Some((name, is_array, mut map, lineno)) = section else {
        return Ok(());
    };
    let err = |message: String| Err(ConfigError { line: lineno, message });
    let take_arr = |map: &mut BTreeMap<String, Value>, key: &str| -> Option<Vec<String>> {
        match map.remove(key) {
            Some(Value::Arr(v)) => Some(v),
            Some(Value::Str(s)) => Some(vec![s]),
            None => None,
        }
    };
    match (name.as_str(), is_array) {
        ("scope", false) => {
            cfg.deterministic = take_arr(&mut map, "deterministic").unwrap_or_default();
            cfg.panic_paths = take_arr(&mut map, "panic_paths").unwrap_or_default();
            cfg.cast_sanctioned = take_arr(&mut map, "cast_sanctioned").unwrap_or_default();
            cfg.lock_free_paths = take_arr(&mut map, "lock_free_paths").unwrap_or_default();
            cfg.skip_dirs = take_arr(&mut map, "skip_dirs").unwrap_or_default();
            if let Some(stray) = map.keys().next() {
                return err(format!("unknown key {stray:?} in [scope]"));
            }
        }
        ("allow", true) => {
            let take_str = |map: &mut BTreeMap<String, Value>, key: &str| match map.remove(key) {
                Some(Value::Str(s)) => Ok(Some(s)),
                Some(Value::Arr(_)) => Err(format!("key {key:?} must be a string")),
                None => Ok(None),
            };
            let fail = |m: String| ConfigError { line: lineno, message: m };
            let rule = take_str(&mut map, "rule")
                .map_err(fail)?
                .ok_or_else(|| fail("[[allow]] entry is missing `rule`".into()))?;
            let path = take_str(&mut map, "path")
                .map_err(fail)?
                .ok_or_else(|| fail("[[allow]] entry is missing `path`".into()))?;
            let contains = take_str(&mut map, "contains").map_err(fail)?;
            let reason = take_str(&mut map, "reason")
                .map_err(fail)?
                .ok_or_else(|| fail(format!("[[allow]] {rule} {path}: missing `reason`")))?;
            if reason.trim().is_empty() {
                return err(format!(
                    "[[allow]] {rule} {path}: empty `reason` — every exemption must say why"
                ));
            }
            if let Some(stray) = map.keys().next() {
                return err(format!("unknown key {stray:?} in [[allow]] entry"));
            }
            cfg.allows.push(AllowEntry { rule, path, contains, reason });
        }
        _ => return err(format!("unknown section [{name}]")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scope_and_allow_entries() {
        let cfg = parse(
            r#"
            [scope]
            deterministic = [
                "crates/core/src", # with a comment
                "src",
            ]
            panic_paths = ["crates/core/src/engine.rs"]
            lock_free_paths = ["crates/core/src/planner.rs"]

            [[allow]]
            rule = "determinism/wall-clock"
            path = "crates/core/src/ssa.rs"
            contains = "Instant::now"
            reason = "report-only timing"
            "#,
        )
        .unwrap();
        assert_eq!(cfg.deterministic, ["crates/core/src", "src"]);
        assert_eq!(cfg.panic_paths, ["crates/core/src/engine.rs"]);
        assert_eq!(cfg.lock_free_paths, ["crates/core/src/planner.rs"]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].contains.as_deref(), Some("Instant::now"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let e =
            parse("[[allow]]\nrule = \"determinism/rng\"\npath = \"crates/x.rs\"\n").unwrap_err();
        assert!(e.message.contains("missing `reason`"), "{e}");
    }

    #[test]
    fn allow_with_empty_reason_is_rejected() {
        let e = parse("[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"  \"\n").unwrap_err();
        assert!(e.message.contains("empty `reason`"), "{e}");
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        assert!(parse("[scope]\nbogus = [\"a\"]\n").is_err());
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"ok\"\nwhat = \"no\"\n")
            .is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let cfg = parse("[[allow]]\nrule = \"r\"\npath = \"p#q\"\nreason = \"see #42\"\n").unwrap();
        assert_eq!(cfg.allows[0].path, "p#q");
        assert_eq!(cfg.allows[0].reason, "see #42");
    }
}
