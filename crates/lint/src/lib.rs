//! `sns-lint` — the workspace determinism & safety analyzer.
//!
//! Stop-and-Stare's serving contract is *bit identity*: the same pool
//! epoch and query stream must produce byte-identical answers on every
//! run, machine, and thread count. That property survives only if no
//! deterministic code path reads the wall clock, iterates a hash table,
//! draws ambient randomness, truncates an index, or panics instead of
//! returning an error. This crate mechanically enforces those rules:
//!
//! * [`lexer`] — a handwritten Rust lexer (the workspace is offline and
//!   the linter takes zero dependencies — no `syn`).
//! * [`rules`] — the four rule families over the token stream.
//! * [`config`] — `lint-allow.toml`: rule scope plus the exemption list,
//!   where every entry must carry a non-empty `reason`.
//!
//! [`run`] walks the configured source trees, lints every `.rs` file,
//! subtracts allowlisted findings, and reports stale allowlist entries
//! (an exemption that no longer matches anything is itself an error).

pub mod config;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

pub use config::{AllowEntry, Config, ConfigError};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`determinism/wall-clock`, `casts/lossy`, …).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human explanation with the suggested fix.
    pub message: String,
    /// The trimmed source line, for allowlist `contains` matching.
    pub line_text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// The outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by any allowlist entry, sorted by
    /// (path, line, col).
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing — stale exemptions are
    /// errors so the file can only shrink when the code improves.
    pub stale_allows: Vec<AllowEntry>,
    /// Findings suppressed by a matching allowlist entry.
    pub suppressed: usize,
    /// Number of `.rs` files analyzed.
    pub files: usize,
}

impl Report {
    /// Whether the run passes the gate.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }
}

/// Reads and parses `<root>/lint-allow.toml`.
pub fn load_config(root: &Path) -> Result<Config, ConfigError> {
    let path = root.join("lint-allow.toml");
    let text = std::fs::read_to_string(&path).map_err(|e| ConfigError {
        line: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    config::parse(&text)
}

/// Lints every `.rs` file under the configured scope roots.
pub fn run(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = BTreeSet::new();
    for scope_root in &cfg.deterministic {
        collect(&root.join(scope_root), &cfg.skip_dirs, &mut files)?;
    }

    let mut report = Report::default();
    let mut used = vec![false; cfg.allows.len()];
    for file in &files {
        report.files += 1;
        let rel = relative(root, file);
        let source = std::fs::read_to_string(file)?;
        let lines: Vec<&str> = source.lines().collect();
        let ctx = rules::FileContext {
            path: &rel,
            lines: &lines,
            panic_path: path_in_scope(&rel, &cfg.panic_paths),
            cast_sanctioned: path_in_scope(&rel, &cfg.cast_sanctioned),
            lock_free_path: path_in_scope(&rel, &cfg.lock_free_paths),
        };
        let toks = lexer::lex(&source);
        for finding in rules::lint_tokens(&toks, &ctx) {
            match cfg.allows.iter().position(|a| allow_matches(a, &finding)) {
                Some(idx) => {
                    // `idx < used.len()` by construction; stay panic-free
                    // on our own serving path all the same.
                    if let Some(slot) = used.get_mut(idx) {
                        *slot = true;
                    }
                    report.suppressed += 1;
                }
                None => report.findings.push(finding),
            }
        }
    }
    report.stale_allows =
        cfg.allows.iter().zip(&used).filter(|(_, &u)| !u).map(|(a, _)| a.clone()).collect();
    report.findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

/// Whether `rel` equals a scope entry or lives under a scope directory.
fn path_in_scope(rel: &str, scope: &[String]) -> bool {
    scope.iter().any(|s| rel == s || rel.starts_with(&format!("{s}/")))
}

/// Whether one allowlist entry covers one finding.
fn allow_matches(entry: &AllowEntry, finding: &Finding) -> bool {
    if entry.rule != finding.rule {
        return false;
    }
    if finding.path != entry.path && !finding.path.starts_with(&format!("{}/", entry.path)) {
        return false;
    }
    match &entry.contains {
        Some(needle) => finding.line_text.contains(needle),
        None => true,
    }
}

/// Recursively gathers `.rs` files, in sorted order, skipping `skip_dirs`
/// by directory name. A scope entry may also name a single file.
fn collect(path: &Path, skip_dirs: &[String], out: &mut BTreeSet<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path.to_path_buf());
        }
        return Ok(());
    }
    if !path.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("scope root {} does not exist", path.display()),
        ));
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if skip_dirs.iter().any(|s| s == name) {
                continue;
            }
            collect(&entry, skip_dirs, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.insert(entry);
        }
    }
    Ok(())
}

/// `file` relative to `root`, with forward slashes.
fn relative(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_snippet(src: &str, panic_path: bool) -> Vec<Finding> {
        let lines: Vec<&str> = src.lines().collect();
        let ctx = rules::FileContext {
            path: "mem.rs",
            lines: &lines,
            panic_path,
            cast_sanctioned: false,
            lock_free_path: false,
        };
        rules::lint_tokens(&lexer::lex(src), &ctx)
    }

    #[test]
    fn cfg_test_items_are_exempt_everywhere() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f(map: HashMap<u32, u32>) {
                    for v in map.values() { let _ = v; }
                    let t = std::time::Instant::now();
                    let x: Option<u32> = None;
                    x.unwrap();
                }
            }
        "#;
        assert!(lint_snippet(src, true).is_empty());
    }

    #[test]
    fn hash_lookup_is_legal_iteration_is_not() {
        let src = r#"
            fn f(map: HashMap<u32, u32>) -> Option<&u32> {
                map.get(&3)
            }
            fn g(map: HashMap<u32, u32>) {
                for (k, v) in map.iter() { let _ = (k, v); }
            }
        "#;
        let findings = lint_snippet(src, false);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "determinism/hash-iteration");
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn allow_matching_respects_rule_path_and_contains() {
        let entry = AllowEntry {
            rule: "determinism/wall-clock".into(),
            path: "crates/core/src".into(),
            contains: Some("Instant::now".into()),
            reason: "report-only".into(),
        };
        let mut finding = Finding {
            rule: "determinism/wall-clock",
            path: "crates/core/src/ssa.rs".into(),
            line: 1,
            col: 1,
            message: String::new(),
            line_text: "let t0 = Instant::now();".into(),
        };
        assert!(allow_matches(&entry, &finding));
        finding.line_text = "let t0 = clock();".into();
        assert!(!allow_matches(&entry, &finding));
        finding.line_text = "let t0 = Instant::now();".into();
        finding.path = "crates/rrset/src/store.rs".into();
        assert!(!allow_matches(&entry, &finding));
    }

    #[test]
    fn enumerate_binding_narrowing_is_flagged() {
        let src = r#"
            fn f(xs: &[u32]) {
                for (i, x) in xs.iter().enumerate() {
                    let _ = (i as u32, x);
                }
            }
        "#;
        let findings = lint_snippet(src, false);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "casts/lossy");
    }

    #[test]
    fn poison_recovery_idiom_is_not_flagged() {
        let src = r#"
            fn f(guard: LockResult<MutexGuard<'_, u32>>) {
                let g = guard.unwrap_or_else(PoisonError::into_inner);
                let _ = g;
            }
        "#;
        assert!(lint_snippet(src, true).is_empty());
    }
}
