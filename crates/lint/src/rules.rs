//! The four rule families of the determinism & safety contract.
//!
//! * **`determinism/*`** — no wall-clock reads, no hash-order iteration,
//!   no ambient randomness, no environment-dependent values on
//!   deterministic paths. Keyed `HashMap`/`HashSet` lookup stays legal;
//!   *iteration* must go through `BTreeMap` or a sorted drain.
//! * **`casts/lossy`** — potentially width-lossy `as` casts
//!   (`u64→u32`, `usize→u32`, `f64→uN`, …) outside the sanctioned
//!   checked-conversion helpers.
//! * **`panics/*`** — no `unwrap`/`expect`/`panic!`-family macros and no
//!   unchecked non-literal indexing in the serving-path files.
//! * **`locks/blocking`** — no blocking `.lock()` / `.read()` /
//!   `.write()` acquisition in the lock-free serving files: readers pin
//!   the epoch directory; the single-writer mutex sites live elsewhere
//!   (or are allowlisted with their single-writer proof).
//!
//! All rules are *lexical taint heuristics* over the token stream from
//! [`crate::lexer`] plus the `#[cfg(test)]` outline computed here — a
//! deliberately simple design (no `syn`, no type inference) whose
//! behavior is pinned by the fixture corpus in `tests/fixtures/`. The
//! cast and hash-iteration rules track variable classes from type
//! annotations (`let x: u64`, fields, params, `= HashMap::new()`,
//! `.enumerate()` loop bindings), so an untracked expression is never
//! flagged: the rules err toward silence, and the paired `clippy.toml`
//! `disallowed-types`/`disallowed-methods` layer catches what a purely
//! lexical view cannot.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::Finding;

/// What the taint tracker knows about an identifier (file-global — the
/// heuristic does not model scopes; fixtures pin the consequences).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarClass {
    /// 64-bit-or-wider integer (`u64`, `usize`, `i64`, `isize`, `u128`,
    /// `i128`): narrowing below 32 bits of value range is flagged.
    WideInt,
    /// Floating point: any `as` to an integer type truncates.
    Float,
    /// `HashMap` / `HashSet`: iteration order is nondeterministic.
    Hash,
}

const WIDE_INTS: &[&str] = &["u64", "usize", "i64", "isize", "u128", "i128"];
const FLOATS: &[&str] = &["f64", "f32"];
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
/// Narrow integer targets a wide source must not `as`-cast into.
const NARROW_INTS: &[&str] = &["u32", "i32", "u16", "i16", "u8", "i8"];
/// Integer targets a float source must not `as`-cast into.
const INT_TARGETS: &[&str] =
    &["u64", "usize", "u32", "u16", "u8", "i64", "isize", "i32", "i16", "i8", "u128", "i128"];
/// Methods whose call on a hash collection observes iteration order.
const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// Computes the `#[cfg(test)]` / `#[test]` regions of the token stream
/// as half-open token-index ranges. An attribute whose bracket group
/// mentions `test` (and not `not`) marks the item that follows — through
/// its matching close brace — as test code, which every rule skips.
pub fn test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(group_end) = matching(toks, i + 1, '[', ']') else { break };
        let group = &toks[i + 2..group_end];
        let has = |s: &str| group.iter().any(|t| t.is_ident(s));
        let is_test_attr = has("test") && !has("not");
        i = group_end + 1;
        if !is_test_attr {
            continue;
        }
        // Skip any further attributes between the test marker and the
        // item itself.
        while i < toks.len()
            && toks[i].is_punct('#')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('['))
        {
            match matching(toks, i + 1, '[', ']') {
                Some(end) => i = end + 1,
                None => return spans,
            }
        }
        // Find the item body: the first `{` at delimiter depth 0 (or a
        // `;`, for body-less items like `#[cfg(test)] use …;`).
        let mut depth = 0i32;
        let mut body = None;
        let mut j = i;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some(open) = body {
            if let Some(close) = matching(toks, open, '{', '}') {
                spans.push((attr_start, close + 1));
                i = close + 1;
                continue;
            }
        }
        i = j + 1;
    }
    spans
}

/// Index of the delimiter matching `toks[open]` (`open_c` … `close_c`).
fn matching(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(s, e)| s <= i && i < e)
}

/// Builds the identifier → class taint map from type annotations,
/// constructor assignments, and `for`-loop bindings.
fn track_types(toks: &[Tok]) -> BTreeMap<String, VarClass> {
    let mut classes = BTreeMap::new();
    let class_of = |name: &str| {
        if WIDE_INTS.contains(&name) {
            Some(VarClass::WideInt)
        } else if FLOATS.contains(&name) {
            Some(VarClass::Float)
        } else if HASH_TYPES.contains(&name) {
            Some(VarClass::Hash)
        } else {
            None
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : Type` — but not `name :: path`.
        if matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
            && !matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
        {
            if let Some(ty) = leading_type_ident(toks, i + 2) {
                if let Some(class) = class_of(&ty) {
                    classes.insert(t.text.clone(), class);
                }
            }
        }
        // `name = HashMap::new()` / `= collections::HashSet::with_capacity(…)`.
        if matches!(toks.get(i + 1), Some(c) if c.is_punct('='))
            && !matches!(toks.get(i + 2), Some(c) if c.is_punct('='))
            && HASH_TYPES.iter().any(|ty| toks.path_segment_at(i + 2, ty))
        {
            classes.insert(t.text.clone(), VarClass::Hash);
        }
        // `for (idx, x) in …enumerate()` / `for id in … usize …` — range
        // and iterator loop bindings are usize.
        if t.is_ident("for") {
            let Some(var) = loop_binding(toks, i + 1) else { continue };
            // Find `in`, then the body `{`, bounded to the same line
            // neighborhood (100 tokens is far beyond any real header).
            let mut j = i + 1;
            let mut in_at = None;
            while j < toks.len() && j < i + 100 {
                if toks[j].is_ident("in") {
                    in_at = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_at) = in_at else { continue };
            let mut depth = 0i32;
            let mut k = in_at + 1;
            let mut header_has = false;
            while k < toks.len() {
                let tk = &toks[k];
                if tk.kind == TokKind::Punct {
                    match tk.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                }
                if tk.is_ident("enumerate") || tk.is_ident("usize") {
                    header_has = true;
                }
                k += 1;
            }
            if header_has {
                classes.insert(var, VarClass::WideInt);
            }
        }
    }
    classes
}

/// Extension trait: checks the tokens at `start` form a path expression
/// (`Seg :: … ::`) with `want` as one of its `::`-qualified segments —
/// `HashMap :: new` and `std :: collections :: HashMap :: new` both
/// contain the segment `HashMap`, a bare `HashMap` alone does not.
trait PathCheck {
    fn path_segment_at(&self, start: usize, want: &str) -> bool;
}

impl PathCheck for [Tok] {
    fn path_segment_at(&self, start: usize, want: &str) -> bool {
        let mut j = start;
        loop {
            let Some(t) = self.get(j) else { return false };
            if t.kind != TokKind::Ident {
                return false;
            }
            let double_colon = matches!(self.get(j + 1), Some(c) if c.is_punct(':'))
                && matches!(self.get(j + 2), Some(c) if c.is_punct(':'));
            if !double_colon {
                return false;
            }
            if t.text == want {
                return true;
            }
            j += 3;
        }
    }
}

/// The first bound identifier of a `for` pattern starting at `start`
/// (`for x in`, `for (i, x) in`, `for &mut x in` → `x` / `i`).
fn loop_binding(toks: &[Tok], start: usize) -> Option<String> {
    let mut j = start;
    while matches!(toks.get(j), Some(t) if t.is_punct('(') || t.is_punct('&') || t.is_ident("mut"))
    {
        j += 1;
    }
    let t = toks.get(j)?;
    (t.kind == TokKind::Ident && t.text != "_").then(|| t.text.clone())
}

/// The first meaningful type identifier at `start`: skips `&`, `mut`,
/// and path prefixes (`std :: collections :: HashMap` → `HashMap`).
fn leading_type_ident(toks: &[Tok], start: usize) -> Option<String> {
    let mut j = start;
    while matches!(toks.get(j), Some(t) if t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime)
    {
        j += 1;
    }
    loop {
        let t = toks.get(j)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        if matches!(toks.get(j + 1), Some(c) if c.is_punct(':'))
            && matches!(toks.get(j + 2), Some(c) if c.is_punct(':'))
        {
            j += 3;
            continue;
        }
        return Some(t.text.clone());
    }
}

/// Context for one file's rule run.
pub struct FileContext<'a> {
    /// Workspace-relative path (forward slashes).
    pub path: &'a str,
    /// Source lines, for diagnostics and allowlist `contains` matching.
    pub lines: &'a [&'a str],
    /// Whether the panic-path family applies to this file.
    pub panic_path: bool,
    /// Whether `as` casts in this file are sanctioned (checked-conversion
    /// helper modules).
    pub cast_sanctioned: bool,
    /// Whether the lock-free serving contract (no blocking lock
    /// acquisition) applies to this file.
    pub lock_free_path: bool,
}

impl FileContext<'_> {
    fn finding(&self, rule: &'static str, tok: &Tok, message: String) -> Finding {
        let line_text =
            self.lines.get(tok.line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default();
        Finding {
            rule,
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            line_text,
        }
    }
}

/// Runs every applicable rule family over one lexed file.
pub fn lint_tokens(toks: &[Tok], ctx: &FileContext<'_>) -> Vec<Finding> {
    let spans = test_spans(toks);
    let classes = track_types(toks);
    let mut findings = Vec::new();
    determinism(toks, &spans, &classes, ctx, &mut findings);
    if !ctx.cast_sanctioned {
        casts(toks, &spans, &classes, ctx, &mut findings);
    }
    if ctx.panic_path {
        panics(toks, &spans, ctx, &mut findings);
    }
    if ctx.lock_free_path {
        locks(toks, &spans, ctx, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// `determinism/*`: wall clock, ambient RNG, environment reads, and
/// hash-order iteration.
fn determinism(
    toks: &[Tok],
    spans: &[(usize, usize)],
    classes: &BTreeMap<String, VarClass>,
    ctx: &FileContext<'_>,
    out: &mut Vec<Finding>,
) {
    let path_call = |i: usize, head: &str, tails: &[&str]| -> bool {
        toks[i].is_ident(head)
            && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(toks.get(i + 3), Some(t) if t.kind == TokKind::Ident
                && tails.contains(&t.text.as_str()))
    };
    for i in 0..toks.len() {
        if in_spans(spans, i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        // Wall clock.
        if path_call(i, "Instant", &["now"]) {
            out.push(
                ctx.finding(
                    "determinism/wall-clock",
                    t,
                    "Instant::now() on a deterministic path — wall-clock reads may only feed \
                 report-only metadata (allowlist with a reason if so)"
                        .into(),
                ),
            );
        }
        if t.is_ident("SystemTime") || t.is_ident("UNIX_EPOCH") {
            out.push(ctx.finding(
                "determinism/wall-clock",
                t,
                format!("{} on a deterministic path — system time is nondeterministic", t.text),
            ));
        }
        // Ambient randomness.
        if t.is_ident("thread_rng") || t.is_ident("ThreadRng") || t.is_ident("from_entropy") {
            out.push(ctx.finding(
                "determinism/rng",
                t,
                format!(
                    "{} draws OS entropy — all randomness must come from seeded streams",
                    t.text
                ),
            ));
        }
        if path_call(i, "rand", &["random"]) {
            out.push(ctx.finding(
                "determinism/rng",
                t,
                "rand::random draws OS entropy — use the seeded sampling context".into(),
            ));
        }
        // Environment reads.
        if path_call(i, "env", &["var", "vars", "var_os", "vars_os"]) {
            out.push(ctx.finding(
                "determinism/env",
                t,
                "environment read on a deterministic path — results must not depend on env".into(),
            ));
        }
        if t.is_ident("available_parallelism") {
            out.push(
                ctx.finding(
                    "determinism/env",
                    t,
                    "available_parallelism() is environment-dependent — it may schedule work but \
                 must never influence results (allowlist with that argument if so)"
                        .into(),
                ),
            );
        }
        // Hash-order iteration: `tracked.iter()` and friends.
        if classes.get(&t.text) == Some(&VarClass::Hash)
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('.'))
            && matches!(toks.get(i + 2), Some(m) if m.kind == TokKind::Ident
                && HASH_ITER_METHODS.contains(&m.text.as_str()))
        {
            let method = &toks[i + 2].text;
            out.push(ctx.finding(
                "determinism/hash-iteration",
                t,
                format!(
                    "`{}.{method}(…)` iterates a hash collection — order is nondeterministic; \
                     use BTreeMap/BTreeSet or drain into a sorted Vec (keyed lookup is fine)",
                    t.text
                ),
            ));
        }
        // `for x in &tracked {` — direct iteration.
        if t.is_ident("in") {
            let mut j = i + 1;
            while matches!(toks.get(j), Some(p) if p.is_punct('&') || p.is_ident("mut")) {
                j += 1;
            }
            if let Some(v) = toks.get(j) {
                if v.kind == TokKind::Ident
                    && classes.get(&v.text) == Some(&VarClass::Hash)
                    && matches!(toks.get(j + 1), Some(b) if b.is_punct('{'))
                {
                    out.push(ctx.finding(
                        "determinism/hash-iteration",
                        v,
                        format!(
                            "`for … in {}` iterates a hash collection — order is \
                             nondeterministic; use BTreeMap/BTreeSet or a sorted drain",
                            v.text
                        ),
                    ));
                }
            }
        }
    }
}

/// `casts/lossy`: width-narrowing and float→int `as` casts on tracked
/// values, plus the `.len() as <narrow>` pattern.
fn casts(
    toks: &[Tok],
    spans: &[(usize, usize)],
    classes: &BTreeMap<String, VarClass>,
    ctx: &FileContext<'_>,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_spans(spans, i) || !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if target.kind != TokKind::Ident {
            continue;
        }
        let target_ty = target.text.as_str();
        // `….len() as <narrow>`: usize → narrow.
        let len_call = i >= 4
            && toks[i - 1].is_punct(')')
            && toks[i - 2].is_punct('(')
            && toks[i - 3].is_ident("len")
            && toks[i - 4].is_punct('.');
        if len_call && NARROW_INTS.contains(&target_ty) {
            out.push(ctx.finding(
                "casts/lossy",
                &toks[i],
                format!(
                    ".len() as {target_ty} can truncate (usize → {target_ty}) — use a checked \
                     conversion helper"
                ),
            ));
            continue;
        }
        // `tracked as <type>`.
        if i == 0 || toks[i - 1].kind != TokKind::Ident {
            continue;
        }
        let src = &toks[i - 1];
        match classes.get(&src.text) {
            Some(VarClass::WideInt) if NARROW_INTS.contains(&target_ty) => {
                out.push(ctx.finding(
                    "casts/lossy",
                    src,
                    format!(
                        "`{} as {target_ty}` narrows a 64-bit-class integer — use a checked \
                         conversion helper or the CsrOffsets width machinery",
                        src.text
                    ),
                ));
            }
            Some(VarClass::Float) if INT_TARGETS.contains(&target_ty) => {
                out.push(ctx.finding(
                    "casts/lossy",
                    src,
                    format!(
                        "`{} as {target_ty}` truncates a float — round explicitly and convert \
                         through a checked helper",
                        src.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// `locks/blocking`: blocking lock acquisition in the lock-free serving
/// files. Matches the nullary acquisition calls of the std primitives —
/// `.lock()`, `.read()`, `.write()` with an empty argument list — so
/// `Mutex::lock`, `RwLock::read`, and `RwLock::write` all fire while
/// `io::Read::read(&mut buf)`-style calls (which take arguments) and the
/// non-blocking `try_lock` family do not. Growth never blocks a query:
/// readers pin the epoch directory; the sanctioned single-writer mutex
/// sites are allowlisted with their single-writer proof.
fn locks(toks: &[Tok], spans: &[(usize, usize)], ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_spans(spans, i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && toks[i - 1].is_punct('.')
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(')'))
        {
            out.push(ctx.finding(
                "locks/blocking",
                t,
                format!(
                    ".{}() blocks on a lock-free serving path — readers must pin the epoch \
                     directory instead; a writer-side mutex needs an allowlist entry with its \
                     single-writer proof",
                    t.text
                ),
            ));
        }
    }
}

/// `panics/*`: unwrap/expect, panic-family macros, and non-literal
/// indexing in the serving-path files.
fn panics(toks: &[Tok], spans: &[(usize, usize)], ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_spans(spans, i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(` / `.unwrap_err()` — exact method names;
        // `unwrap_or_else(PoisonError::into_inner)` is the sanctioned
        // poison-recovery idiom and does not match.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_err" | "expect_err")
            && i > 0
            && toks[i - 1].is_punct('.')
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
        {
            out.push(ctx.finding(
                "panics/unwrap",
                t,
                format!(
                    ".{}() on a serving path — return a typed error (or allowlist a documented \
                     impossibility with its proof)",
                    t.text
                ),
            ));
        }
        // panic-family macros.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('!'))
        {
            out.push(ctx.finding(
                "panics/panic",
                t,
                format!("{}!() on a serving path — return a typed error instead", t.text),
            ));
        }
        // Non-literal indexing: `recv[expr]` where recv is an ident /
        // call / index result and expr is not a bare integer literal.
        // A keyword before `[` (`let [a, b] = …`, `for [x, y] in …`)
        // starts a slice *pattern*, not an index expression.
        const NON_RECEIVER_KEYWORDS: &[&str] = &[
            "let", "mut", "ref", "in", "if", "else", "match", "return", "break", "continue",
            "move", "while", "loop", "for", "as", "where",
        ];
        if t.is_punct('[')
            && i > 0
            && (matches!(&toks[i - 1], p if p.kind == TokKind::Ident
                && !NON_RECEIVER_KEYWORDS.contains(&p.text.as_str()))
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
        {
            // Attribute `#[…]` never matches (the `#` is punct, and the
            // receiver check above already excludes it).
            let Some(close) = matching(toks, i, '[', ']') else { continue };
            let inner = &toks[i + 1..close];
            let literal_only = inner.len() == 1 && inner[0].kind == TokKind::Num;
            if inner.is_empty() || literal_only {
                continue;
            }
            out.push(
                ctx.finding(
                    "panics/index",
                    t,
                    "non-literal indexing on a serving path — use .get()/.get_mut() with a typed \
                 error, or allowlist with the bounds proof"
                        .into(),
                ),
            );
        }
    }
}
