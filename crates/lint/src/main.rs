//! `sns-lint` CLI — the CI gate.
//!
//! ```text
//! cargo run -p sns-lint              # lint the workspace (root auto-found)
//! cargo run -p sns-lint -- --root X  # lint an explicit tree
//! ```
//!
//! Exit codes: `0` clean, `1` findings or stale allowlist entries,
//! `2` configuration error (missing/unparsable `lint-allow.toml`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => {
                    eprintln!("sns-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "sns-lint: workspace determinism & safety analyzer\n\
                     \n\
                     usage: sns-lint [--root <dir>]\n\
                     \n\
                     Walks the source trees named in <root>/lint-allow.toml and\n\
                     enforces the determinism, cast-width, and panic-path rules.\n\
                     Without --root, searches upward from the current directory\n\
                     for lint-allow.toml.\n\
                     \n\
                     exit codes: 0 clean, 1 findings, 2 config error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sns-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "sns-lint: no lint-allow.toml found here or in any parent directory \
                 (pass --root to point at the workspace)"
            );
            return ExitCode::from(2);
        }
    };

    let cfg = match sns_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("sns-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match sns_lint::run(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sns-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        eprintln!("{finding}");
        eprintln!("    | {}", finding.line_text);
    }
    for stale in &report.stale_allows {
        eprintln!(
            "lint-allow.toml: stale [[allow]] entry matches nothing: rule = {:?}, path = {:?}{} \
             — remove it (reason was: {})",
            stale.rule,
            stale.path,
            stale.contains.as_ref().map(|c| format!(", contains = {c:?}")).unwrap_or_default(),
            stale.reason
        );
    }

    if report.clean() {
        println!(
            "sns-lint: clean — {} files, {} sanctioned exemption(s) in use",
            report.files, report.suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "sns-lint: {} finding(s), {} stale allowlist entr(y/ies) across {} files",
            report.findings.len(),
            report.stale_allows.len(),
            report.files
        );
        ExitCode::from(1)
    }
}

/// Searches upward from the current directory for `lint-allow.toml`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint-allow.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
