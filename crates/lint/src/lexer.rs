//! A small handwritten Rust lexer — just enough token structure for the
//! lint rules in [`crate::rules`].
//!
//! The lexer's one job is to never misclassify *where code is*: comments
//! and string/char literals must not leak tokens (a `HashMap` mentioned
//! in a doc comment is not a finding), and every token must carry its
//! line/column so diagnostics point at real source. It deliberately does
//! **not** build an AST — the rules work on token patterns plus the
//! item outline in [`crate::rules::test_spans`].

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `for`, `in` … are plain idents here).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` never reads as a char.
    Lifetime,
    /// Numeric literal, suffix included (`42u32`, `1.5e-3`).
    Num,
    /// String / char / byte-string literal (contents dropped).
    Str,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One token with its source position (1-based line and byte column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (empty for [`TokKind::Str`]; the rules never match
    /// literal contents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column of the token start.
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a token stream, skipping whitespace and comments
/// (line, nested block, and doc forms) and collapsing literals.
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances past chars[i], maintaining line/col.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if chars[i + 1] == '*' {
                bump!();
                bump!();
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
                continue;
            }
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(n) if is_ident_start(n)) && after != Some('\'');
            bump!();
            if is_lifetime {
                let mut text = String::new();
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    bump!();
                }
                toks.push(Tok { kind: TokKind::Lifetime, text, line: tline, col: tcol });
            } else {
                // Char literal: scan (with escapes) to the closing quote.
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!();
                        if i < chars.len() {
                            bump!();
                        }
                        continue;
                    }
                    if chars[i] == '\'' {
                        bump!();
                        break;
                    }
                    bump!();
                }
                toks.push(Tok { kind: TokKind::Str, text: String::new(), line: tline, col: tcol });
            }
            continue;
        }
        // Plain string literal.
        if c == '"' {
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                    continue;
                }
                if chars[i] == '"' {
                    bump!();
                    break;
                }
                bump!();
            }
            toks.push(Tok { kind: TokKind::Str, text: String::new(), line: tline, col: tcol });
            continue;
        }
        // Identifier — may turn out to prefix a raw/byte string (r"", b"",
        // br#""#) or a raw identifier (r#name).
        if is_ident_start(c) {
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                bump!();
            }
            let string_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
            if string_prefix && i < chars.len() && (chars[i] == '"' || chars[i] == '#') {
                // Raw identifier r#name: only `r`, and `#` followed by an
                // identifier start (not another `#` or a quote).
                if text == "r"
                    && chars[i] == '#'
                    && matches!(chars.get(i + 1), Some(&n) if is_ident_start(n))
                {
                    bump!(); // the '#'
                    let mut raw = String::new();
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        raw.push(chars[i]);
                        bump!();
                    }
                    toks.push(Tok { kind: TokKind::Ident, text: raw, line: tline, col: tcol });
                    continue;
                }
                // Raw / byte string: count hashes, expect a quote, then
                // scan for the closing quote + same hash run (no escapes
                // in raw strings; plain escapes in b"").
                let mut hashes = 0usize;
                while i < chars.len() && chars[i] == '#' {
                    hashes += 1;
                    bump!();
                }
                if i < chars.len() && chars[i] == '"' {
                    bump!();
                    let raw = text.contains('r');
                    'scan: while i < chars.len() {
                        if !raw && chars[i] == '\\' {
                            bump!();
                            if i < chars.len() {
                                bump!();
                            }
                            continue;
                        }
                        if chars[i] == '"' {
                            bump!();
                            let mut seen = 0usize;
                            while seen < hashes && i < chars.len() && chars[i] == '#' {
                                seen += 1;
                                bump!();
                            }
                            if seen == hashes {
                                break 'scan;
                            }
                            continue;
                        }
                        bump!();
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
                // `r#` not followed by a quote or ident: fall through —
                // emit the ident and let the '#' lex as punctuation.
            }
            toks.push(Tok { kind: TokKind::Ident, text, line: tline, col: tcol });
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < chars.len() {
                let d = chars[i];
                if is_ident_continue(d) {
                    text.push(d);
                    bump!();
                    // Exponent sign: 1e-3, 2.5E+7.
                    if (d == 'e' || d == 'E')
                        && text.chars().next().is_some_and(|f| f.is_ascii_digit())
                        && matches!(chars.get(i), Some('+') | Some('-'))
                        && matches!(chars.get(i + 1), Some(n) if n.is_ascii_digit())
                    {
                        text.push(chars[i]);
                        bump!();
                    }
                    continue;
                }
                // A dot continues the number only before another digit
                // (so `0..10` and `1.max(2)` terminate the literal).
                if d == '.' && matches!(chars.get(i + 1), Some(n) if n.is_ascii_digit()) {
                    text.push(d);
                    bump!();
                    continue;
                }
                break;
            }
            toks.push(Tok { kind: TokKind::Num, text, line: tline, col: tcol });
            continue;
        }
        // Everything else: one punctuation character.
        let mut text = String::new();
        text.push(c);
        bump!();
        toks.push(Tok { kind: TokKind::Punct, text, line: tline, col: tcol });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_emit_no_idents() {
        let src = r##"
            // HashMap in a line comment
            /* Instant::now in /* a nested */ block */
            let s = "Instant::now inside a string";
            let r = r#"HashMap "quoted" raw"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn lines_and_columns_are_tracked() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let texts: Vec<String> = lex("0..10 1.5 2.max(3) 1e-3u64")
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["0", "10", "1.5", "2", "3", "1e-3u64"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_name() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()), "{ids:?}");
    }
}
