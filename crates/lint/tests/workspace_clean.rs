//! The workspace's own sources must pass the linter with zero findings
//! and zero stale allowlist entries. Running this as a tier-1 test means
//! `cargo test` alone enforces the determinism contract even where CI's
//! dedicated static-analysis job is not wired up.

use std::path::Path;

#[test]
fn workspace_sources_are_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(root.join("lint-allow.toml").is_file(), "lint-allow.toml missing at {root:?}");

    let cfg = sns_lint::load_config(root).expect("lint-allow.toml parses");
    let report = sns_lint::run(root, &cfg).expect("workspace lints");

    let mut complaints = String::new();
    for f in &report.findings {
        complaints.push_str(&format!("{f}\n"));
    }
    for a in &report.stale_allows {
        complaints.push_str(&format!(
            "stale allow entry: rule={} path={} (matched nothing — remove it)\n",
            a.rule, a.path
        ));
    }
    assert!(report.clean(), "workspace is not lint-clean:\n{complaints}");
    assert!(report.files > 50, "suspiciously few files walked: {}", report.files);
}
