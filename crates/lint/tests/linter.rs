//! Fixture self-tests: each rule family must fire on its `*_bad.rs`
//! fixture at exactly the asserted (rule, line) pairs and stay silent on
//! its `*_good.rs` fixture. This is what keeps the linter honest — a
//! lexer regression that silences a rule breaks these before it silently
//! waves real violations through.

use sns_lint::rules::{lint_tokens, FileContext};
use sns_lint::{lexer, Finding};

fn lint_fixture(source: &str, panic_path: bool, lock_free_path: bool) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let ctx = FileContext {
        path: "fixture.rs",
        lines: &lines,
        panic_path,
        cast_sanctioned: false,
        lock_free_path,
    };
    lint_tokens(&lexer::lex(source), &ctx)
}

fn rule_lines(findings: &[Finding]) -> Vec<(&str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn determinism_bad_fires_every_rule() {
    let findings = lint_fixture(include_str!("fixtures/determinism_bad.rs"), false, false);
    assert_eq!(
        rule_lines(&findings),
        vec![
            ("determinism/wall-clock", 7),
            ("determinism/wall-clock", 8),
            ("determinism/rng", 9),
            ("determinism/env", 10),
            ("determinism/env", 11),
            ("determinism/hash-iteration", 15),
            ("determinism/hash-iteration", 19),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn determinism_good_is_silent() {
    let findings = lint_fixture(include_str!("fixtures/determinism_good.rs"), false, false);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn casts_bad_fires_every_pattern() {
    let findings = lint_fixture(include_str!("fixtures/casts_bad.rs"), false, false);
    assert_eq!(
        rule_lines(&findings),
        vec![("casts/lossy", 5), ("casts/lossy", 6), ("casts/lossy", 7), ("casts/lossy", 9)],
        "findings: {findings:#?}"
    );
}

#[test]
fn casts_good_is_silent() {
    let findings = lint_fixture(include_str!("fixtures/casts_good.rs"), false, false);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn panics_bad_fires_every_rule_on_serving_files() {
    let findings = lint_fixture(include_str!("fixtures/panics_bad.rs"), true, false);
    assert_eq!(
        rule_lines(&findings),
        vec![
            ("panics/unwrap", 5),
            ("panics/unwrap", 6),
            ("panics/panic", 8),
            ("panics/panic", 11),
            ("panics/index", 13),
        ],
        "findings: {findings:#?}"
    );
}

#[test]
fn panics_good_is_silent_on_serving_files() {
    let findings = lint_fixture(include_str!("fixtures/panics_good.rs"), true, false);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn panic_rules_only_apply_to_serving_files() {
    // The same source linted as a non-serving file keeps unwrap/indexing.
    let findings = lint_fixture(include_str!("fixtures/panics_bad.rs"), false, false);
    assert!(findings.is_empty(), "panic rules leaked outside serving files: {findings:#?}");
}

#[test]
fn locks_bad_fires_on_every_blocking_acquisition() {
    let findings = lint_fixture(include_str!("fixtures/locks_bad.rs"), false, true);
    assert_eq!(
        rule_lines(&findings),
        vec![("locks/blocking", 6), ("locks/blocking", 7), ("locks/blocking", 8)],
        "findings: {findings:#?}"
    );
}

#[test]
fn locks_good_is_silent_on_lock_free_files() {
    let findings = lint_fixture(include_str!("fixtures/locks_good.rs"), false, true);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn lock_rules_only_apply_to_lock_free_files() {
    // The same source linted outside the lock-free scope keeps its
    // writer-side mutex unflagged.
    let findings = lint_fixture(include_str!("fixtures/locks_bad.rs"), false, false);
    assert!(findings.is_empty(), "lock rules leaked outside lock-free files: {findings:#?}");
}

#[test]
fn allow_entry_without_reason_is_a_config_error() {
    let cfg = "[scope]\ndeterministic = [\"src\"]\n\n[[allow]]\nrule = \"determinism/wall-clock\"\npath = \"src/a.rs\"\n";
    let err = sns_lint::config::parse(cfg).expect_err("missing reason must be rejected");
    assert!(err.message.contains("reason"), "unexpected error: {err}");

    let cfg_empty = "[scope]\ndeterministic = [\"src\"]\n\n[[allow]]\nrule = \"determinism/wall-clock\"\npath = \"src/a.rs\"\nreason = \"\"\n";
    let err = sns_lint::config::parse(cfg_empty).expect_err("empty reason must be rejected");
    assert!(err.message.contains("reason"), "unexpected error: {err}");
}

#[test]
fn stale_allow_entries_are_reported() {
    // Build a miniature workspace in the cargo test tmpdir: one clean
    // file plus an allow entry that matches nothing.
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("stale-allow-ws");
    let src = root.join("src");
    std::fs::create_dir_all(&src).expect("create temp workspace");
    std::fs::write(src.join("lib.rs"), "pub fn f(x: u32) -> u64 { u64::from(x) }\n")
        .expect("write source");
    std::fs::write(
        root.join("lint-allow.toml"),
        "[scope]\ndeterministic = [\"src\"]\n\n[[allow]]\nrule = \"determinism/wall-clock\"\npath = \"src/lib.rs\"\nreason = \"left over from a deleted timer\"\n",
    )
    .expect("write config");

    let cfg = sns_lint::load_config(&root).expect("config parses");
    let report = sns_lint::run(&root, &cfg).expect("lint runs");
    assert!(report.findings.is_empty(), "unexpected findings: {:#?}", report.findings);
    assert_eq!(report.stale_allows.len(), 1, "stale entry must surface");
    assert_eq!(report.stale_allows[0].path, "src/lib.rs");
    assert!(!report.clean(), "a stale allow keeps the run dirty");
}

#[test]
fn used_allow_entries_suppress_and_are_not_stale() {
    let root = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("used-allow-ws");
    let src = root.join("src");
    std::fs::create_dir_all(&src).expect("create temp workspace");
    std::fs::write(
        src.join("lib.rs"),
        "use std::time::Instant;\npub fn f() -> Instant { Instant::now() }\n",
    )
    .expect("write source");
    std::fs::write(
        root.join("lint-allow.toml"),
        "[scope]\ndeterministic = [\"src\"]\n\n[[allow]]\nrule = \"determinism/wall-clock\"\npath = \"src/lib.rs\"\ncontains = \"Instant::now()\"\nreason = \"report-only timing in a fixture\"\n",
    )
    .expect("write config");

    let cfg = sns_lint::load_config(&root).expect("config parses");
    let report = sns_lint::run(&root, &cfg).expect("lint runs");
    assert!(report.findings.is_empty(), "suppression failed: {:#?}", report.findings);
    assert!(report.stale_allows.is_empty(), "used entry wrongly stale");
    assert_eq!(report.suppressed, 1);
    assert!(report.clean());
}
