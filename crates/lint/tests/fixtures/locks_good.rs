//! Fixture: lock-free idioms the locks/blocking rule must stay silent
//! on — directory pinning, non-blocking try-acquisition, calls that
//! merely share a name with the std acquisition methods (they take
//! arguments), and `#[cfg(test)]` code.

pub fn serving(dir: &EpochDirectory, m: &std::sync::Mutex<u32>) -> u64 {
    let (generation, _pool) = dir.pin();
    if let Ok(guard) = m.try_lock() {
        let _ = *guard;
    }
    generation
}

pub fn io_read_with_args(r: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<usize> {
    // An argument-taking `.read(…)` is not a lock acquisition.
    r.read(buf)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_lock() {
        let m = std::sync::Mutex::new(1u32);
        let _guard = m.lock().unwrap();
    }
}
