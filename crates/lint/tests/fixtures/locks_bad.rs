//! Fixture: every blocking acquisition the locks/blocking rule must
//! flag (when linted as a lock-free serving file). Line numbers are
//! asserted exactly by `tests/linter.rs`.

pub fn serving(m: &std::sync::Mutex<u32>, rw: &std::sync::RwLock<u32>) -> u32 {
    let a = *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner); // line 6
    let b = *rw.read().unwrap_or_else(std::sync::PoisonError::into_inner); // line 7
    let c = *rw.write().unwrap_or_else(std::sync::PoisonError::into_inner); // line 8
    a + b + c
}
