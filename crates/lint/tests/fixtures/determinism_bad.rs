//! Fixture: every determinism rule must fire on this file.
//! Line numbers are asserted exactly by `tests/linter.rs` — keep them stable.
use std::collections::HashMap;
use std::time::Instant;

pub fn taints() -> u64 {
    let t = Instant::now(); // line 7: determinism/wall-clock
    let epoch = std::time::SystemTime::now(); // line 8: determinism/wall-clock
    let mut rng = rand::thread_rng(); // line 9: determinism/rng
    let home = std::env::var("HOME"); // line 10: determinism/env
    let workers = std::thread::available_parallelism(); // line 11: determinism/env
    let mut m: HashMap<u32, u64> = HashMap::new();
    m.insert(1, 2);
    let mut sum = 0;
    for (_k, v) in m.iter() {
        // line 15: determinism/hash-iteration
        sum += v;
    }
    for k in m.keys() {
        // line 19: determinism/hash-iteration
        sum += k as u64;
    }
    let _ = (t, epoch, rng, home, workers);
    sum
}
