//! Fixture: every casts/lossy pattern must fire on this file.
//! Line numbers are asserted exactly by `tests/linter.rs`.

pub fn narrowings(total: u64, frac: f64, items: &[u8]) -> u32 {
    let a = total as u32; // line 5: casts/lossy (u64 -> u32)
    let b = items.len() as u32; // line 6: casts/lossy (.len() -> u32)
    let c = frac as u32; // line 7: casts/lossy (float -> int)
    let idx: usize = 7;
    let d = idx as u16; // line 9: casts/lossy (usize -> u16)
    a + b + c + u32::from(d)
}
