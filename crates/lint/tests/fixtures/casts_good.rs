//! Fixture: conversions the casts/lossy rule must NOT flag.

pub fn widenings(small: u32, n: usize, x: f32) -> u64 {
    let wide = small as u64; // widening is always fine
    let native = small as usize; // narrow -> usize is fine
    let arena = n as u64; // usize -> u64 is fine
    let promoted = x as f64; // float widening is fine
    let checked = u32::try_from(n).unwrap_or(u32::MAX); // the sanctioned idiom
    wide + native as u64 + arena + promoted as u64 + u64::from(checked)
}
