//! Fixture: every panic-path rule must fire on this file (when linted as
//! a serving file). Line numbers are asserted exactly by `tests/linter.rs`.

pub fn serving(values: &[u64], slot: usize) -> u64 {
    let first = values.first().unwrap(); // line 5: panics/unwrap
    let second = values.get(1).expect("second value"); // line 6: panics/unwrap
    if values.is_empty() {
        panic!("empty batch"); // line 8: panics/panic
    }
    if slot > values.len() {
        unreachable!(); // line 11: panics/panic
    }
    let third = values[slot]; // line 13: panics/index
    first + second + third
}
