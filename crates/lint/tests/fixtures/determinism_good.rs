//! Fixture: legal patterns the determinism rules must NOT flag.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn clean(seed: u64) -> u64 {
    // Keyed HashMap lookups are legal — only *iteration* is order-tainted.
    let mut m: HashMap<u32, u64> = HashMap::new();
    m.insert(1, seed);
    let direct = m.get(&1).copied().unwrap_or(0);
    let had = m.contains_key(&1);

    // BTreeMap iteration is ordered and fine.
    let mut b: BTreeMap<u32, u64> = BTreeMap::new();
    b.insert(2, seed);
    let mut sum = 0;
    for (_k, v) in b.iter() {
        sum += v;
    }

    // Seeded RNG is the deterministic idiom.
    let _rng_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    sum + direct + u64::from(had)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_use_the_wall_clock() {
        // #[cfg(test)] items are exempt from every rule.
        let t = Instant::now();
        let mut rng = rand::thread_rng();
        let _ = (t, &mut rng, std::env::var("HOME"));
    }
}
