//! Fixture: serving-path idioms the panic rules must NOT flag.
use std::sync::{Mutex, PoisonError};

pub fn serving(values: &[u64], slot: usize, lock: &Mutex<u64>) -> u64 {
    // ? / let-else / get are the sanctioned fallible idioms.
    let Some(first) = values.first() else { return 0 };
    let second = values.get(slot).copied().unwrap_or(0);
    // Literal indexing of a fixed-shape value is allowed.
    let pair = [1u64, 2u64];
    let fixed = pair[0];
    // Poison recovery is allowed: it cannot panic.
    let guarded = *lock.lock().unwrap_or_else(PoisonError::into_inner);
    first + second + fixed + guarded
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u64];
        assert_eq!(v.first().unwrap(), &1); // exempt: #[cfg(test)]
        let i = 0usize;
        assert_eq!(v[i], 1); // exempt: #[cfg(test)]
    }
}
