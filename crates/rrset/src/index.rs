//! Two-tier (sealed CSR + pending chain) inverted node→set-id index.
//!
//! The *sealed* tier is a flat CSR pair (`index_offsets`, `index_data`)
//! over all sets indexed at the last compaction: `index_data` holds, for
//! each node in turn, the ascending ids of the sets containing it. The
//! *pending* tier absorbs appends that arrived since then as per-node
//! singly-linked chains threaded through a columnar entry log; chains are
//! appended at the tail, so walking a chain also yields ascending ids.
//!
//! A query concatenates the two tiers (sealed ids are all smaller than
//! pending ids, because sets seal in id order), which keeps the public
//! "ascending ids, binary-searchable by range" contract of the old
//! `Vec<Vec<u32>>` layout at a fraction of its memory: the CSR tier costs
//! 8 bytes/node + 4 bytes/entry exactly, while per-node `Vec`s cost a
//! 24-byte header per node (empty or not) plus power-of-two capacity
//! slack per non-empty node.
//!
//! Compaction rebuilds the CSR from the set arena with a counting sort —
//! optionally multi-threaded: the arena is split into chunks, workers
//! emit per-chunk node histograms, an exclusive prefix over (node, chunk)
//! turns those into disjoint write cursors, and workers scatter their
//! chunks independently. The result is bit-identical for every worker
//! count, which is what lets `RrCollection` keep its sequential ≡
//! parallel reproducibility guarantee.

use std::ops::Range;

use sns_graph::NodeId;

/// Chain terminator / "no entry" sentinel.
const NONE: u32 = u32::MAX;

/// Pending tier: per-node chains through a columnar entry log.
///
/// `head`/`tail` are lazily (re-)allocated on the first append after a
/// compaction and freed by compaction, so a fully sealed index pays zero
/// bytes for this tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct PendingTier {
    /// First entry index of node `v`'s chain, or `NONE`.
    head: Vec<u32>,
    /// Last entry index of node `v`'s chain, or `NONE`.
    tail: Vec<u32>,
    /// Set id of each entry, in append order.
    entry_set: Vec<u32>,
    /// Next entry in the same node's chain, or `NONE`.
    entry_next: Vec<u32>,
}

impl PendingTier {
    fn clear_and_free(&mut self) {
        *self = PendingTier::default();
    }

    #[inline]
    fn append(&mut self, n: u32, v: NodeId, set_id: u32) {
        if self.head.is_empty() {
            self.head = vec![NONE; n as usize];
            self.tail = vec![NONE; n as usize];
        }
        let e = crate::narrow::entry_count(self.entry_set.len());
        assert!(e != NONE, "pending entry space exhausted");
        self.entry_set.push(set_id);
        self.entry_next.push(NONE);
        let vi = v as usize;
        if self.tail[vi] == NONE {
            self.head[vi] = e;
        } else {
            self.entry_next[self.tail[vi] as usize] = e;
        }
        self.tail[vi] = e;
    }

    #[inline]
    fn head_of(&self, v: NodeId) -> u32 {
        if self.head.is_empty() {
            NONE
        } else {
            self.head[v as usize]
        }
    }

    fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        ((self.head.capacity() + self.tail.capacity()) * size_of::<u32>()
            + (self.entry_set.capacity() + self.entry_next.capacity()) * size_of::<u32>())
            as u64
    }
}

/// CSR offset array, width-adaptive: `u32` as long as the entry count
/// fits (true for any pool below 4 G index entries, i.e. everything but
/// the extreme billion-scale runs), halving the fixed per-node cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CsrOffsets {
    /// Narrow offsets, total entries `< 2^32`.
    Narrow(Vec<u32>),
    /// Wide offsets for pools beyond 4 G entries.
    Wide(Vec<u64>),
}

impl CsrOffsets {
    /// Width-adaptive packing of a dense `u64` offset array: narrows to
    /// `u32` whenever the final offset (= total entry count) fits, halving
    /// the fixed per-slot cost. Used by the inverted index's sealed tier,
    /// whose counting sort needs the `u64` array anyway.
    pub(crate) fn from_wide(offsets: Vec<u64>) -> Self {
        if offsets.last().copied().unwrap_or(0) <= u32::MAX as u64 {
            CsrOffsets::Narrow(offsets.iter().map(|&o| o as u32).collect())
        } else {
            CsrOffsets::Wide(offsets)
        }
    }

    /// Width-adaptive rebase of a dense ascending `u64` offset slice:
    /// subtracts `base` from every offset and collects directly at the
    /// final width (no intermediate `u64` buffer — this runs on the
    /// per-selection-round hot path of [`crate::CoverageView::build`]).
    pub(crate) fn rebased(offsets: &[u64], base: u64) -> Self {
        if offsets.last().copied().unwrap_or(base) - base <= u32::MAX as u64 {
            CsrOffsets::Narrow(offsets.iter().map(|&o| (o - base) as u32).collect())
        } else {
            CsrOffsets::Wide(offsets.iter().map(|&o| o - base).collect())
        }
    }

    /// Concatenates rebased (zero-based) offset arrays of adjacent pool
    /// slices into the offset array of their union: each part contributes
    /// its per-slot extents shifted by the cumulative entry count of the
    /// parts before it. Width-adaptive like the other constructors. Used
    /// by `GainSnapshot::merge` to stitch per-epoch offset arrays without
    /// touching the pool arena.
    ///
    /// Every part must be a non-empty dense offset array starting at 0
    /// (what [`CsrOffsets::rebased`] produces).
    pub(crate) fn concat(parts: &[&CsrOffsets]) -> CsrOffsets {
        assert!(!parts.is_empty(), "cannot concatenate zero offset arrays");
        let total_entries: u64 = parts.iter().map(|p| p.last_entry()).sum();
        let total_slots: usize = parts.iter().map(|p| p.num_slots()).sum();
        if total_entries <= u32::MAX as u64 {
            let mut out = Vec::with_capacity(total_slots + 1);
            out.push(0u32);
            let mut base = 0u32;
            for part in parts {
                match part {
                    CsrOffsets::Narrow(o) => out.extend(o[1..].iter().map(|&v| base + v)),
                    CsrOffsets::Wide(o) => out.extend(
                        // guarded: total_entries (≥ every v) fits in u32
                        o[1..]
                            .iter()
                            .map(|&v| base + crate::narrow::try_u32(v).unwrap_or(u32::MAX)),
                    ),
                }
                base = *out.last().expect("offsets non-empty");
            }
            CsrOffsets::Narrow(out)
        } else {
            let mut out = Vec::with_capacity(total_slots + 1);
            out.push(0u64);
            let mut base = 0u64;
            for part in parts {
                match part {
                    CsrOffsets::Narrow(o) => out.extend(o[1..].iter().map(|&v| base + v as u64)),
                    CsrOffsets::Wide(o) => out.extend(o[1..].iter().map(|&v| base + v)),
                }
                base = *out.last().expect("offsets non-empty");
            }
            CsrOffsets::Wide(out)
        }
    }

    /// Final offset = total entry count spanned by this array.
    fn last_entry(&self) -> u64 {
        match self {
            CsrOffsets::Narrow(o) => o.last().copied().unwrap_or(0) as u64,
            CsrOffsets::Wide(o) => o.last().copied().unwrap_or(0),
        }
    }

    /// Number of slots (offset count minus the leading 0).
    fn num_slots(&self) -> usize {
        match self {
            CsrOffsets::Narrow(o) => o.len().saturating_sub(1),
            CsrOffsets::Wide(o) => o.len().saturating_sub(1),
        }
    }

    #[inline]
    pub(crate) fn span(&self, v: usize) -> Range<usize> {
        match self {
            CsrOffsets::Narrow(o) => o[v] as usize..o[v + 1] as usize,
            CsrOffsets::Wide(o) => o[v] as usize..o[v + 1] as usize,
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            CsrOffsets::Narrow(o) => o.is_empty(),
            CsrOffsets::Wide(o) => o.is_empty(),
        }
    }

    pub(crate) fn memory_bytes(&self) -> u64 {
        match self {
            CsrOffsets::Narrow(o) => (o.capacity() * std::mem::size_of::<u32>()) as u64,
            CsrOffsets::Wide(o) => (o.capacity() * std::mem::size_of::<u64>()) as u64,
        }
    }
}

/// The two-tier inverted index of an [`crate::RrCollection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TwoTierIndex {
    n: u32,
    /// Number of sets covered by the sealed CSR tier (ids `0..sealed_sets`).
    sealed_sets: u32,
    /// CSR offsets: node `v`'s sealed ids live at
    /// `index_data[index_offsets[v]..index_offsets[v + 1]]`. Empty until
    /// the first compaction.
    index_offsets: CsrOffsets,
    /// Concatenated ascending set ids, grouped by node.
    index_data: Vec<u32>,
    pending: PendingTier,
    /// Number of sets indexed in either tier (`sealed_sets` + pending).
    indexed_sets: u32,
    /// Number of (node, set) entries indexed in either tier.
    indexed_entries: u64,
    /// Lifetime count of compactions (epoch seals).
    compactions: u64,
    /// Cumulative set-id boundaries of the sealed epochs: epoch `e`
    /// covers ids `epoch_bounds[e - 1] .. epoch_bounds[e]` (with an
    /// implicit leading 0). Strictly ascending; a compaction that seals
    /// no new sets records no boundary. Append-only — once a boundary is
    /// recorded it never moves, which is what lets per-epoch gain
    /// snapshots stay valid across pool growth.
    epoch_bounds: Vec<u32>,
}

/// Compact only once the pending tier holds at least this many entries…
const COMPACT_MIN_ENTRIES: u64 = 1024;
/// …and it exceeds `1/COMPACT_DIV` of all indexed entries. Matched to the
/// doubling schedule of SSA/D-SSA (each extend at least doubles the pool,
/// so every extend seals) this amortizes compaction to `O(total entries)`
/// over the life of the pool.
const COMPACT_DIV: u64 = 4;
/// Below this many arena entries a compaction is run single-threaded —
/// thread spawn plus per-chunk histograms would dominate.
const PARALLEL_COMPACT_MIN_ENTRIES: usize = 1 << 16;

impl TwoTierIndex {
    pub(crate) fn new(n: u32) -> Self {
        TwoTierIndex {
            n,
            sealed_sets: 0,
            index_offsets: CsrOffsets::Narrow(Vec::new()),
            index_data: Vec::new(),
            pending: PendingTier::default(),
            indexed_sets: 0,
            indexed_entries: 0,
            compactions: 0,
            epoch_bounds: Vec::new(),
        }
    }

    pub(crate) fn sealed_sets(&self) -> u32 {
        self.sealed_sets
    }

    pub(crate) fn pending_sets(&self) -> u32 {
        self.indexed_sets - self.sealed_sets
    }

    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    pub(crate) fn epoch_bounds(&self) -> &[u32] {
        &self.epoch_bounds
    }

    /// Indexes every set in `sets_tail_of(arena)` that is not yet known,
    /// choosing between chaining into the pending tier and sealing a new
    /// epoch. `data`/`offsets` describe the **whole** arena; the decision
    /// and the resulting index state depend only on entry counts, never on
    /// `threads`, so growth stays bit-reproducible across thread counts.
    pub(crate) fn index_tail(&mut self, data: &[NodeId], offsets: &[u64], threads: usize) {
        let total_sets = offsets.len() - 1;
        debug_assert!(self.indexed_sets as usize <= total_sets);
        let unindexed_entries = data.len() as u64 - self.indexed_entries;
        if unindexed_entries == 0 {
            return;
        }
        let pending_after = self.pending.entry_set.len() as u64 + unindexed_entries;
        let threshold = COMPACT_MIN_ENTRIES.max(data.len() as u64 / COMPACT_DIV);
        if pending_after > threshold {
            self.compact(data, offsets, threads);
            return;
        }
        for id in self.indexed_sets..crate::narrow::set_count(total_sets) {
            let span = offsets[id as usize] as usize..offsets[id as usize + 1] as usize;
            for &v in &data[span] {
                self.pending.append(self.n, v, id);
            }
        }
        self.indexed_sets = crate::narrow::set_count(total_sets);
        self.indexed_entries = data.len() as u64;
    }

    /// Seals the current epoch: rebuilds the CSR tier over the whole arena
    /// with a (optionally parallel) counting sort and frees the pending
    /// tier.
    pub(crate) fn compact(&mut self, data: &[NodeId], offsets: &[u64], threads: usize) {
        let n = self.n as usize;
        let total_sets = offsets.len() - 1;
        let entries = data.len();
        // Clamp to real hardware parallelism: the scatter pass streams
        // the whole arena once *per worker* (cheap next to its random
        // writes when workers run concurrently), so oversubscribing a
        // small machine turns that read amplification into pure serial
        // overhead. The result is worker-count-invariant either way.
        let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let workers = if threads <= 1 || entries < PARALLEL_COMPACT_MIN_ENTRIES {
            1
        } else {
            threads.min(hw).min(total_sets.max(1))
        };

        // Pass 1 — per-chunk node histograms (workers own contiguous
        // *set* ranges, balanced by entry count so no worker inherits all
        // the long sets): hist[c][v] = entries of v in chunk c. Summed
        // into the global per-node counts feeding the CSR offsets.
        let set_bounds: Vec<usize> = (0..=workers)
            .map(|w| {
                let target = (entries as u64 * w as u64 / workers as u64).min(entries as u64);
                offsets.partition_point(|&o| o < target).min(total_sets)
            })
            .collect();
        let mut counts: Vec<u64> = if workers == 1 {
            let mut h = vec![0u64; n];
            for &v in data {
                h[v as usize] += 1;
            }
            h
        } else {
            let hists: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|c| {
                        let (lo, hi) = (set_bounds[c], set_bounds[c + 1]);
                        let chunk = &data[offsets[lo] as usize..offsets[hi] as usize];
                        scope.spawn(move || {
                            let mut h = vec![0u64; n];
                            for &v in chunk {
                                h[v as usize] += 1;
                            }
                            h
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("histogram worker panicked")).collect()
            });
            let mut total = vec![0u64; n];
            for h in &hists {
                for (t, &c) in total.iter_mut().zip(h) {
                    *t += c;
                }
            }
            total
        };

        // Pass 2 — exclusive prefix sum over nodes: the CSR offsets.
        let mut index_offsets = vec![0u64; n + 1];
        for v in 0..n {
            index_offsets[v + 1] = index_offsets[v] + counts[v];
        }
        debug_assert_eq!(index_offsets[n] as usize, entries);

        // Pass 3 — scatter, parallel over *node* ranges: each worker owns
        // a contiguous node range balanced by entry count, hence a
        // disjoint contiguous region of `index_data` (no sharing, no
        // false sharing — a set-chunked scatter would interleave writes
        // within each node's id list and thrash cache lines). Every
        // worker streams the whole arena in ascending set-id order, which
        // keeps per-node id lists ascending, at a read amplification of
        // `workers` — cheap next to the random writes. `counts` is
        // repurposed as the per-node write cursors.
        let mut index_data = vec![0u32; entries];
        if workers == 1 {
            counts.copy_from_slice(&index_offsets[..n]);
            let cursors = &mut counts;
            for id in 0..crate::narrow::set_count(total_sets) {
                let span = offsets[id as usize] as usize..offsets[id as usize + 1] as usize;
                for &v in &data[span] {
                    index_data[cursors[v as usize] as usize] = id;
                    cursors[v as usize] += 1;
                }
            }
        } else {
            let node_bounds: Vec<usize> = (0..=workers)
                .map(|w| {
                    let target = (entries as u64 * w as u64 / workers as u64).min(entries as u64);
                    index_offsets.partition_point(|&o| o < target).min(n)
                })
                .collect();
            std::thread::scope(|scope| {
                let mut rest: &mut [u32] = &mut index_data;
                let mut consumed = 0u64;
                for w in 0..workers {
                    let (lo, hi) = (node_bounds[w], node_bounds[w + 1]);
                    let base = index_offsets[lo];
                    let len = (index_offsets[hi] - base) as usize;
                    debug_assert_eq!(base, consumed);
                    let (mine, tail) = rest.split_at_mut(len);
                    rest = tail;
                    consumed += len as u64;
                    let index_offsets = &index_offsets;
                    scope.spawn(move || {
                        let mut cursors: Vec<u64> =
                            index_offsets[lo..hi].iter().map(|&o| o - base).collect();
                        for id in 0..crate::narrow::set_count(total_sets) {
                            let span =
                                offsets[id as usize] as usize..offsets[id as usize + 1] as usize;
                            for &v in &data[span] {
                                let vi = v as usize;
                                if vi < lo || vi >= hi {
                                    continue;
                                }
                                mine[cursors[vi - lo] as usize] = id;
                                cursors[vi - lo] += 1;
                            }
                        }
                    });
                }
            });
        }

        self.index_offsets = CsrOffsets::from_wide(index_offsets);
        self.index_data = index_data;
        self.sealed_sets = total_sets as u32;
        self.indexed_sets = total_sets as u32;
        self.indexed_entries = entries as u64;
        self.pending.clear_and_free();
        self.compactions += 1;
        // A new epoch exists only if this seal advanced the sealed
        // frontier; re-sealing an already sealed pool records nothing.
        if total_sets > 0 && self.epoch_bounds.last().copied().unwrap_or(0) < total_sets as u32 {
            self.epoch_bounds.push(total_sets as u32);
        }
    }

    #[inline]
    fn sealed_slice(&self, v: NodeId) -> &[u32] {
        if self.index_offsets.is_empty() {
            return &[];
        }
        &self.index_data[self.index_offsets.span(v as usize)]
    }

    /// Ids of indexed sets containing `v` whose id falls in `range`,
    /// ascending. Sealed ids are binary-searched; the pending chain is
    /// skipped up to `range.start` (chains are short by the compaction
    /// invariant).
    pub(crate) fn sets_containing_in(&self, v: NodeId, range: Range<u32>) -> SetIds<'_> {
        let sealed = self.sealed_slice(v);
        let lo = sealed.partition_point(|&id| id < range.start);
        let hi = sealed.partition_point(|&id| id < range.end);
        let mut cursor = self.pending.head_of(v);
        while cursor != NONE && self.pending.entry_set[cursor as usize] < range.start {
            cursor = self.pending.entry_next[cursor as usize];
        }
        SetIds {
            sealed: &sealed[lo..hi],
            entry_set: &self.pending.entry_set,
            entry_next: &self.pending.entry_next,
            cursor,
            end: range.end,
        }
    }

    pub(crate) fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        self.index_offsets.memory_bytes()
            + (self.index_data.capacity() * size_of::<u32>()) as u64
            + self.pending.memory_bytes()
    }
}

/// Iterator over the (ascending) ids of the sets containing one node,
/// concatenating the sealed CSR slice and the node's pending chain.
///
/// Returned by [`crate::RrCollection::sets_containing`] and
/// [`crate::RrCollection::sets_containing_in`].
#[derive(Debug, Clone)]
pub struct SetIds<'a> {
    sealed: &'a [u32],
    entry_set: &'a [u32],
    entry_next: &'a [u32],
    cursor: u32,
    end: u32,
}

impl SetIds<'_> {
    /// Number of ids this iterator will yield.
    pub fn len(&self) -> usize {
        let mut pending = 0usize;
        let mut cursor = self.cursor;
        while cursor != NONE && self.entry_set[cursor as usize] < self.end {
            pending += 1;
            cursor = self.entry_next[cursor as usize];
        }
        self.sealed.len() + pending
    }

    /// Whether no ids will be yielded.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty()
            && (self.cursor == NONE || self.entry_set[self.cursor as usize] >= self.end)
    }

    /// Collects the remaining ids (test/debug convenience).
    pub fn to_vec(&self) -> Vec<u32> {
        self.clone().collect()
    }
}

impl Iterator for SetIds<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if let Some((&id, rest)) = self.sealed.split_first() {
            self.sealed = rest;
            return Some(id);
        }
        if self.cursor == NONE {
            return None;
        }
        let id = self.entry_set[self.cursor as usize];
        if id >= self.end {
            self.cursor = NONE;
            return None;
        }
        self.cursor = self.entry_next[self.cursor as usize];
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = self.len();
        (len, Some(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(sets: &[&[NodeId]]) -> (Vec<NodeId>, Vec<u64>) {
        let mut data = Vec::new();
        let mut offsets = vec![0u64];
        for s in sets {
            data.extend_from_slice(s);
            offsets.push(data.len() as u64);
        }
        (data, offsets)
    }

    #[test]
    fn pending_only_queries() {
        let mut ix = TwoTierIndex::new(4);
        let (data, offsets) = arena(&[&[0, 1], &[1, 2], &[1]]);
        ix.index_tail(&data, &offsets, 1);
        assert_eq!(ix.sealed_sets(), 0, "small appends stay pending");
        assert_eq!(ix.sets_containing_in(1, 0..3).to_vec(), vec![0, 1, 2]);
        assert_eq!(ix.sets_containing_in(1, 1..2).to_vec(), vec![1]);
        assert_eq!(ix.sets_containing_in(3, 0..3).to_vec(), Vec::<u32>::new());
        assert_eq!(ix.sets_containing_in(1, 0..3).len(), 3);
    }

    #[test]
    fn sealed_then_pending_concatenate_ascending() {
        let mut ix = TwoTierIndex::new(3);
        let (data, offsets) = arena(&[&[0, 1], &[1]]);
        ix.index_tail(&data, &offsets, 1);
        ix.compact(&data, &offsets, 1);
        assert_eq!(ix.sealed_sets(), 2);
        let (data, offsets) = arena(&[&[0, 1], &[1], &[1, 2]]);
        ix.index_tail(&data, &offsets, 1);
        assert_eq!(ix.pending_sets(), 1);
        assert_eq!(ix.sets_containing_in(1, 0..3).to_vec(), vec![0, 1, 2]);
        assert_eq!(ix.sets_containing_in(1, 2..3).to_vec(), vec![2]);
        assert_eq!(ix.sets_containing_in(2, 0..3).to_vec(), vec![2]);
    }

    #[test]
    fn compaction_is_thread_count_invariant() {
        // Enough entries to exceed PARALLEL_COMPACT_MIN_ENTRIES so the
        // multi-threaded path really runs.
        const SETS: u32 = 4000;
        let sets: Vec<Vec<NodeId>> = (0..SETS)
            .map(|i| {
                (0..64).filter(|v| (i.wrapping_mul(2654435761) >> (v % 17)) & 1 == 1).collect()
            })
            .collect();
        let refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();
        let (data, offsets) = arena(&refs);
        assert!(data.len() >= PARALLEL_COMPACT_MIN_ENTRIES);
        let mut seq = TwoTierIndex::new(64);
        seq.compact(&data, &offsets, 1);
        for threads in [2, 4, 8] {
            let mut par = TwoTierIndex::new(64);
            par.compact(&data, &offsets, threads);
            assert_eq!(seq, par, "compaction differs at {threads} threads");
        }
        for v in 0..64 {
            let ids = seq.sets_containing_in(v, 0..SETS).to_vec();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "node {v} ids not ascending");
        }
    }

    #[test]
    fn compaction_frees_the_pending_tier() {
        let mut ix = TwoTierIndex::new(8);
        let (data, offsets) = arena(&[&[0, 1, 2], &[3, 4]]);
        ix.index_tail(&data, &offsets, 1);
        assert!(ix.pending.memory_bytes() > 0);
        ix.compact(&data, &offsets, 1);
        assert_eq!(ix.pending.memory_bytes(), 0);
        assert_eq!(ix.sets_containing_in(3, 0..2).to_vec(), vec![1]);
    }
}
