//! Arena-backed RR-set pool with an inverted index.

use std::ops::Range;

use sns_diffusion::{RrMeta, RrSampler};
use sns_graph::NodeId;

/// A growing pool of RR sets.
///
/// Storage is a flat node arena plus per-set offsets; the inverted index
/// maps each node to the (ascending) ids of the sets containing it, which
/// is what both greedy max-coverage and coverage queries traverse.
///
/// Set ids are dense `0..len()` in insertion order, so the "first
/// `Λ·2^(t−1)` samples" semantics of SSA/D-SSA map directly onto id
/// ranges.
#[derive(Debug, Clone)]
pub struct RrCollection {
    n: u32,
    /// Flattened node lists of all sets.
    data: Vec<NodeId>,
    /// `offsets[i]..offsets[i+1]` spans set `i` in `data`.
    offsets: Vec<u64>,
    /// `node_to_sets[v]` = ids of sets containing `v`, ascending.
    node_to_sets: Vec<Vec<u32>>,
    /// Total in-edges examined while sampling all pooled sets.
    total_edges_examined: u64,
}

impl RrCollection {
    /// Creates an empty pool over `n` nodes.
    pub fn new(n: u32) -> Self {
        RrCollection {
            n,
            data: Vec::new(),
            offsets: vec![0],
            node_to_sets: vec![Vec::new(); n as usize],
            total_edges_examined: 0,
        }
    }

    /// Node-universe size this pool indexes.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of pooled RR sets.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of node entries across all sets.
    pub fn total_nodes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Total in-edges examined while sampling (the RIS cost measure).
    pub fn total_edges_examined(&self) -> u64 {
        self.total_edges_examined
    }

    /// The nodes of set `id` (root first).
    pub fn set(&self, id: usize) -> &[NodeId] {
        let (s, e) = (self.offsets[id] as usize, self.offsets[id + 1] as usize);
        &self.data[s..e]
    }

    /// Ids of the sets containing `v`, ascending.
    pub fn sets_containing(&self, v: NodeId) -> &[u32] {
        &self.node_to_sets[v as usize]
    }

    /// Ids of the sets containing `v` restricted to an id `range`
    /// (binary-searched — the per-node lists are ascending).
    pub fn sets_containing_in(&self, v: NodeId, range: Range<u32>) -> &[u32] {
        let list = &self.node_to_sets[v as usize];
        let lo = list.partition_point(|&id| id < range.start);
        let hi = list.partition_point(|&id| id < range.end);
        &list[lo..hi]
    }

    /// Appends one sampled set.
    pub fn push(&mut self, rr: &[NodeId], meta: RrMeta) {
        debug_assert!(self.len() < u32::MAX as usize, "set-id space exhausted");
        let id = self.len() as u32;
        self.data.extend_from_slice(rr);
        self.offsets.push(self.data.len() as u64);
        for &v in rr {
            self.node_to_sets[v as usize].push(id);
        }
        self.total_edges_examined += meta.edges_examined;
    }

    /// Grows the pool with samples `from_index .. from_index + count` from
    /// the sampler's deterministic stream, sequentially.
    pub fn extend_sequential(&mut self, sampler: &mut RrSampler<'_>, from_index: u64, count: u64) {
        let mut rr = Vec::new();
        for i in 0..count {
            let meta = sampler.sample(from_index + i, &mut rr);
            self.push(&rr, meta);
        }
    }

    /// Grows the pool with samples `from_index .. from_index + count`,
    /// fanning generation across `threads` workers. The result is
    /// **bit-identical** to [`RrCollection::extend_sequential`] because
    /// each sample index owns its RNG stream and workers own contiguous
    /// index ranges merged back in order.
    pub fn extend_parallel(
        &mut self,
        sampler: &RrSampler<'_>,
        from_index: u64,
        count: u64,
        threads: usize,
    ) {
        let workers = threads.clamp(1, count.max(1) as usize);
        if workers == 1 || count < 128 {
            let mut local = sampler.clone();
            self.extend_sequential(&mut local, from_index, count);
            return;
        }
        let chunk = count.div_ceil(workers as u64);
        // Each worker fills a private mini-arena; merging preserves index
        // order so the pool layout matches the sequential build.
        let batches: Vec<(Vec<NodeId>, Vec<u64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let start = from_index + w * chunk;
                    let end = (from_index + (w + 1) * chunk).min(from_index + count);
                    let mut local = sampler.clone();
                    scope.spawn(move || {
                        let mut data = Vec::new();
                        let mut offsets = vec![0u64];
                        let mut edges = 0u64;
                        let mut rr = Vec::new();
                        for i in start..end {
                            let meta = local.sample(i, &mut rr);
                            data.extend_from_slice(&rr);
                            offsets.push(data.len() as u64);
                            edges += meta.edges_examined;
                        }
                        (data, offsets, edges)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rr worker panicked")).collect()
        });
        for (data, offsets, edges) in batches {
            for w in offsets.windows(2) {
                let rr = &data[w[0] as usize..w[1] as usize];
                let id = self.len() as u32;
                self.data.extend_from_slice(rr);
                self.offsets.push(self.data.len() as u64);
                for &v in rr {
                    self.node_to_sets[v as usize].push(id);
                }
            }
            self.total_edges_examined += edges;
        }
    }

    /// Number of sets in `range` covered by `seeds` (`Cov_R(S)` of the
    /// paper, Eq. 1, restricted to a pool slice).
    ///
    /// `scratch` must be a reusable byte buffer; it is resized to the
    /// range length and cleared on entry.
    pub fn coverage_of_range(&self, seeds: &[NodeId], range: Range<u32>, scratch: &mut Vec<bool>) -> u64 {
        let len = (range.end - range.start) as usize;
        scratch.clear();
        scratch.resize(len, false);
        let mut covered = 0u64;
        for &s in seeds {
            for &id in self.sets_containing_in(s, range.clone()) {
                let slot = (id - range.start) as usize;
                if !scratch[slot] {
                    scratch[slot] = true;
                    covered += 1;
                }
            }
        }
        covered
    }

    /// Number of pooled sets covered by `seeds` (`Cov_R(S)`, Eq. 1).
    pub fn coverage_of(&self, seeds: &[NodeId]) -> u64 {
        let mut scratch = Vec::new();
        self.coverage_of_range(seeds, 0..self.len() as u32, &mut scratch)
    }

    /// Exact byte footprint of the pool (arena + offsets + inverted
    /// index, counting capacities). This is the quantity the memory
    /// experiments (Figs. 6–7) report.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let arena = self.data.capacity() * size_of::<NodeId>();
        let offsets = self.offsets.capacity() * size_of::<u64>();
        let index: usize = self
            .node_to_sets
            .iter()
            .map(|v| v.capacity() * size_of::<u32>() + size_of::<Vec<u32>>())
            .sum();
        (arena + offsets + index) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::{Model, RrSampler};
    use sns_graph::WeightModel;

    fn meta(root: NodeId) -> RrMeta {
        RrMeta { root, edges_examined: 1 }
    }

    #[test]
    fn push_and_query() {
        let mut rc = RrCollection::new(5);
        rc.push(&[0, 1, 2], meta(0));
        rc.push(&[1], meta(1));
        rc.push(&[3, 1], meta(3));
        assert_eq!(rc.len(), 3);
        assert_eq!(rc.total_nodes(), 6);
        assert_eq!(rc.set(0), &[0, 1, 2]);
        assert_eq!(rc.set(1), &[1]);
        assert_eq!(rc.sets_containing(1), &[0, 1, 2]);
        assert_eq!(rc.sets_containing(4), &[] as &[u32]);
        assert_eq!(rc.total_edges_examined(), 3);
    }

    #[test]
    fn coverage_counts_each_set_once() {
        let mut rc = RrCollection::new(5);
        rc.push(&[0, 1], meta(0));
        rc.push(&[1, 2], meta(1));
        rc.push(&[3], meta(3));
        // seeds {0, 1}: sets 0 and 1 covered (set 0 via both nodes, once)
        assert_eq!(rc.coverage_of(&[0, 1]), 2);
        assert_eq!(rc.coverage_of(&[3]), 1);
        assert_eq!(rc.coverage_of(&[4]), 0);
        assert_eq!(rc.coverage_of(&[0, 1, 2, 3]), 3);
    }

    #[test]
    fn range_restricted_queries() {
        let mut rc = RrCollection::new(3);
        rc.push(&[0], meta(0)); // id 0
        rc.push(&[0, 1], meta(0)); // id 1
        rc.push(&[1], meta(1)); // id 2
        rc.push(&[0, 2], meta(0)); // id 3
        assert_eq!(rc.sets_containing_in(0, 1..4), &[1, 3]);
        let mut scratch = Vec::new();
        assert_eq!(rc.coverage_of_range(&[0], 0..2, &mut scratch), 2);
        assert_eq!(rc.coverage_of_range(&[0], 2..4, &mut scratch), 1);
        assert_eq!(rc.coverage_of_range(&[1], 2..4, &mut scratch), 1);
    }

    #[test]
    fn parallel_growth_bit_identical_to_sequential() {
        let g = sns_graph::gen::erdos_renyi(300, 2400, 5)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let sampler = RrSampler::with_config(&g, model, sns_diffusion::RootDist::Uniform, 11);
            let mut seq = RrCollection::new(300);
            seq.extend_sequential(&mut sampler.clone(), 0, 1000);
            let mut par = RrCollection::new(300);
            par.extend_parallel(&sampler, 0, 1000, 8);
            assert_eq!(seq.len(), par.len());
            assert_eq!(seq.data, par.data);
            assert_eq!(seq.offsets, par.offsets);
            assert_eq!(seq.node_to_sets, par.node_to_sets);
            assert_eq!(seq.total_edges_examined, par.total_edges_examined);
        }
    }

    #[test]
    fn memory_accounting_grows() {
        let mut rc = RrCollection::new(4);
        let empty = rc.memory_bytes();
        for i in 0..100 {
            rc.push(&[(i % 4) as u32, ((i + 1) % 4) as u32], meta(0));
        }
        assert!(rc.memory_bytes() > empty);
    }

    #[test]
    fn inverted_index_is_ascending() {
        let mut rc = RrCollection::new(2);
        for _ in 0..50 {
            rc.push(&[0, 1], meta(0));
        }
        let ids = rc.sets_containing(0);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
