//! Arena-backed RR-set pool with an epoch-compacted two-tier inverted
//! index.
//!
//! # Storage layout
//!
//! Sets live in one flat node arena (`data`) addressed by per-set
//! offsets, exactly like the CSR graph storage in `sns-graph`. The
//! node→set-ids inverted index — the structure greedy Max-Coverage and
//! every coverage query traverse — is **two-tiered**
//! ([`crate::index`]): a *sealed* tier holding all sets up to the last
//! compaction as flat CSR arrays (`index_offsets: Vec<u64>`,
//! `index_data: Vec<u32>`), and a small *pending* tier of per-node
//! chains absorbing appends since then. Queries concatenate the tiers;
//! both yield ascending set ids, so range restriction stays a binary
//! search plus a short chain skip.
//!
//! Compared to the previous `node_to_sets: Vec<Vec<u32>>` layout this
//! removes one heap allocation + 24-byte `Vec` header per node and the
//! power-of-two capacity slack per non-empty node (~3× overhead at
//! billion scale), and it turns index construction into a parallel
//! counting sort instead of per-node `push` calls.
//!
//! # Amortization
//!
//! A compaction costs `O(total entries)` (counting sort). It runs only
//! when the pending tier exceeds `max(1024, total/4)` entries, so over a
//! pool built by appends the total compaction work forms a geometric
//! series bounded by `O(total entries)` — and under SSA/D-SSA's doubling
//! schedule (`Λ·2^(t−1)` sets at iteration `t`) every `extend_*` call
//! crosses the threshold, so each epoch is sealed exactly once per
//! iteration.
//!
//! # Determinism
//!
//! Set ids are dense `0..len()` in insertion order, so the "first
//! `Λ·2^(t−1)` samples" semantics of SSA/D-SSA map directly onto id
//! ranges. Pool growth is **bit-identical** across thread counts: each
//! sample index owns its RNG stream, workers own contiguous index
//! ranges merged in order, compaction thresholds depend only on entry
//! counts, and the counting sort produces the same arrays for every
//! worker count.

use std::ops::Range;

use sns_diffusion::{RrMeta, RrSampler};
use sns_graph::NodeId;

use crate::index::{SetIds, TwoTierIndex};

/// What a seal actually did. [`RrCollection::seal`] on a fully-sealed
/// pool is a silent success by design (sealing is idempotent), but a
/// grow-while-serving loop needs to know whether there is a *new* epoch
/// to freeze and publish — this makes the no-op explicit instead of
/// forcing callers to diff [`RrCollection::epoch_boundaries`] around the
/// call.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a grow loop must distinguish 'nothing pending' from 'epoch published'"]
pub enum SealOutcome {
    /// Every pooled set was already in the sealed tier: no rebuild ran,
    /// no epoch boundary was added.
    AlreadySealed,
    /// The pending sets were compacted into one new sealed epoch
    /// covering this id range (its end is the pool length).
    EpochSealed {
        /// The id range of the newly sealed epoch.
        epoch: Range<u32>,
    },
}

impl SealOutcome {
    /// The newly sealed epoch's id range, if one was published.
    pub fn epoch(&self) -> Option<Range<u32>> {
        match self {
            SealOutcome::AlreadySealed => None,
            SealOutcome::EpochSealed { epoch } => Some(epoch.clone()),
        }
    }
}

/// A growing pool of RR sets (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct RrCollection {
    n: u32,
    /// Flattened node lists of all sets.
    data: Vec<NodeId>,
    /// `offsets[i]..offsets[i+1]` spans set `i` in `data`.
    offsets: Vec<u64>,
    /// Two-tier inverted node→set-ids index.
    index: TwoTierIndex,
    /// Total in-edges examined while sampling all pooled sets.
    total_edges_examined: u64,
    /// Cumulative `total_edges_examined` frozen at each sealed epoch
    /// boundary, parallel to [`RrCollection::epoch_boundaries`]. A seal
    /// always covers the whole arena, so the entry for a boundary is the
    /// pool total at the moment that boundary was recorded. The store
    /// serializes per-epoch deltas of this so a recovered prefix restores
    /// the exact sampling-cost accounting of its sets.
    epoch_edges: Vec<u64>,
}

impl RrCollection {
    /// Creates an empty pool over `n` nodes.
    pub fn new(n: u32) -> Self {
        RrCollection {
            n,
            data: Vec::new(),
            offsets: vec![0],
            index: TwoTierIndex::new(n),
            total_edges_examined: 0,
            epoch_edges: Vec::new(),
        }
    }

    /// Node-universe size this pool indexes.
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of pooled RR sets.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole pool as a set-id range (`0..len`), for the range-taking
    /// coverage and snapshot APIs. Set ids are `u32` by representation,
    /// so the narrowing is sanctioned ([`crate::narrow::set_count`]).
    pub fn id_range(&self) -> Range<u32> {
        0..crate::narrow::set_count(self.len())
    }

    /// Total number of node entries across all sets.
    pub fn total_nodes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Total in-edges examined while sampling (the RIS cost measure).
    pub fn total_edges_examined(&self) -> u64 {
        self.total_edges_examined
    }

    /// Number of sets in the sealed (CSR) index tier.
    pub fn sealed_sets(&self) -> u32 {
        self.index.sealed_sets()
    }

    /// Number of sets in the pending (chain) index tier.
    pub fn pending_sets(&self) -> u32 {
        self.index.pending_sets()
    }

    /// Number of epoch seals (compactions) performed so far.
    pub fn compactions(&self) -> u64 {
        self.index.compactions()
    }

    /// Cumulative set-id boundaries of the sealed epochs, strictly
    /// ascending: epoch `e` covers ids
    /// `boundaries[e - 1] .. boundaries[e]` (with an implicit leading 0),
    /// and ids at or past the last boundary are still pending. The list
    /// is **append-only** — a seal only adds a boundary past the previous
    /// frontier, never moves an existing one — so anything frozen against
    /// a past epoch (per-epoch [`crate::GainSnapshot`]s in particular)
    /// stays valid as the pool grows.
    pub fn epoch_boundaries(&self) -> &[u32] {
        self.index.epoch_bounds()
    }

    /// The sealed epochs as id ranges, in order (see
    /// [`RrCollection::epoch_boundaries`]).
    pub fn epochs(&self) -> impl Iterator<Item = Range<u32>> + '_ {
        let bounds = self.index.epoch_bounds();
        (0..bounds.len()).map(move |e| {
            let lo = if e == 0 { 0 } else { bounds[e - 1] };
            lo..bounds[e]
        })
    }

    /// The nodes of set `id` (root first).
    pub fn set(&self, id: usize) -> &[NodeId] {
        let (s, e) = (self.offsets[id] as usize, self.offsets[id + 1] as usize);
        &self.data[s..e]
    }

    /// The raw set arena (`data`, `offsets`) — set `i` spans
    /// `data[offsets[i]..offsets[i + 1]]`. Used by [`crate::CoverageView`]
    /// to materialize its range-restricted forward CSR in one `memcpy`
    /// instead of `len` [`RrCollection::set`] calls.
    pub(crate) fn arena(&self) -> (&[NodeId], &[u64]) {
        (&self.data, &self.offsets)
    }

    /// Ids of the sets containing `v`, ascending.
    pub fn sets_containing(&self, v: NodeId) -> SetIds<'_> {
        self.sets_containing_in(v, self.id_range())
    }

    /// Ids of the sets containing `v` restricted to an id `range`,
    /// ascending (the sealed tier is binary-searched; the pending chain
    /// is short by the compaction invariant).
    pub fn sets_containing_in(&self, v: NodeId, range: Range<u32>) -> SetIds<'_> {
        self.index.sets_containing_in(v, range)
    }

    /// The single append routine every growth path funnels through:
    /// copies the set into the arena and accounts its sampling cost. The
    /// inverted index picks the set up at the next [`Self::reindex`].
    #[inline]
    fn append_arena(&mut self, rr: &[NodeId], edges_examined: u64) {
        debug_assert!(self.len() < u32::MAX as usize, "set-id space exhausted");
        self.data.extend_from_slice(rr);
        self.offsets.push(self.data.len() as u64);
        self.total_edges_examined += edges_examined;
    }

    /// Brings the inverted index up to date with the arena: appended sets
    /// either chain into the pending tier or, past the compaction
    /// threshold, seal a new epoch. Deterministic in `threads`.
    #[inline]
    fn reindex(&mut self, threads: usize) {
        self.index.index_tail(&self.data, &self.offsets, threads);
        self.sync_epoch_edges();
    }

    /// Freezes the cumulative sampling cost of any epoch boundary the
    /// last index operation recorded. A seal covers the entire arena, so
    /// the current total *is* the new boundary's total; called after
    /// every operation that can compact (threshold seals included).
    fn sync_epoch_edges(&mut self) {
        while self.epoch_edges.len() < self.index.epoch_bounds().len() {
            self.epoch_edges.push(self.total_edges_examined);
        }
    }

    /// Cumulative `total_edges_examined` at each sealed epoch boundary,
    /// parallel to [`RrCollection::epoch_boundaries`]. The store derives
    /// per-epoch deltas from this.
    pub(crate) fn epoch_edge_totals(&self) -> &[u64] {
        &self.epoch_edges
    }

    /// Restores one sealed epoch from its serialized form: appends the
    /// epoch's arena slice verbatim (`set_ends` are the per-set end
    /// offsets rebased to the epoch start, leading 0 implicit), accounts
    /// its sampling cost, and seals exactly one new epoch. Appending the
    /// whole epoch before sealing — instead of replaying `push` per set —
    /// is what guarantees the restored pool's epoch boundaries match the
    /// saved ones bit-for-bit (per-set pushes would cross the threshold
    /// compaction at different points).
    pub(crate) fn restore_sealed_epoch(
        &mut self,
        data: &[NodeId],
        set_ends: &[u64],
        edges_delta: u64,
        threads: usize,
    ) {
        let base = self.data.len() as u64;
        self.data.extend_from_slice(data);
        self.offsets.extend(set_ends.iter().map(|&e| base + e));
        self.total_edges_examined += edges_delta;
        let _ = self.seal_parallel(threads);
    }

    /// Test-only drift hooks for the save-time metadata guard: desync the
    /// arena offsets / the per-epoch edge totals the way a bookkeeping
    /// bug would, so tests can prove the guard turns the mismatch into a
    /// typed error instead of serializing garbage.
    #[cfg(test)]
    pub(crate) fn corrupt_last_offset_for_test(&mut self) {
        *self.offsets.last_mut().expect("offsets non-empty") += 1;
    }

    /// See [`RrCollection::corrupt_last_offset_for_test`].
    #[cfg(test)]
    pub(crate) fn truncate_epoch_edges_for_test(&mut self) {
        self.epoch_edges.pop();
    }

    /// Appends one sampled set.
    pub fn push(&mut self, rr: &[NodeId], meta: RrMeta) {
        self.append_arena(rr, meta.edges_examined);
        self.reindex(1);
    }

    /// Forces an epoch seal: compacts the pending index tier into the
    /// sealed CSR tier regardless of the threshold. Queries are
    /// unaffected; memory drops to the flat-CSR floor. Returns whether a
    /// new epoch was actually published — see [`SealOutcome`].
    pub fn seal(&mut self) -> SealOutcome {
        self.seal_parallel(1)
    }

    /// [`RrCollection::seal`] with a worker-thread budget for the
    /// counting-sort rebuild. The resulting index is bit-identical for
    /// every `threads` value. Sealing an already fully sealed pool is an
    /// explicit no-op (no rebuild, no new epoch) reported as
    /// [`SealOutcome::AlreadySealed`], so a grow loop can distinguish
    /// "nothing pending" from "epoch published" without re-reading
    /// [`RrCollection::epoch_boundaries`].
    pub fn seal_parallel(&mut self, threads: usize) -> SealOutcome {
        let sealed = self.index.sealed_sets() as usize;
        if sealed == self.len() {
            return SealOutcome::AlreadySealed;
        }
        self.index.compact(&self.data, &self.offsets, threads);
        self.sync_epoch_edges();
        SealOutcome::EpochSealed {
            epoch: crate::narrow::set_count(sealed)..crate::narrow::set_count(self.len()),
        }
    }

    /// Grows the pool with samples `from_index .. from_index + count` from
    /// the sampler's deterministic stream, sequentially.
    pub fn extend_sequential(&mut self, sampler: &mut RrSampler<'_>, from_index: u64, count: u64) {
        let mut rr = Vec::new();
        for i in 0..count {
            let meta = sampler.sample(from_index + i, &mut rr);
            self.append_arena(&rr, meta.edges_examined);
        }
        self.reindex(1);
    }

    /// Grows the pool with samples `from_index .. from_index + count`,
    /// fanning generation across `threads` workers. The result is
    /// **bit-identical** to [`RrCollection::extend_sequential`] because
    /// each sample index owns its RNG stream, workers own contiguous
    /// index ranges merged back in order, and the index build is
    /// thread-count-invariant (see the module docs).
    pub fn extend_parallel(
        &mut self,
        sampler: &RrSampler<'_>,
        from_index: u64,
        count: u64,
        threads: usize,
    ) {
        let workers = threads.clamp(1, count.max(1) as usize);
        if workers == 1 || count < 128 {
            let mut local = sampler.clone();
            self.extend_sequential(&mut local, from_index, count);
            return;
        }
        let chunk = count.div_ceil(workers as u64);
        // Each worker fills a private mini-arena; merging preserves index
        // order so the pool layout matches the sequential build.
        let batches: Vec<(Vec<NodeId>, Vec<u64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let start = from_index + w * chunk;
                    let end = (from_index + (w + 1) * chunk).min(from_index + count);
                    let mut local = sampler.clone();
                    scope.spawn(move || {
                        let mut data = Vec::new();
                        let mut offsets = vec![0u64];
                        let mut edges = 0u64;
                        let mut rr = Vec::new();
                        for i in start..end {
                            let meta = local.sample(i, &mut rr);
                            data.extend_from_slice(&rr);
                            offsets.push(data.len() as u64);
                            edges += meta.edges_examined;
                        }
                        (data, offsets, edges)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rr worker panicked")).collect()
        });
        for (data, offsets, edges) in batches {
            for w in offsets.windows(2) {
                self.append_arena(&data[w[0] as usize..w[1] as usize], 0);
            }
            self.total_edges_examined += edges;
        }
        self.reindex(threads);
    }

    /// Number of sets in `range` covered by `seeds` (`Cov_R(S)` of the
    /// paper, Eq. 1, restricted to a pool slice).
    ///
    /// `scratch` is a reusable `u64` bitset; it is resized to the range
    /// length and cleared on entry.
    pub fn coverage_of_range(
        &self,
        seeds: &[NodeId],
        range: Range<u32>,
        scratch: &mut Vec<u64>,
    ) -> u64 {
        let len = (range.end - range.start) as usize;
        scratch.clear();
        scratch.resize(len.div_ceil(64), 0);
        let mut covered = 0u64;
        for &s in seeds {
            for id in self.sets_containing_in(s, range.clone()) {
                let slot = (id - range.start) as usize;
                let (word, bit) = (slot / 64, 1u64 << (slot % 64));
                if scratch[word] & bit == 0 {
                    scratch[word] |= bit;
                    covered += 1;
                }
            }
        }
        covered
    }

    /// Number of pooled sets covered by `seeds` (`Cov_R(S)`, Eq. 1).
    pub fn coverage_of(&self, seeds: &[NodeId]) -> u64 {
        let mut scratch = Vec::new();
        self.coverage_of_range(seeds, self.id_range(), &mut scratch)
    }

    /// Exact byte footprint of the pool (arena + offsets + both inverted
    /// index tiers, counting capacities). This is the quantity the memory
    /// experiments (Figs. 6–7) report.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let arena = self.data.capacity() * size_of::<NodeId>();
        let offsets = (self.offsets.capacity() + self.epoch_edges.capacity()) * size_of::<u64>();
        (arena + offsets) as u64 + self.index.memory_bytes()
    }

    /// Byte footprint of the inverted index alone (both tiers, counting
    /// capacities) — the component the two-tier layout shrinks relative
    /// to per-node `Vec`s.
    pub fn index_memory_bytes(&self) -> u64 {
        self.index.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::{Model, RrSampler};
    use sns_graph::WeightModel;

    fn meta(root: NodeId) -> RrMeta {
        RrMeta { root, edges_examined: 1 }
    }

    #[test]
    fn push_and_query() {
        let mut rc = RrCollection::new(5);
        rc.push(&[0, 1, 2], meta(0));
        rc.push(&[1], meta(1));
        rc.push(&[3, 1], meta(3));
        assert_eq!(rc.len(), 3);
        assert_eq!(rc.total_nodes(), 6);
        assert_eq!(rc.set(0), &[0, 1, 2]);
        assert_eq!(rc.set(1), &[1]);
        assert_eq!(rc.sets_containing(1).to_vec(), vec![0, 1, 2]);
        assert_eq!(rc.sets_containing(4).to_vec(), Vec::<u32>::new());
        assert_eq!(rc.total_edges_examined(), 3);
    }

    #[test]
    fn coverage_counts_each_set_once() {
        let mut rc = RrCollection::new(5);
        rc.push(&[0, 1], meta(0));
        rc.push(&[1, 2], meta(1));
        rc.push(&[3], meta(3));
        // seeds {0, 1}: sets 0 and 1 covered (set 0 via both nodes, once)
        assert_eq!(rc.coverage_of(&[0, 1]), 2);
        assert_eq!(rc.coverage_of(&[3]), 1);
        assert_eq!(rc.coverage_of(&[4]), 0);
        assert_eq!(rc.coverage_of(&[0, 1, 2, 3]), 3);
    }

    #[test]
    fn range_restricted_queries() {
        let mut rc = RrCollection::new(3);
        rc.push(&[0], meta(0)); // id 0
        rc.push(&[0, 1], meta(0)); // id 1
        rc.push(&[1], meta(1)); // id 2
        rc.push(&[0, 2], meta(0)); // id 3
        assert_eq!(rc.sets_containing_in(0, 1..4).to_vec(), vec![1, 3]);
        let mut scratch = Vec::new();
        assert_eq!(rc.coverage_of_range(&[0], 0..2, &mut scratch), 2);
        assert_eq!(rc.coverage_of_range(&[0], 2..4, &mut scratch), 1);
        assert_eq!(rc.coverage_of_range(&[1], 2..4, &mut scratch), 1);
    }

    #[test]
    fn queries_agree_across_seal_boundaries() {
        let mut rc = RrCollection::new(3);
        rc.push(&[0], meta(0)); // id 0
        rc.push(&[0, 1], meta(0)); // id 1
        let _ = rc.seal(); // ids 0..2 now sealed
        rc.push(&[1], meta(1)); // id 2 (pending)
        rc.push(&[0, 2], meta(0)); // id 3 (pending)
        assert_eq!(rc.sealed_sets(), 2);
        assert_eq!(rc.pending_sets(), 2);
        assert_eq!(rc.sets_containing(0).to_vec(), vec![0, 1, 3]);
        assert_eq!(rc.sets_containing_in(0, 1..4).to_vec(), vec![1, 3]);
        assert_eq!(rc.sets_containing_in(1, 1..3).to_vec(), vec![1, 2]);
        let mut scratch = Vec::new();
        assert_eq!(rc.coverage_of_range(&[0], 2..4, &mut scratch), 1);
        assert_eq!(rc.coverage_of(&[1]), 2);
    }

    #[test]
    fn parallel_growth_bit_identical_to_sequential() {
        let g =
            sns_graph::gen::erdos_renyi(300, 2400, 5).build(WeightModel::WeightedCascade).unwrap();
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let sampler = RrSampler::with_config(&g, model, sns_diffusion::RootDist::Uniform, 11);
            let mut seq = RrCollection::new(300);
            seq.extend_sequential(&mut sampler.clone(), 0, 1000);
            let mut par = RrCollection::new(300);
            par.extend_parallel(&sampler, 0, 1000, 8);
            assert_eq!(seq.len(), par.len());
            assert_eq!(seq.data, par.data);
            assert_eq!(seq.offsets, par.offsets);
            assert_eq!(seq.index, par.index, "index tiers must match bit-for-bit");
            assert_eq!(seq.total_edges_examined, par.total_edges_examined);
        }
    }

    #[test]
    fn memory_accounting_grows() {
        let mut rc = RrCollection::new(4);
        let empty = rc.memory_bytes();
        for i in 0..100 {
            rc.push(&[(i % 4) as u32, ((i + 1) % 4) as u32], meta(0));
        }
        assert!(rc.memory_bytes() > empty);
        assert!(rc.index_memory_bytes() > 0);
    }

    #[test]
    fn sealing_shrinks_the_index() {
        let mut rc = RrCollection::new(4);
        for i in 0..2000 {
            rc.push(&[(i % 4) as u32, ((i + 1) % 4) as u32], meta(0));
        }
        let before = rc.index_memory_bytes();
        let _ = rc.seal();
        assert_eq!(rc.pending_sets(), 0);
        assert!(
            rc.index_memory_bytes() <= before,
            "sealed CSR should not exceed chained layout: {} vs {before}",
            rc.index_memory_bytes()
        );
        // all queries still intact
        assert_eq!(rc.sets_containing(0).len(), 1000);
    }

    #[test]
    fn epoch_boundaries_are_append_only_and_tile_the_sealed_prefix() {
        let mut rc = RrCollection::new(4);
        assert!(rc.epoch_boundaries().is_empty());
        rc.push(&[0, 1], meta(0));
        rc.push(&[1, 2], meta(1));
        let _ = rc.seal();
        assert_eq!(rc.epoch_boundaries(), &[2]);
        assert_eq!(rc.epochs().collect::<Vec<_>>(), vec![0..2]);
        // sealing a fully sealed pool is a no-op: no rebuild, no epoch
        let compactions = rc.compactions();
        let _ = rc.seal();
        assert_eq!(rc.compactions(), compactions);
        assert_eq!(rc.epoch_boundaries(), &[2]);
        // growth + seal freezes exactly one new epoch; old bounds move
        // nowhere (the append-only contract per-epoch snapshots rely on)
        rc.push(&[2, 3], meta(2));
        rc.push(&[3], meta(3));
        let _ = rc.seal();
        assert_eq!(rc.epoch_boundaries(), &[2, 4]);
        assert_eq!(rc.epochs().collect::<Vec<_>>(), vec![0..2, 2..4]);
        // pending sets past the last boundary belong to no epoch yet
        rc.push(&[0], meta(0));
        assert_eq!(rc.epoch_boundaries(), &[2, 4]);
        assert_eq!(rc.len(), 5);
    }

    #[test]
    fn threshold_compactions_record_epoch_boundaries() {
        // push-driven growth crosses the compaction threshold on its
        // own; every automatic seal must leave a boundary at its
        // then-frontier, strictly ascending.
        let mut rc = RrCollection::new(8);
        for i in 0..3000u32 {
            rc.push(&[i % 8, (i + 1) % 8], meta(0));
        }
        let bounds = rc.epoch_boundaries().to_vec();
        assert_eq!(bounds.len() as u64, rc.compactions());
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "not ascending: {bounds:?}");
        assert_eq!(*bounds.last().unwrap(), rc.sealed_sets());
    }

    #[test]
    fn inverted_index_is_ascending() {
        let mut rc = RrCollection::new(2);
        for _ in 0..50 {
            rc.push(&[0, 1], meta(0));
        }
        let ids = rc.sets_containing(0).to_vec();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}
