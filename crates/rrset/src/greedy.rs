//! Greedy Max-Coverage — Algorithm 2 of the paper.
//!
//! The greedy algorithm repeatedly selects the node covering the most
//! still-uncovered RR sets; Nemhauser–Wolsey submodularity gives the
//! `(1 − 1/e)` guarantee relative to the best size-`k` cover. Two
//! implementations:
//!
//! * [`max_coverage`] / [`max_coverage_range`] — exact decremental
//!   coverage counts plus a lazy max-heap (stale entries are re-keyed on
//!   pop), the implementation used by every algorithm in this library.
//!   Since the coverage-view refactor these run on a sealed
//!   **CSR-transposed snapshot** of the queried pool slice
//!   ([`crate::CoverageView`]): selection time first materializes the
//!   transpose of the inverted index — a flat forward `set → members`
//!   CSR with width-adaptive offsets rebased to the range (member data
//!   borrowed zero-copy from the arena; dropped when selection returns) —
//!   initializes gains with one streaming histogram pass instead of `n`
//!   two-tier index queries, and runs every decremental gain update as a
//!   contiguous slice sweep over the snapshot with a generation-stamped
//!   covered bitset, instead of chasing `u64` arena offsets spread over
//!   the whole pool. Total work is `O(Σ|R_j| + n + heap traffic)`; seeds
//!   are bit-identical to the pre-view implementation (same `(gain, id)`
//!   max-heap tie-break). Algorithms that select round after round
//!   (SSA, D-SSA, IMM, TIM) call [`crate::max_coverage_with`] to reuse
//!   one [`crate::GreedyScratch`] across rounds.
//! * [`max_coverage_naive`] — linear rescan of all nodes per round,
//!   `O(n·k + Σ|R_j|)`. Kept as the correctness oracle and ablation
//!   baseline; it deliberately keeps walking [`RrCollection`] directly so
//!   the oracle shares no code with the view path it checks.

use std::ops::Range;

use sns_graph::NodeId;

use crate::coverage::{max_coverage_with, GreedyScratch};
use crate::RrCollection;

/// Result of a greedy max-coverage run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageResult {
    /// Selected seed nodes, in selection order.
    pub seeds: Vec<NodeId>,
    /// Number of RR sets covered by `seeds` (within the queried range).
    pub covered: u64,
    /// Marginal coverage gain of each seed at its selection time.
    pub marginal_gains: Vec<u64>,
}

impl CoverageResult {
    /// Estimated influence this cover represents: `Γ · covered / |R|`
    /// (Lemma 1 of the paper; `Γ = n` for plain RIS).
    pub fn influence_estimate(&self, gamma: f64, pool_size: u64) -> f64 {
        if pool_size == 0 {
            return 0.0;
        }
        gamma * self.covered as f64 / pool_size as f64
    }
}

/// Runs lazy-greedy max-coverage over the whole pool.
pub fn max_coverage(rc: &RrCollection, k: usize) -> CoverageResult {
    max_coverage_range(rc, k, rc.id_range())
}

/// Runs lazy-greedy max-coverage over the pool slice `range` (used by
/// D-SSA, whose candidate half is the id range `0..Λ·2^(t−1)`).
///
/// Materializes a [`crate::CoverageView`] of the slice and selects on it;
/// see [`crate::max_coverage_with`] to amortize the working buffers over
/// repeated rounds.
pub fn max_coverage_range(rc: &RrCollection, k: usize, range: Range<u32>) -> CoverageResult {
    max_coverage_with(rc, k, range, &mut GreedyScratch::new())
}

/// Textbook greedy: rescans every node each round. Correctness oracle for
/// [`max_coverage`] and the ablation baseline.
pub fn max_coverage_naive(rc: &RrCollection, k: usize) -> CoverageResult {
    let n = rc.num_nodes();
    let k = k.min(n as usize);
    let mut gain: Vec<u64> = (0..n).map(|v| rc.sets_containing(v).len() as u64).collect();
    let mut covered_mark = vec![false; rc.len()];
    let mut selected = vec![false; n as usize];
    let mut seeds = Vec::with_capacity(k);
    let mut marginal_gains = Vec::with_capacity(k);
    let mut covered = 0u64;

    for _ in 0..k {
        let mut best: Option<(u64, NodeId)> = None;
        for v in 0..n {
            if selected[v as usize] || gain[v as usize] == 0 {
                continue;
            }
            // Tie-break on the larger node id to mirror the heap's
            // deterministic order: the (gain, id) max-heap pops the
            // largest id first among equal gains.
            let candidate = (gain[v as usize], v);
            if best.is_none_or(|b| candidate > b) {
                best = Some(candidate);
            }
        }
        let Some((g, v)) = best else { break };
        selected[v as usize] = true;
        seeds.push(v);
        marginal_gains.push(g);
        covered += g;
        for id in rc.sets_containing(v) {
            let slot = id as usize;
            if covered_mark[slot] {
                continue;
            }
            covered_mark[slot] = true;
            for &w in rc.set(slot) {
                gain[w as usize] -= 1;
            }
        }
    }

    let mut next = 0u32;
    while seeds.len() < k && next < n {
        if !selected[next as usize] {
            selected[next as usize] = true;
            seeds.push(next);
            marginal_gains.push(0);
        }
        next += 1;
    }

    CoverageResult { seeds, covered, marginal_gains }
}

/// The lazy-heap greedy exactly as it stood **before** the
/// [`crate::CoverageView`] refactor, kept verbatim (do not optimize) as
/// the bit-identity reference and ablation baseline: gain initialization
/// issues one two-tier inverted-index query per node, and every
/// decremental update walks `rc.set(id)` through the pool's `u64` arena
/// offsets. Shared by the `greedy_coverage` bench and the acceptance
/// property test so both compare against the same baseline.
pub fn max_coverage_pre_refactor(rc: &RrCollection, k: usize, range: Range<u32>) -> CoverageResult {
    use std::collections::BinaryHeap;

    let n = rc.num_nodes();
    let k = k.min(n as usize);
    let range_len = (range.end - range.start) as usize;

    let mut gain: Vec<u64> =
        (0..n).map(|v| rc.sets_containing_in(v, range.clone()).len() as u64).collect();
    let mut heap: BinaryHeap<(u64, NodeId)> =
        (0..n).filter(|&v| gain[v as usize] > 0).map(|v| (gain[v as usize], v)).collect();

    let mut covered_mark = vec![false; range_len];
    let mut selected = vec![false; n as usize];
    let mut seeds = Vec::with_capacity(k);
    let mut marginal_gains = Vec::with_capacity(k);
    let mut covered = 0u64;

    while seeds.len() < k {
        let Some((g, v)) = heap.pop() else { break };
        if selected[v as usize] {
            continue;
        }
        let current = gain[v as usize];
        if g > current {
            if current > 0 {
                heap.push((current, v));
            }
            continue;
        }
        if current == 0 {
            break;
        }
        selected[v as usize] = true;
        seeds.push(v);
        marginal_gains.push(current);
        covered += current;
        for id in rc.sets_containing_in(v, range.clone()) {
            let slot = (id - range.start) as usize;
            if covered_mark[slot] {
                continue;
            }
            covered_mark[slot] = true;
            for &w in rc.set(id as usize) {
                gain[w as usize] -= 1;
            }
        }
    }

    let mut next = 0u32;
    while seeds.len() < k && next < n {
        if !selected[next as usize] {
            selected[next as usize] = true;
            seeds.push(next);
            marginal_gains.push(0);
        }
        next += 1;
    }

    CoverageResult { seeds, covered, marginal_gains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::RrMeta;

    fn m() -> RrMeta {
        RrMeta { root: 0, edges_examined: 0 }
    }

    fn pool(sets: &[&[NodeId]], n: u32) -> RrCollection {
        let mut rc = RrCollection::new(n);
        for s in sets {
            rc.push(s, m());
        }
        rc
    }

    #[test]
    fn picks_the_dominating_node() {
        let rc = pool(&[&[0, 1], &[0, 2], &[0, 3], &[4]], 5);
        let r = max_coverage(&rc, 1);
        assert_eq!(r.seeds, vec![0]);
        assert_eq!(r.covered, 3);
        assert_eq!(r.marginal_gains, vec![3]);
    }

    #[test]
    fn two_seeds_cover_everything() {
        let rc = pool(&[&[0, 1], &[0, 2], &[4], &[4, 3]], 5);
        let r = max_coverage(&rc, 2);
        assert_eq!(r.covered, 4);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 4]);
    }

    #[test]
    fn pads_to_k_seeds_when_coverage_exhausted() {
        let rc = pool(&[&[1]], 4);
        let r = max_coverage(&rc, 3);
        assert_eq!(r.seeds.len(), 3);
        assert_eq!(r.covered, 1);
        assert_eq!(r.seeds[0], 1);
        assert_eq!(r.marginal_gains[1], 0);
        assert_eq!(r.marginal_gains[2], 0);
    }

    #[test]
    fn k_clamped_to_n() {
        let rc = pool(&[&[0], &[1]], 2);
        let r = max_coverage(&rc, 10);
        assert_eq!(r.seeds.len(), 2);
    }

    #[test]
    fn empty_pool_yields_zero_coverage() {
        let rc = pool(&[], 3);
        let r = max_coverage(&rc, 2);
        assert_eq!(r.covered, 0);
        assert_eq!(r.seeds.len(), 2); // padded
        assert_eq!(r.influence_estimate(3.0, 0), 0.0);
    }

    #[test]
    fn range_restriction_changes_the_answer() {
        // sets 0,1 dominated by node 0; sets 2,3 dominated by node 1
        let rc = pool(&[&[0], &[0, 2], &[1], &[1, 2]], 3);
        let first = max_coverage_range(&rc, 1, 0..2);
        assert_eq!(first.seeds, vec![0]);
        let second = max_coverage_range(&rc, 1, 2..4);
        assert_eq!(second.seeds, vec![1]);
    }

    #[test]
    fn lazy_matches_naive_on_random_pools() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for trial in 0..30 {
            let n = rng.gen_range(5..40u32);
            let sets = rng.gen_range(1..120usize);
            let mut rc = RrCollection::new(n);
            for _ in 0..sets {
                let len = rng.gen_range(1..6usize);
                let mut s: Vec<NodeId> = (0..len).map(|_| rng.gen_range(0..n)).collect();
                s.sort_unstable();
                s.dedup();
                rc.push(&s, m());
            }
            let k = rng.gen_range(1..6usize);
            let lazy = max_coverage(&rc, k);
            let naive = max_coverage_naive(&rc, k);
            // Greedy choices can differ on ties, but total coverage of the
            // greedy solution is unique given deterministic tie-breaks; we
            // assert both use (gain, id) max ordering so seeds match too.
            assert_eq!(lazy.covered, naive.covered, "trial {trial}");
            assert_eq!(lazy.seeds, naive.seeds, "trial {trial}");
        }
    }

    #[test]
    fn influence_estimate_scales() {
        let rc = pool(&[&[0], &[0], &[1], &[2]], 3);
        let r = max_coverage(&rc, 1);
        // covers 2 of 4 sets; gamma = 3 nodes -> estimate 1.5
        assert!((r.influence_estimate(3.0, 4) - 1.5).abs() < 1e-12);
    }
}
