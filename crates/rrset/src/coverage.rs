//! Sealed CSR-transposed coverage view — the cache-linear data structure
//! greedy Max-Coverage (Algorithm 2) consumes instead of re-walking the
//! pool arena per newly covered set.
//!
//! # Why a separate view
//!
//! The selection loop of [`crate::max_coverage_range`] has two hot memory
//! patterns:
//!
//! 1. the **gain initialization** — one inverted-index query per node
//!    (`n` binary searches into the sealed CSR tier plus a
//!    pointer-chasing pending-chain walk each); and
//! 2. the **decremental updates** — for every newly covered set, walk
//!    its members and decrement their marginal gains, which chases `u64`
//!    arena offsets spread over the *whole* pool even when the query
//!    range is a small slice (D-SSA's find half).
//!
//! Once pools reach 10⁶+ sets these dependent loads dominate the round.
//! [`CoverageView::build`] materializes the transpose of the inverted
//! node→set-ids index — a flat forward **set → members** CSR
//! (`set_offsets` + `set_data`), rebased to the queried range — in
//! `O(range_len)`: slot `j` (set id `range.start + j`) owns the
//! contiguous member slice `set_data[set_offsets[j]..set_offsets[j+1]]`.
//! The member data is the arena's own contiguous slice over the range,
//! borrowed zero-copy; only the offsets are rebased, reusing the
//! width-adaptive [`CsrOffsets`] machinery of the inverted index (`u32`
//! until the range holds 2³² entries). Decremental updates thus become
//! contiguous `u32`-offset slice sweeps with half the offset traffic and
//! no pool-wide stride. Gain initialization collapses to a single linear
//! histogram pass over `set_data` — `O(entries)` streaming reads instead
//! of `n` two-tier index queries. Only the `k` per-seed "which sets
//! contain the winner" queries still consult the pool's inverted index
//! (they touch exactly the sets being covered, and `k` is tiny).
//!
//! # Memory cost and rebuild policy
//!
//! A view owns only its rebased offset array — `4 B·(range_len + 1)`
//! while narrow; member data is borrowed from the arena. It is a
//! *selection-time snapshot*: built per [`crate::max_coverage_range`]
//! call and dropped afterwards, so the pool's steady-state footprint is
//! unchanged; it is never incrementally maintained (RIS algorithms grow
//! the pool between selections, which would invalidate it wholesale
//! anyway). Callers that run several selections against one frozen pool
//! slice can build once and call [`CoverageView::select`] repeatedly.
//!
//! # Determinism
//!
//! [`CoverageView::select`] runs exactly the lazy-heap greedy of the
//! pre-view implementation — same `(gain, id)` max-heap tie-break, same
//! zero-gain padding — so seeds are bit-identical to it and to
//! [`crate::max_coverage_naive`]. The covered bitset is
//! *generation-stamped* ([`GreedyScratch`]): marking a slot covered
//! writes the run's generation number, so reusing a scratch across
//! rounds costs zero clearing work.

use std::borrow::Cow;
use std::collections::BinaryHeap;
use std::ops::Range;

use sns_graph::NodeId;

use crate::index::CsrOffsets;
use crate::snapshot::GainSnapshot;
use crate::{CoverageResult, RrCollection};

/// Side conditions a seed-query places on greedy selection: `forced`
/// seeds are selected first (in the given order, consuming budget and
/// coverage), `excluded` nodes are never selected — not even as zero-gain
/// padding. Empty constraints reproduce plain greedy exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedConstraints<'a> {
    /// Seeds selected unconditionally before the greedy loop, in order.
    /// Must number at most `k`; duplicates are selected once.
    pub forced: &'a [NodeId],
    /// Nodes the selection must never return.
    pub excluded: &'a [NodeId],
}

impl SeedConstraints<'_> {
    /// No constraints — plain greedy.
    pub fn none() -> Self {
        SeedConstraints::default()
    }
}

/// How [`CoverageView::select_inner`] obtains the initial per-node
/// gains: a fresh streaming histogram, one frozen snapshot (memcpy), or
/// a list of per-epoch snapshots summed at query time.
enum GainInit<'a> {
    /// One streaming pass over the slice's members, `O(entries)`.
    Histogram,
    /// Memcpy of a single frozen snapshot covering the whole range.
    Frozen(&'a GainSnapshot),
    /// Sum of per-epoch snapshots tiling the range, `O(n·parts)`.
    Merged(&'a [&'a GainSnapshot]),
}

/// Range-rebased forward (`set → members`) CSR snapshot of a pool slice
/// (see the module docs). Borrows the pool: the member data is the
/// arena's own contiguous slice (zero-copy), and the per-seed inverted
/// queries of [`CoverageView::select`] go through the pool's index.
#[derive(Debug, Clone)]
pub struct CoverageView<'a> {
    rc: &'a RrCollection,
    range: Range<u32>,
    /// Slot `j` spans `set_data[set_offsets[j]..set_offsets[j + 1]]`.
    /// Owned when built by the per-call rebase ([`CoverageView::build`]);
    /// borrowed when a [`GainSnapshot`] lends its frozen copy
    /// ([`GainSnapshot::view`]), which makes steady-state snapshot
    /// queries skip the `O(range_len)` rebase entirely.
    set_offsets: Cow<'a, CsrOffsets>,
    /// Concatenated members of the in-range sets — the arena slice
    /// spanning the range, borrowed, since it is already contiguous.
    set_data: &'a [NodeId],
}

impl<'a> CoverageView<'a> {
    /// Materializes the view for the pool slice `range` in
    /// `O(entries in range)`.
    ///
    /// # Panics
    ///
    /// Panics if `range.start > range.end` or `range.end > rc.len()`.
    pub fn build(rc: &'a RrCollection, range: Range<u32>) -> Self {
        assert!(
            range.start <= range.end && range.end as usize <= rc.len(),
            "coverage view range {range:?} out of bounds for pool of {} sets",
            rc.len()
        );
        let (data, offsets) = rc.arena();
        let base = offsets[range.start as usize];
        let set_data = &data[base as usize..offsets[range.end as usize] as usize];
        let set_offsets =
            CsrOffsets::rebased(&offsets[range.start as usize..=range.end as usize], base);
        CoverageView { rc, range, set_offsets: Cow::Owned(set_offsets), set_data }
    }

    /// [`CoverageView::build`] with the rebased offsets supplied by a
    /// frozen snapshot instead of recomputed — `O(1)`, the steady-state
    /// fast path of `sns-core`'s query engine. Only reachable through
    /// [`GainSnapshot::view`] (and its weighted twin), whose caller must
    /// pass the pool the snapshot was built from; the total-entry-count
    /// cross-check below catches a wrong-pool mix-up (it cannot prove
    /// the pools identical, but two pools rarely agree on the entry
    /// count of a slice by accident).
    pub(crate) fn with_frozen_offsets(
        rc: &'a RrCollection,
        range: Range<u32>,
        set_offsets: &'a CsrOffsets,
    ) -> Self {
        assert!(
            range.start <= range.end && range.end as usize <= rc.len(),
            "coverage view range {range:?} out of bounds for pool of {} sets",
            rc.len()
        );
        let (data, offsets) = rc.arena();
        let base = offsets[range.start as usize];
        let set_data = &data[base as usize..offsets[range.end as usize] as usize];
        if range.start < range.end {
            let last = (range.end - range.start - 1) as usize;
            assert_eq!(
                set_offsets.span(last).end,
                set_data.len(),
                "frozen offsets disagree with the pool arena over {range:?} — \
                 snapshot applied to a different pool?"
            );
        }
        CoverageView { rc, range, set_offsets: Cow::Borrowed(set_offsets), set_data }
    }

    /// Number of sets in the view's range.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// Whether the view's range is empty.
    pub fn is_empty(&self) -> bool {
        self.range.start == self.range.end
    }

    /// The pool id range this view snapshots.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// Members of the set at `slot` (pool id `range.start + slot`).
    pub fn members(&self, slot: usize) -> &[NodeId] {
        &self.set_data[self.set_offsets.span(slot)]
    }

    /// Exact byte footprint the view *owns* — the rebased offset array.
    /// Member data is borrowed from the pool arena (zero-copy) and so
    /// costs nothing beyond the pool's own accounting
    /// ([`RrCollection::memory_bytes`]).
    pub fn memory_bytes(&self) -> u64 {
        self.set_offsets.memory_bytes()
    }

    /// Lazy-heap greedy Max-Coverage over this view — bit-identical seeds
    /// to [`crate::max_coverage_range`] on the same pool slice (which is
    /// implemented as `build` + `select`).
    ///
    /// `scratch` supplies the gain table, heap storage and the
    /// generation-stamped covered/selected marks; reusing one scratch
    /// across rounds skips all per-round clearing and reallocation.
    pub fn select(&self, k: usize, scratch: &mut GreedyScratch) -> CoverageResult {
        self.select_inner(k, &SeedConstraints::none(), scratch, GainInit::Histogram)
    }

    /// [`CoverageView::select`] with the histogram pass replaced by a
    /// memcpy of `snapshot`'s frozen gains and heap seed — the
    /// frozen-pool fast path for callers answering many queries against
    /// one sealed slice. Bit-identical to [`CoverageView::select`].
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` was built for a different id range.
    pub fn select_from_snapshot(
        &self,
        snapshot: &GainSnapshot,
        k: usize,
        scratch: &mut GreedyScratch,
    ) -> CoverageResult {
        self.select_inner(k, &SeedConstraints::none(), scratch, GainInit::Frozen(snapshot))
    }

    /// [`CoverageView::select_from_snapshot`] over a *list* of per-epoch
    /// snapshots tiling this view's range: the gain histograms of the
    /// parts are summed and the heap seed is rebuilt from the merged
    /// histogram (`O(n·parts)`), then selection proceeds exactly as with
    /// a single frozen snapshot. Bit-identical to
    /// [`CoverageView::select_constrained`] on the same slice — summing
    /// per-epoch `u32` histograms produces the very counts one streaming
    /// pass over the whole range would.
    ///
    /// This is the query-time half of epoch-incremental snapshot
    /// maintenance: when a pool grows, only the new epoch needs freezing
    /// ([`GainSnapshot::build`]); queries spanning old and new epochs
    /// merge here instead of invalidating anything. Callers answering
    /// the same multi-epoch range repeatedly should materialize the
    /// merge once with [`GainSnapshot::merge`] and use the single-
    /// snapshot fast path afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots do not tile `self.range()` contiguously
    /// in order, or if more than `k` seeds are forced.
    pub fn select_from_snapshots(
        &self,
        parts: &[&GainSnapshot],
        k: usize,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> CoverageResult {
        self.select_inner(k, constraints, scratch, GainInit::Merged(parts))
    }

    /// [`CoverageView::select`] under [`SeedConstraints`]: forced seeds
    /// are taken first (their coverage removed from every later gain),
    /// excluded nodes are skipped by both the greedy loop and the
    /// zero-gain padding. With empty constraints this *is* `select`.
    pub fn select_constrained(
        &self,
        k: usize,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> CoverageResult {
        self.select_inner(k, constraints, scratch, GainInit::Histogram)
    }

    /// [`CoverageView::select_from_snapshot`] under [`SeedConstraints`] —
    /// the entry point of `sns-core`'s seed-query engine. Bit-identical
    /// to [`CoverageView::select_constrained`] on the same inputs.
    pub fn select_from_snapshot_constrained(
        &self,
        snapshot: &GainSnapshot,
        k: usize,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> CoverageResult {
        self.select_inner(k, constraints, scratch, GainInit::Frozen(snapshot))
    }

    /// Walks the sets of `v` within the view's range, marking each
    /// still-uncovered one covered and decrementing its members' gains —
    /// the decremental-update sweep shared by greedy picks and forced
    /// seeds (and by the budgeted twin in [`crate::budgeted`]).
    #[inline]
    pub(crate) fn cover_sets_of(
        &self,
        v: NodeId,
        generation: u32,
        covered_stamp: &mut [u32],
        gain: &mut [u32],
    ) {
        for id in self.rc.sets_containing_in(v, self.range.clone()) {
            let slot = (id - self.range.start) as usize;
            if covered_stamp[slot] == generation {
                continue;
            }
            covered_stamp[slot] = generation;
            for &w in self.members(slot) {
                gain[w as usize] -= 1;
            }
        }
    }

    fn select_inner(
        &self,
        k: usize,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
        init: GainInit<'_>,
    ) -> CoverageResult {
        let n = self.rc.num_nodes();
        let k = k.min(n as usize);
        assert!(
            constraints.forced.len() <= k,
            "{} forced seeds exceed the budget k = {k}",
            constraints.forced.len()
        );
        let generation = scratch.begin_run(n as usize, self.len());

        let mut heap_buf = std::mem::take(&mut scratch.heap_buf);
        heap_buf.clear();
        let gain = &mut scratch.gain;
        gain.clear();
        match init {
            GainInit::Frozen(snapshot) => {
                // Frozen-pool fast path: both the exact gains and the
                // nonzero heap seed are memcpys of the snapshot.
                assert_eq!(
                    snapshot.range(),
                    self.range,
                    "gain snapshot was built for a different pool slice"
                );
                gain.extend_from_slice(snapshot.gains());
                heap_buf.extend_from_slice(snapshot.heap_seed());
            }
            GainInit::Merged(parts) => {
                // Epoch-merge path: sum the per-epoch histograms (the
                // counts one full-range streaming pass would produce,
                // since `u32` addition is order-independent) and rebuild
                // the nonzero heap seed from the merged table.
                let mut pos = self.range.start;
                for part in parts {
                    assert_eq!(
                        part.range().start,
                        pos,
                        "epoch snapshots must tile the view's range {:?} contiguously",
                        self.range
                    );
                    assert_eq!(
                        part.gains().len(),
                        n as usize,
                        "epoch snapshot spans a different node universe"
                    );
                    pos = part.range().end;
                }
                assert_eq!(pos, self.range.end, "epoch snapshots stop short of the view's range");
                gain.resize(n as usize, 0);
                for part in parts {
                    for (g, &p) in gain.iter_mut().zip(part.gains()) {
                        *g += p;
                    }
                }
                heap_buf.extend(
                    (0..n).filter(|&v| gain[v as usize] > 0).map(|v| (gain[v as usize], v)),
                );
            }
            GainInit::Histogram => {
                // Exact current marginal gain per node, by one streaming
                // histogram pass over the materialized members (== the
                // in-range degree `sets_containing_in(v, range).len()`
                // of every node).
                gain.resize(n as usize, 0);
                for &v in self.set_data {
                    gain[v as usize] += 1;
                }
                heap_buf.extend(
                    (0..n).filter(|&v| gain[v as usize] > 0).map(|v| (gain[v as usize], v)),
                );
            }
        }
        let mut heap: BinaryHeap<(u32, NodeId)> = BinaryHeap::from(heap_buf);

        let mut seeds = Vec::with_capacity(k);
        let mut marginal_gains = Vec::with_capacity(k);
        let mut covered = 0u64;

        // Excluded nodes are marked selected up front so neither the
        // greedy loop nor the padding can return them.
        for &v in constraints.excluded {
            scratch.selected_stamp[v as usize] = generation;
        }
        for &v in constraints.forced {
            if scratch.selected_stamp[v as usize] == generation {
                continue; // duplicate forced seed: selected once
            }
            scratch.selected_stamp[v as usize] = generation;
            let g = gain[v as usize];
            seeds.push(v);
            marginal_gains.push(u64::from(g));
            covered += u64::from(g);
            if g > 0 {
                self.cover_sets_of(v, generation, &mut scratch.covered_stamp, gain);
            }
        }

        while seeds.len() < k {
            let Some((g, v)) = heap.pop() else { break };
            if scratch.selected_stamp[v as usize] == generation {
                continue;
            }
            let current = gain[v as usize];
            if g > current {
                // Stale entry: re-key with the exact gain. Gains only
                // decrease, so the max-heap invariant stays sound.
                if current > 0 {
                    heap.push((current, v));
                }
                continue;
            }
            // g == current: v is the true argmax.
            if current == 0 {
                break; // nothing left to cover
            }
            scratch.selected_stamp[v as usize] = generation;
            seeds.push(v);
            marginal_gains.push(u64::from(current));
            covered += u64::from(current);
            self.cover_sets_of(v, generation, &mut scratch.covered_stamp, gain);
            debug_assert_eq!(gain[v as usize], 0);
        }

        // The paper's algorithms want exactly k seeds even when extra
        // seeds add no coverage (I(S) still counts the seeds themselves).
        // Pad with arbitrary unselected nodes, gain 0.
        let mut next = 0u32;
        while seeds.len() < k && next < n {
            if scratch.selected_stamp[next as usize] != generation {
                scratch.selected_stamp[next as usize] = generation;
                seeds.push(next);
                marginal_gains.push(0);
            }
            next += 1;
        }

        scratch.heap_buf = heap.into_vec();
        CoverageResult { seeds, covered, marginal_gains }
    }

    /// The raw concatenated member data of the view's slice (what the
    /// histogram pass streams) — shared with [`GainSnapshot::build`].
    pub(crate) fn raw_members(&self) -> &[NodeId] {
        self.set_data
    }

    /// The rebased per-slot offsets — what [`GainSnapshot::build`]
    /// freezes so later views can skip the rebase.
    pub(crate) fn offsets(&self) -> &CsrOffsets {
        &self.set_offsets
    }

    /// The pool this view snapshots (for the per-seed inverted queries
    /// of the weighted selection twin in [`crate::snapshot`]).
    pub(crate) fn pool(&self) -> &RrCollection {
        self.rc
    }

    /// Node-universe size of the underlying pool.
    pub fn num_nodes(&self) -> u32 {
        self.rc.num_nodes()
    }
}

/// Reusable working state for [`CoverageView::select`]: per-node gains,
/// heap storage, and generation-stamped covered/selected marks.
///
/// The stamps make reuse O(1): a slot counts as covered only when its
/// stamp equals the *current* run's generation, so starting a new run is
/// a counter bump, not an `O(range + n)` clear. One scratch can serve
/// pools and ranges of any size (buffers grow on demand and are kept at
/// high-water capacity) — SSA/D-SSA/IMM/TIM hold one per run and pass it
/// to every selection round.
#[derive(Debug, Clone, Default)]
pub struct GreedyScratch {
    /// Exact current marginal gain per node (valid during a run). `u32`
    /// deliberately: a gain is bounded by the set-id space, and the
    /// decrement sweep's random accesses profit from the halved table.
    /// Shared with the budgeted ratio-greedy in [`crate::budgeted`].
    pub(crate) gain: Vec<u32>,
    /// Per-slot covered mark: covered iff `== generation`.
    pub(crate) covered_stamp: Vec<u32>,
    /// Per-node selected mark: selected iff `== generation`.
    pub(crate) selected_stamp: Vec<u32>,
    /// Recycled backing storage of the lazy max-heap.
    heap_buf: Vec<(u32, NodeId)>,
    /// Weighted-query gain table (`Σ` of covered set weights per node;
    /// used by [`CoverageView::select_weighted`]).
    pub(crate) wgain: Vec<f64>,
    /// Recycled backing storage of the weighted lazy max-heap.
    pub(crate) wheap_buf: Vec<(crate::snapshot::WeightOrd, NodeId)>,
    /// Current run's stamp; incremented by [`GreedyScratch::begin_run`].
    generation: u32,
}

impl GreedyScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        GreedyScratch::default()
    }

    /// Starts a new run: bumps the generation and grows the stamp buffers
    /// to cover `n` nodes and `len` slots. Fresh (zeroed) stamp entries
    /// can never equal a live generation because generations start at 1.
    pub(crate) fn begin_run(&mut self, n: usize, len: usize) -> u32 {
        if self.generation == u32::MAX {
            // Wrapped after 2³² runs: zero the stamps so stale marks from
            // generation u32::MAX cannot alias generation numbers that
            // are about to be handed out again.
            self.covered_stamp.iter_mut().for_each(|s| *s = 0);
            self.selected_stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 0;
        }
        self.generation += 1;
        if self.covered_stamp.len() < len {
            self.covered_stamp.resize(len, 0);
        }
        if self.selected_stamp.len() < n {
            self.selected_stamp.resize(n, 0);
        }
        self.generation
    }
}

/// Greedy Max-Coverage over the pool slice `range` with caller-owned
/// working state — the allocation-recycling entry point for algorithms
/// that select round after round (SSA, D-SSA, IMM, TIM).
///
/// Equivalent to [`crate::max_coverage_range`] (bit-identical seeds,
/// gains and coverage); the only difference is that the selection scratch
/// persists in `scratch` across calls.
pub fn max_coverage_with(
    rc: &RrCollection,
    k: usize,
    range: Range<u32>,
    scratch: &mut GreedyScratch,
) -> CoverageResult {
    CoverageView::build(rc, range).select(k, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_coverage, max_coverage_naive};
    use sns_diffusion::RrMeta;

    fn m() -> RrMeta {
        RrMeta { root: 0, edges_examined: 0 }
    }

    fn pool(sets: &[&[NodeId]], n: u32) -> RrCollection {
        let mut rc = RrCollection::new(n);
        for s in sets {
            rc.push(s, m());
        }
        rc
    }

    #[test]
    fn view_exposes_contiguous_member_slices() {
        let rc = pool(&[&[0, 1], &[1, 2], &[2], &[0, 3]], 4);
        let view = CoverageView::build(&rc, 0..4);
        assert_eq!(view.len(), 4);
        for slot in 0..4 {
            assert_eq!(view.members(slot), rc.set(slot));
        }
        assert!(view.memory_bytes() > 0);
    }

    #[test]
    fn view_rebases_nonzero_range_starts() {
        let rc = pool(&[&[0, 1], &[1, 2], &[2], &[0, 3]], 4);
        let view = CoverageView::build(&rc, 1..3);
        assert_eq!(view.len(), 2);
        assert_eq!(view.range(), 1..3);
        // slot 0 is pool id 1, slot 1 is pool id 2
        assert_eq!(view.members(0), &[1, 2]);
        assert_eq!(view.members(1), &[2]);
    }

    #[test]
    fn empty_range_view_selects_only_padding() {
        let rc = pool(&[&[0, 1], &[1]], 3);
        for start in 0..=2u32 {
            let view = CoverageView::build(&rc, start..start);
            assert!(view.is_empty());
            let r = view.select(2, &mut GreedyScratch::new());
            assert_eq!(r.covered, 0);
            assert_eq!(r.seeds.len(), 2);
            assert_eq!(r.marginal_gains, vec![0, 0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_range_panics() {
        let rc = pool(&[&[0]], 2);
        CoverageView::build(&rc, 0..2);
    }

    #[test]
    fn select_matches_naive_oracle() {
        let rc = pool(&[&[0, 1], &[0, 2], &[0, 3], &[4], &[4, 1]], 5);
        let view = CoverageView::build(&rc, 0..5);
        let mut scratch = GreedyScratch::new();
        for k in 1..=5 {
            let got = view.select(k, &mut scratch);
            let want = max_coverage_naive(&rc, k);
            assert_eq!(got.seeds, want.seeds, "k={k}");
            assert_eq!(got.covered, want.covered, "k={k}");
            assert_eq!(got.marginal_gains, want.marginal_gains, "k={k}");
        }
    }

    #[test]
    fn view_spans_sealed_and_pending_tiers() {
        // The per-seed queries go through the two-tier index; the sweep
        // goes through the arena copy — both must agree across a seal
        // boundary.
        let mut rc = pool(&[&[0, 1], &[0, 2]], 4);
        let _ = rc.seal();
        rc.push(&[0, 3], m());
        rc.push(&[3], m());
        assert!(rc.pending_sets() > 0);
        let r = crate::max_coverage_range(&rc, 2, 0..4);
        assert_eq!(r, max_coverage_naive(&rc, 2));
    }

    #[test]
    fn scratch_reuse_across_pools_and_ranges_is_clean() {
        // A big first run must leave no residue that corrupts later runs
        // on smaller pools (stale covered marks, oversized gain tables).
        let mut scratch = GreedyScratch::new();
        let big = pool(&[&[0, 1, 2], &[3, 4, 5], &[6, 7], &[0, 7]], 8);
        let first = max_coverage_with(&big, 3, 0..4, &mut scratch);
        assert_eq!(first.covered, 4);

        let small = pool(&[&[0], &[1], &[1, 2]], 3);
        for _ in 0..3 {
            let r = max_coverage_with(&small, 2, 0..3, &mut scratch);
            assert_eq!(r, max_coverage(&small, 2));
        }
        // set {1, 2}: gains tie at 1, the (gain, id) max-heap prefers id 2
        let sliced = max_coverage_with(&small, 1, 2..3, &mut scratch);
        assert_eq!(sliced.seeds, vec![2]);
        assert_eq!(sliced.covered, 1);
    }

    #[test]
    fn generation_wrap_resets_stamps() {
        let rc = pool(&[&[0, 1], &[1]], 3);
        let mut scratch = GreedyScratch::new();
        let before = max_coverage_with(&rc, 2, 0..2, &mut scratch);
        scratch.generation = u32::MAX;
        // Runs right at and after the wrap must still be correct.
        for _ in 0..3 {
            let r = max_coverage_with(&rc, 2, 0..2, &mut scratch);
            assert_eq!(r, before);
        }
        assert!(scratch.generation >= 2 && scratch.generation < 10);
    }
}
