//! Lock-free single-writer publication of sealed epoch sets — the
//! concurrency backbone of grow-while-serving.
//!
//! # Why a directory
//!
//! A sealed [`RrCollection`](crate::RrCollection) tier is immutable:
//! growth only ever *appends* a new epoch and re-seals. Readers therefore
//! never need to observe a pool mid-mutation — they need a consistent
//! **snapshot of the epoch set**, i.e. "the pool as of some sealed
//! prefix". [`EpochDirectory`] provides exactly that: a single writer
//! publishes fully-sealed pool generations, and any number of readers
//! *pin* a generation with lock-free atomic loads. A pinned generation is
//! an `Arc`, so it stays valid for as long as the reader holds it, no
//! matter how many newer generations are published meanwhile.
//!
//! # How it is lock-free (and `unsafe`-free)
//!
//! The directory is a hand-rolled minimal arc-swap built from `std`
//! primitives only:
//!
//! * an `AtomicU64` **generation counter** — the publish point;
//! * an append-only chain of **slot chunks** (geometrically growing, so
//!   locating generation `g` walks `O(log g)` links), each slot a
//!   `OnceLock<Weak<T>>` written exactly once by the writer;
//! * the **writer handle** retains the strong `Arc` of the *current*
//!   generation, so the latest slot always upgrades.
//!
//! A reader pins by loading the generation (`Acquire`), walking to its
//! slot, and upgrading the `Weak`. The upgrade can only fail for a
//! *superseded* generation whose last strong reference is gone — in
//! which case a newer generation exists and the retry loop observes it
//! on the next load. That retry is bounded by writer progress, never by
//! another reader: the algorithm is lock-free, and the hot path of a
//! steady-state pin is one atomic load, one chunk walk, and one
//! refcount increment. Reclamation is plain `Arc` semantics: when the
//! writer publishes generation `g+1` it drops its strong reference to
//! `g`, and `g`'s memory is freed the moment the last pinned reader
//! lets go. The only permanent residue is one `Weak` per generation
//! (~16 bytes) — the price of never blocking a reader.
//!
//! # Single-writer invariant
//!
//! [`DirectoryWriter`] is the unique publish capability: it is not
//! `Clone`, and [`DirectoryWriter::publish`] takes `&mut self`, so
//! exclusive ownership of the handle *is* the writer lock — no mutex
//! exists in this module at all. Higher layers (e.g. `sns-core`'s
//! `Grower`) serialize their writer state behind their own lock; the
//! directory itself never blocks anyone.
//!
//! Readers must only outlive the writer handle together with the whole
//! directory: dropping the `DirectoryWriter` drops the last
//! writer-retained strong reference, after which a generation survives
//! only through reader pins. (The `sns-core` engine owns both halves,
//! so this cannot be observed through its API.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Capacity of the first slot chunk; each subsequent chunk doubles, so
/// generation `g` is found in `O(log g)` link hops.
const FIRST_CHUNK: usize = 8;

/// One append-only block of generation slots. Chunks are created by the
/// writer and linked forward exactly once; they are never reclaimed
/// until the directory drops, so readers can traverse without any
/// lifetime ceremony.
#[derive(Debug)]
struct Chunk<T> {
    /// Generation number of `slots[0]`.
    base: u64,
    slots: Box<[OnceLock<Weak<T>>]>,
    next: OnceLock<Box<Chunk<T>>>,
}

impl<T> Chunk<T> {
    fn new(base: u64, capacity: usize) -> Self {
        Chunk {
            base,
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            next: OnceLock::new(),
        }
    }

    fn end(&self) -> u64 {
        self.base + self.slots.len() as u64
    }
}

/// The shared read front of a generation directory: readers pin
/// published values with lock-free atomic loads (see the module docs).
/// Create with [`EpochDirectory::new`], which also returns the unique
/// [`DirectoryWriter`].
///
/// The canonical instantiation is `EpochDirectory<RrCollection>` — the
/// epoch directory proper, publishing fully-sealed pool generations —
/// but the primitive is generic and `sns-core` reuses it for its
/// copy-on-write snapshot-cache map.
#[derive(Debug)]
pub struct EpochDirectory<T> {
    /// The latest published generation. Stored with `Release` by the
    /// writer after the slot is filled; loaded with `Acquire` by
    /// readers, which makes the slot (and everything inside the
    /// published value) visible.
    generation: AtomicU64,
    head: Chunk<T>,
}

impl<T> EpochDirectory<T> {
    /// Publishes `initial` as generation 0 and returns the shared read
    /// front plus the unique writer handle.
    pub fn new(initial: Arc<T>) -> (Arc<Self>, DirectoryWriter<T>) {
        let head = Chunk::new(0, FIRST_CHUNK);
        let _ = head.slots[0].set(Arc::downgrade(&initial));
        let dir = Arc::new(EpochDirectory { generation: AtomicU64::new(0), head });
        let writer = DirectoryWriter { directory: Arc::clone(&dir), current: initial };
        (dir, writer)
    }

    /// The latest published generation number. One atomic load.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Pins the latest published generation: `(generation, value)`. The
    /// returned `Arc` keeps that generation alive for as long as the
    /// caller holds it — later publishes never invalidate a pin.
    ///
    /// Lock-free: one `Acquire` load, an `O(log generation)` chunk walk
    /// and a `Weak::upgrade`. The upgrade only fails for a generation
    /// already superseded *and* fully released, so the retry loop is
    /// bounded by writer progress (see the module docs).
    pub fn pin(&self) -> (u64, Arc<T>) {
        loop {
            let generation = self.generation.load(Ordering::Acquire);
            if let Some(value) = self.pin_generation(generation) {
                return (generation, value);
            }
            std::hint::spin_loop();
        }
    }

    /// Pins a *specific* generation, if it is still alive: published,
    /// and either the latest or still held by some reader. Superseded
    /// generations with no remaining pins have been reclaimed and
    /// return `None`.
    pub fn pin_generation(&self, generation: u64) -> Option<Arc<T>> {
        self.slot(generation)?.get()?.upgrade()
    }

    /// The slot holding `generation`'s weak reference, if that chunk
    /// exists yet.
    fn slot(&self, generation: u64) -> Option<&OnceLock<Weak<T>>> {
        let mut chunk = &self.head;
        while generation >= chunk.end() {
            chunk = chunk.next.get()?;
        }
        chunk.slots.get((generation - chunk.base) as usize)
    }
}

/// The unique publish capability of an [`EpochDirectory`]. Not `Clone`;
/// [`DirectoryWriter::publish`] takes `&mut self` — exclusive ownership
/// of this handle is the single-writer invariant, enforced by the type
/// system instead of a lock.
#[derive(Debug)]
pub struct DirectoryWriter<T> {
    directory: Arc<EpochDirectory<T>>,
    /// Strong reference to the current generation: guarantees the
    /// latest slot always upgrades, and doubles as the writer's own
    /// zero-cost view of what it last published.
    current: Arc<T>,
}

impl<T> DirectoryWriter<T> {
    /// Publishes `value` as the next generation and returns its number.
    ///
    /// Ordering: the slot is filled *before* the generation counter's
    /// `Release` store, so a reader that observes the new number always
    /// finds the slot; the superseded generation's writer reference is
    /// dropped *after* the store, so a reader whose upgrade fails is
    /// guaranteed to observe the newer generation on retry.
    pub fn publish(&mut self, value: Arc<T>) -> u64 {
        let directory = &self.directory;
        let generation = directory.generation.load(Ordering::Relaxed) + 1;
        let slot = Self::ensure_slot(&directory.head, generation);
        let _ = slot.set(Arc::downgrade(&value));
        let superseded = std::mem::replace(&mut self.current, value);
        directory.generation.store(generation, Ordering::Release);
        drop(superseded);
        generation
    }

    /// The value this writer last published (the current generation),
    /// without touching the reader path.
    pub fn current(&self) -> &Arc<T> {
        &self.current
    }

    /// A clone of the shared read front, for handing to readers.
    pub fn directory(&self) -> Arc<EpochDirectory<T>> {
        Arc::clone(&self.directory)
    }

    /// Walks (extending the chunk chain as needed) to the slot for
    /// `generation`. Only the writer appends chunks, and `publish`
    /// requires `&mut self`, so the `OnceLock` set below never races
    /// another set — it exists to let readers traverse concurrently.
    fn ensure_slot(head: &Chunk<T>, generation: u64) -> &OnceLock<Weak<T>> {
        let mut chunk = head;
        while generation >= chunk.end() {
            if chunk.next.get().is_none() {
                let grown = Chunk::new(chunk.end(), chunk.slots.len() * 2);
                let _ = chunk.next.set(Box::new(grown));
            }
            // The chunk was just ensured; a `None` here is unreachable,
            // but the writer path must not panic on a broken invariant —
            // fall back to the head slot 0 (never reached in practice).
            match chunk.next.get() {
                Some(next) => chunk = next,
                None => break,
            }
        }
        chunk.slots.get((generation.saturating_sub(chunk.base)) as usize).unwrap_or(&chunk.slots[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn pin_returns_the_published_generation() {
        let (dir, mut writer) = EpochDirectory::new(Arc::new(10u64));
        assert_eq!(dir.generation(), 0);
        assert_eq!(dir.pin(), (0, Arc::new(10)));
        for v in 11..=40u64 {
            let generation = writer.publish(Arc::new(v));
            assert_eq!(generation, v - 10);
            let (g, value) = dir.pin();
            assert_eq!((g, *value), (generation, v));
        }
        assert_eq!(dir.generation(), 30);
        assert_eq!(**writer.current(), 40);
    }

    #[test]
    fn pins_survive_later_publishes_and_superseded_memory_is_reclaimed() {
        let (dir, mut writer) = EpochDirectory::new(Arc::new(0u64));
        let (g0, v0) = dir.pin();
        writer.publish(Arc::new(1));
        let (g1, v1) = dir.pin();
        writer.publish(Arc::new(2));
        // Both old pins still read their generation's value.
        assert_eq!((g0, *v0), (0, 0));
        assert_eq!((g1, *v1), (1, 1));
        // Still re-pinnable while a reader holds them...
        assert_eq!(dir.pin_generation(0).as_deref(), Some(&0));
        drop(v0);
        // ...but reclaimed (weak dead) once the last pin drops.
        assert!(dir.pin_generation(0).is_none(), "superseded unpinned generation must reclaim");
        assert_eq!(dir.pin_generation(1).as_deref(), Some(&1));
        assert_eq!(dir.pin_generation(2).as_deref(), Some(&2));
        // Unpublished generations simply do not resolve.
        assert!(dir.pin_generation(3).is_none());
        assert!(dir.pin_generation(1_000_000).is_none());
    }

    #[test]
    fn chunk_chain_grows_past_many_generations() {
        let (dir, mut writer) = EpochDirectory::new(Arc::new(0u64));
        for v in 1..=1000u64 {
            writer.publish(Arc::new(v));
        }
        assert_eq!(dir.pin(), (1000, Arc::new(1000)));
        // The latest is always pinned by the writer; a middle one is gone.
        assert!(dir.pin_generation(500).is_none());
        assert_eq!(dir.pin_generation(1000).as_deref(), Some(&1000));
    }

    #[test]
    fn concurrent_pins_always_observe_a_published_value() {
        // Readers hammer `pin` while the writer publishes 0..=N in
        // order. Every pin must return a (generation, value) pair that
        // was genuinely published — value == generation — and per-reader
        // observed generations must be monotone (the directory never
        // goes backwards).
        let (dir, mut writer) = EpochDirectory::new(Arc::new(0u64));
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let dir = Arc::clone(&dir);
                let done = &done;
                scope.spawn(move || {
                    let mut last = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let (generation, value) = dir.pin();
                        assert_eq!(*value, generation, "pin must be a published pair");
                        assert!(generation >= last, "generations must be monotone");
                        last = generation;
                    }
                });
            }
            for v in 1..=2000u64 {
                writer.publish(Arc::new(v));
            }
            done.store(true, Ordering::Relaxed);
        });
        assert_eq!(dir.pin(), (2000, Arc::new(2000)));
    }
}
