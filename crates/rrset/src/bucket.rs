//! Bucket-queue greedy Max-Coverage.
//!
//! A third implementation of Algorithm 2 with `O(1)` decrease-key:
//! nodes live in an array of buckets indexed by their exact current
//! marginal gain, and the selection cursor only ever moves downward
//! (gains are monotone under submodularity). Asymptotically
//! `O(Σ|R_j| + n + max_gain)` — compared by the `max_coverage` ablation
//! bench against the lazy heap, which pays `O(log n)` per (re-)push but
//! touches less memory.

use sns_graph::NodeId;

use crate::{CoverageResult, RrCollection};

/// Runs greedy max-coverage with a bucket priority queue.
///
/// Tie-breaking within a gain bucket is by insertion history rather than
/// node id, so on inputs with ties the seed *identity* may differ from
/// [`crate::max_coverage`]; the greedy guarantee and the exactness of
/// every selected gain are identical.
pub fn max_coverage_bucket(rc: &RrCollection, k: usize) -> CoverageResult {
    let n = rc.num_nodes();
    let k = k.min(n as usize);

    let mut gain: Vec<u64> = (0..n).map(|v| rc.sets_containing(v).len() as u64).collect();
    let max_gain = gain.iter().copied().max().unwrap_or(0) as usize;

    // buckets[g] holds the nodes with current gain g; pos[v] locates v
    // inside its bucket for O(1) swap-removal.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_gain + 1];
    let mut pos: Vec<u32> = vec![0; n as usize];
    for v in 0..n {
        let g = gain[v as usize] as usize;
        pos[v as usize] = crate::narrow::node_count(buckets[g].len());
        buckets[g].push(v);
    }

    let move_node =
        |buckets: &mut Vec<Vec<NodeId>>, pos: &mut Vec<u32>, v: NodeId, from: usize, to: usize| {
            let idx = pos[v as usize] as usize;
            buckets[from].swap_remove(idx);
            if idx < buckets[from].len() {
                // swap_remove relocated the former tail into idx
                let moved = buckets[from][idx];
                pos[moved as usize] = idx as u32;
            }
            pos[v as usize] = crate::narrow::node_count(buckets[to].len());
            buckets[to].push(v);
        };

    let mut covered_mark = vec![false; rc.len()];
    let mut selected = vec![false; n as usize];
    let mut seeds = Vec::with_capacity(k);
    let mut marginal_gains = Vec::with_capacity(k);
    let mut covered = 0u64;
    let mut cursor = max_gain;

    while seeds.len() < k {
        while cursor > 0 && buckets[cursor].is_empty() {
            cursor -= 1;
        }
        if cursor == 0 {
            break; // only zero-gain nodes remain
        }
        let v = *buckets[cursor].last().expect("cursor bucket is non-empty");
        buckets[cursor].pop();
        selected[v as usize] = true;
        seeds.push(v);
        marginal_gains.push(cursor as u64);
        covered += cursor as u64;
        debug_assert_eq!(gain[v as usize] as usize, cursor);
        gain[v as usize] = 0;

        for id in rc.sets_containing(v) {
            let slot = id as usize;
            if covered_mark[slot] {
                continue;
            }
            covered_mark[slot] = true;
            for &w in rc.set(slot) {
                if selected[w as usize] || w == v {
                    continue;
                }
                let old = gain[w as usize] as usize;
                debug_assert!(old > 0);
                gain[w as usize] -= 1;
                move_node(&mut buckets, &mut pos, w, old, old - 1);
            }
        }
    }

    // pad to k with zero-gain nodes, mirroring the other implementations
    let mut next = 0u32;
    while seeds.len() < k && next < n {
        if !selected[next as usize] {
            selected[next as usize] = true;
            seeds.push(next);
            marginal_gains.push(0);
        }
        next += 1;
    }

    CoverageResult { seeds, covered, marginal_gains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_coverage;
    use sns_diffusion::RrMeta;

    fn m() -> RrMeta {
        RrMeta { root: 0, edges_examined: 0 }
    }

    fn pool(sets: &[&[NodeId]], n: u32) -> RrCollection {
        let mut rc = RrCollection::new(n);
        for s in sets {
            rc.push(s, m());
        }
        rc
    }

    #[test]
    fn unique_gains_match_lazy_exactly() {
        // gains stay unique at every greedy step: 4 > 3 initially, and
        // after node 0 is taken node 1 keeps 2 > node 2's 1.
        let rc = pool(&[&[0], &[0], &[0], &[0, 1], &[1], &[1], &[2]], 4);
        let bucket = max_coverage_bucket(&rc, 3);
        let lazy = max_coverage(&rc, 3);
        assert_eq!(bucket.seeds, lazy.seeds);
        assert_eq!(bucket.covered, lazy.covered);
        assert_eq!(bucket.marginal_gains, vec![4, 2, 1]);
    }

    #[test]
    fn coverage_equals_direct_count_on_random_pools() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(5..40u32);
            let mut rc = RrCollection::new(n);
            for _ in 0..rng.gen_range(1..150usize) {
                let len = rng.gen_range(1..6usize);
                let mut s: Vec<NodeId> = (0..len).map(|_| rng.gen_range(0..n)).collect();
                s.sort_unstable();
                s.dedup();
                rc.push(&s, m());
            }
            let k = rng.gen_range(1..6usize);
            let r = max_coverage_bucket(&rc, k);
            assert_eq!(r.covered, rc.coverage_of(&r.seeds));
            // greedy marginal gains are exact and non-increasing
            assert!(r.marginal_gains.windows(2).all(|w| w[0] >= w[1]));
            // tie-breaking may differ from the heap, but total greedy
            // coverage of the two valid greedy runs agrees on gains:
            let lazy = max_coverage(&rc, k);
            assert_eq!(r.marginal_gains[0], lazy.marginal_gains[0], "first pick is the max");
        }
    }

    #[test]
    fn pads_and_clamps_like_the_others() {
        let rc = pool(&[&[1]], 4);
        let r = max_coverage_bucket(&rc, 3);
        assert_eq!(r.seeds.len(), 3);
        assert_eq!(r.seeds[0], 1);
        assert_eq!(r.covered, 1);
        let r = max_coverage_bucket(&rc, 10);
        assert_eq!(r.seeds.len(), 4);
    }

    #[test]
    fn empty_pool() {
        let rc = pool(&[], 3);
        let r = max_coverage_bucket(&rc, 2);
        assert_eq!(r.covered, 0);
        assert_eq!(r.seeds.len(), 2);
    }
}
