//! Frozen-pool gain snapshots and weighted-universe selection — the
//! pieces that turn the per-call [`CoverageView`] into a query-serving
//! subsystem.
//!
//! # Gain snapshots
//!
//! [`CoverageView::select`] recomputes the initial gain histogram (one
//! streaming pass over the slice's members, `O(entries)`) and rebuilds
//! the nonzero heap seed (`O(n)`) on every call — unavoidable for RIS
//! algorithms, whose pool grows between selections, but pure waste for a
//! *frozen* pool answering query after query. [`GainSnapshot::build`]
//! runs both passes **once** and freezes the results; the
//! [`CoverageView::select_from_snapshot`] fast path then starts each
//! query with two memcpys (gain table + heap seed) instead. Selection is
//! bit-identical to the histogram path: the frozen arrays are exactly
//! what the per-call initialization would have produced, and everything
//! downstream is shared code.
//!
//! A snapshot is immutable and detached from the pool borrow (it owns
//! plain arrays — including the slice's rebased CSR offsets, so
//! [`GainSnapshot::view`] rebuilds a [`CoverageView`] in `O(1)`), and a
//! server can hold `Arc<GainSnapshot>`s and fan queries out across
//! threads — `sns-core`'s `SeedQueryEngine` does.
//!
//! # Epoch-incremental maintenance
//!
//! Pool ids are append-only: a frozen slice's contents never change, so
//! growth never *invalidates* a snapshot — it only leaves new ids
//! uncovered. The incremental scheme freezes one snapshot per sealed
//! pool epoch (`RrCollection::epoch_boundaries`) and answers a query
//! spanning several epochs by **merging**: gain histograms sum, the
//! heap seed is rebuilt from the merged histogram, offsets concatenate
//! — either materialized once ([`GainSnapshot::merge`]) or at query
//! time ([`CoverageView::select_from_snapshots`]). Both are
//! bit-identical to a from-scratch snapshot of the union range, so a
//! pool extension costs one new epoch freeze instead of a wholesale
//! cache rebuild. See `docs/ARCHITECTURE.md` (repository root) for the
//! lifecycle diagram.
//!
//! # Weighted universes
//!
//! [`CoverageView::select_weighted`] answers targeted (TVM-style)
//! queries against an *unweighted* (uniform-root) pool: per-query node
//! weights `b(v)` turn into per-set weights `w_j = b(root of set j)`
//! (sets store their root first), and greedy maximizes the covered
//! weight mass `Σ_{j covered} w_j` instead of the covered count. Since
//! roots are uniform, `E[b(root)·1{S covers R}] = I_T(S)/n`, so
//! `n·(covered weight)/|R|` estimates the targeted influence — one
//! frozen pool serves every target group without resampling. (This is a
//! self-normalized reweighting of Lemma 1, not the paper's WRIS sampler:
//! precision concentrates where `b` does, so sparse target groups warrant
//! proportionally larger pools — see `docs/DERIVATIONS.md` §5.) The path
//! shares the constraint handling, stamps and tie-breaking of the
//! unweighted loop. One-off weight vectors pay a per-query gain pass;
//! *recurring* ones (a topic queried again and again) freeze it once in
//! a [`WeightedGainSnapshot`] and start from a memcpy like the
//! unweighted fast path.

use std::collections::BinaryHeap;
use std::ops::Range;

use sns_graph::NodeId;

use crate::index::CsrOffsets;
use crate::{CoverageView, GreedyScratch, RrCollection, SeedConstraints};

/// The frozen per-node gain state of one pool slice: exactly what
/// [`CoverageView::select`]'s initialization pass computes, sealed once
/// so repeated queries start from a memcpy (see the module docs).
///
/// Since PR 4 a snapshot also freezes the slice's rebased forward-CSR
/// offsets, so [`GainSnapshot::view`] reconstructs a [`CoverageView`] in
/// `O(1)` — a steady-state cache hit does zero `O(range_len)` rebase
/// work — and snapshots of *adjacent* slices (one per sealed pool epoch)
/// can be [`GainSnapshot::merge`]d without touching the pool arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GainSnapshot {
    range: Range<u32>,
    /// `gains[v]` = number of in-range sets containing node `v`.
    gains: Vec<u32>,
    /// `(gain, v)` for every node with nonzero gain, ascending `v` — the
    /// exact buffer the selection loop heapifies.
    heap_seed: Vec<(u32, NodeId)>,
    /// The slice's rebased forward-CSR offsets, exactly as
    /// [`CoverageView::build`] computes them.
    offsets: CsrOffsets,
}

impl GainSnapshot {
    /// Runs the histogram and heap-seed passes for `view`'s slice and
    /// freezes the result (gains, heap seed, and the view's rebased
    /// offsets).
    pub fn build(view: &CoverageView<'_>) -> Self {
        let n = view.num_nodes();
        let mut gains = vec![0u32; n as usize];
        for &v in view.raw_members() {
            gains[v as usize] += 1;
        }
        let heap_seed =
            (0..n).filter(|&v| gains[v as usize] > 0).map(|v| (gains[v as usize], v)).collect();
        GainSnapshot { range: view.range(), gains, heap_seed, offsets: view.offsets().clone() }
    }

    /// Merges snapshots of adjacent pool slices into the snapshot of
    /// their union: gain histograms sum element-wise, the heap seed is
    /// rebuilt from the merged histogram, and the offset arrays are
    /// stitched — all without reading the pool. `O(n·parts + range_len)`.
    /// The result is exactly what [`GainSnapshot::build`] over the union
    /// range would produce, so everything downstream stays bit-identical.
    ///
    /// This is how pool growth stays cheap for a serving cache: freeze
    /// one snapshot per sealed epoch, and answer a query spanning many
    /// epochs from their merge — extending the pool then freezes only the
    /// new epoch instead of invalidating every cached range.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, the parts do not tile a contiguous id
    /// range in order, or their node universes disagree.
    pub fn merge(parts: &[&GainSnapshot]) -> Self {
        let first = parts.first().expect("cannot merge zero snapshots");
        let n = first.gains.len();
        let mut pos = first.range.start;
        for part in parts {
            assert_eq!(part.range.start, pos, "snapshots must tile a contiguous id range");
            assert_eq!(part.gains.len(), n, "snapshots span different node universes");
            pos = part.range.end;
        }
        let range = first.range.start..pos;
        let mut gains = vec![0u32; n];
        for part in parts {
            for (g, &p) in gains.iter_mut().zip(&part.gains) {
                *g += p;
            }
        }
        let heap_seed = (0..n as u32)
            .filter(|&v| gains[v as usize] > 0)
            .map(|v| (gains[v as usize], v))
            .collect();
        let offsets = CsrOffsets::concat(&parts.iter().map(|p| &p.offsets).collect::<Vec<_>>());
        GainSnapshot { range, gains, heap_seed, offsets }
    }

    /// Reconstructs a [`CoverageView`] for this snapshot's slice in
    /// `O(1)`, lending the frozen offsets instead of rebasing — pair with
    /// [`CoverageView::select_from_snapshot`] for the zero-rebase query
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's range is out of bounds for `rc`. The
    /// caller must pass the pool the snapshot was built from (ranges are
    /// append-only, so growth never invalidates this).
    pub fn view<'a>(&'a self, rc: &'a RrCollection) -> CoverageView<'a> {
        CoverageView::with_frozen_offsets(rc, self.range.clone(), &self.offsets)
    }

    /// The pool id range this snapshot froze.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// The frozen per-node gains (length = the pool's node count).
    pub fn gains(&self) -> &[u32] {
        &self.gains
    }

    /// The frozen nonzero heap seed.
    pub(crate) fn heap_seed(&self) -> &[(u32, NodeId)] {
        &self.heap_seed
    }

    /// Bytes owned by the frozen arrays (counting capacities).
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.gains.capacity() * size_of::<u32>()
            + self.heap_seed.capacity() * size_of::<(u32, NodeId)>()) as u64
            + self.offsets.memory_bytes()
    }
}

/// A nonnegative finite `f64` gain with the total order weighted
/// selection needs for its max-heap. Construction is crate-internal and
/// every constructor site validates finiteness, so `total_cmp` is a
/// plain bit trick, never a NaN judgement call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightOrd(pub(crate) f64);

impl Eq for WeightOrd {}

impl PartialOrd for WeightOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WeightOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The frozen initial state of a *weighted* selection over one pool
/// slice under one fixed weight vector: the weighted gain table and heap
/// seed that [`CoverageView::select_weighted`] recomputes per call
/// (`O(entries)` streaming additions), plus the slice's rebased offsets.
///
/// Weighted gains depend on the query's weight vector, so a weighted
/// snapshot is only reusable while *both* the slice and the weights are
/// fixed — the repeated-topic (TVM) serving case. `sns-core`'s
/// `SeedQueryEngine` keys these by `(range, topic id)` and verifies the
/// weight vector by `Arc` identity. Floating-point sums are performed in
/// the same order as the per-call pass, so selection through a frozen
/// weighted snapshot is bit-identical to the fresh path.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGainSnapshot {
    range: Range<u32>,
    /// `wgains[v]` = Σ of `node_weights[root(j)]` over in-range sets `j`
    /// containing `v`.
    wgains: Vec<f64>,
    /// `(weight, v)` for every node with positive weighted gain,
    /// ascending `v` — the exact buffer the weighted loop heapifies.
    heap_seed: Vec<(WeightOrd, NodeId)>,
    /// The slice's rebased forward-CSR offsets (as [`GainSnapshot`]).
    offsets: CsrOffsets,
}

impl WeightedGainSnapshot {
    /// Runs the weighted gain-init pass for `view`'s slice under
    /// `node_weights` and freezes the result.
    ///
    /// # Panics
    ///
    /// Panics if `node_weights` is not one finite nonnegative weight per
    /// node.
    pub fn build(view: &CoverageView<'_>, node_weights: &[f64]) -> Self {
        let n = view.num_nodes();
        assert_eq!(node_weights.len(), n as usize, "need one weight per node");
        assert!(
            node_weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and nonnegative"
        );
        let mut wgains = vec![0.0f64; n as usize];
        accumulate_weighted_gains(view, node_weights, &mut wgains);
        let heap_seed = (0..n)
            .filter(|&v| wgains[v as usize] > 0.0)
            .map(|v| (WeightOrd(wgains[v as usize]), v))
            .collect();
        WeightedGainSnapshot {
            range: view.range(),
            wgains,
            heap_seed,
            offsets: view.offsets().clone(),
        }
    }

    /// Reconstructs a [`CoverageView`] for this snapshot's slice in
    /// `O(1)` from the frozen offsets (see [`GainSnapshot::view`]).
    pub fn view<'a>(&'a self, rc: &'a RrCollection) -> CoverageView<'a> {
        CoverageView::with_frozen_offsets(rc, self.range.clone(), &self.offsets)
    }

    /// The pool id range this snapshot froze.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// Bytes owned by the frozen arrays (counting capacities).
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.wgains.capacity() * size_of::<f64>()
            + self.heap_seed.capacity() * size_of::<(WeightOrd, NodeId)>()) as u64
            + self.offsets.memory_bytes()
    }
}

/// The weighted gain-init pass shared by the per-call path and
/// [`WeightedGainSnapshot::build`]: adds each in-range set's root weight
/// to all of its members, in slot order (so frozen and fresh float sums
/// are bit-identical).
fn accumulate_weighted_gains(view: &CoverageView<'_>, node_weights: &[f64], wgains: &mut [f64]) {
    for slot in 0..view.len() {
        let members = view.members(slot);
        // Sets store their root first; an empty set has no root and
        // carries no weight.
        let Some(&root) = members.first() else { continue };
        let w = node_weights[root as usize];
        if w == 0.0 {
            continue;
        }
        for &v in members {
            wgains[v as usize] += w;
        }
    }
}

/// Result of a weighted greedy selection
/// ([`CoverageView::select_weighted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCoverageResult {
    /// Selected seed nodes, in selection order.
    pub seeds: Vec<NodeId>,
    /// Total weight mass of the covered in-range sets.
    pub covered_weight: f64,
    /// Marginal weight gain of each seed at its selection time.
    pub marginal_gains: Vec<f64>,
}

impl CoverageView<'_> {
    /// Greedy Max-Coverage with per-set weights `w_j = node_weights[root
    /// of set j]` — the weighted-universe (targeted viral marketing)
    /// query path; see the module docs for the estimator it backs.
    ///
    /// Deterministic: ties break on the larger node id, exactly like the
    /// unweighted loop. Gains only decrease (weights are validated
    /// nonnegative), so the lazy-heap invariant carries over.
    ///
    /// # Panics
    ///
    /// Panics if `node_weights` is not one finite nonnegative weight per
    /// node, or if more than `k` seeds are forced.
    pub fn select_weighted(
        &self,
        k: usize,
        node_weights: &[f64],
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> WeightedCoverageResult {
        self.select_weighted_inner(k, node_weights, constraints, scratch, None)
    }

    /// [`CoverageView::select_weighted`] with the per-call weighted
    /// gain-init pass replaced by a memcpy of `snapshot`'s frozen table
    /// and heap seed — the repeated-topic fast path. `node_weights` must
    /// be the same weights the snapshot was built with (the decremental
    /// updates still consult them); the engine layer enforces this via
    /// topic keying. Bit-identical to [`CoverageView::select_weighted`].
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` was built for a different pool slice, if
    /// `node_weights` is malformed, or if more than `k` seeds are forced.
    pub fn select_weighted_from_snapshot(
        &self,
        snapshot: &WeightedGainSnapshot,
        k: usize,
        node_weights: &[f64],
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> WeightedCoverageResult {
        self.select_weighted_inner(k, node_weights, constraints, scratch, Some(snapshot))
    }

    fn select_weighted_inner(
        &self,
        k: usize,
        node_weights: &[f64],
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
        frozen: Option<&WeightedGainSnapshot>,
    ) -> WeightedCoverageResult {
        let n = self.num_nodes();
        let k = k.min(n as usize);
        assert_eq!(node_weights.len(), n as usize, "need one weight per node");
        assert!(
            node_weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and nonnegative"
        );
        assert!(
            constraints.forced.len() <= k,
            "{} forced seeds exceed the budget k = {k}",
            constraints.forced.len()
        );
        let generation = scratch.begin_run(n as usize, self.len());

        let mut heap_buf = std::mem::take(&mut scratch.wheap_buf);
        heap_buf.clear();
        scratch.wgain.clear();
        match frozen {
            Some(snapshot) => {
                // Frozen-topic fast path: gains and heap seed are memcpys.
                assert_eq!(
                    snapshot.range(),
                    self.range(),
                    "weighted gain snapshot was built for a different pool slice"
                );
                scratch.wgain.extend_from_slice(&snapshot.wgains);
                heap_buf.extend_from_slice(&snapshot.heap_seed);
            }
            None => {
                // Weighted gain init: one streaming pass like the
                // unweighted histogram, adding each set's weight to all
                // of its members.
                scratch.wgain.resize(n as usize, 0.0);
                accumulate_weighted_gains(self, node_weights, &mut scratch.wgain);
                heap_buf.extend(
                    (0..n)
                        .filter(|&v| scratch.wgain[v as usize] > 0.0)
                        .map(|v| (WeightOrd(scratch.wgain[v as usize]), v)),
                );
            }
        }
        let mut heap: BinaryHeap<(WeightOrd, NodeId)> = BinaryHeap::from(heap_buf);

        let mut seeds = Vec::with_capacity(k);
        let mut marginal_gains = Vec::with_capacity(k);
        let mut covered_weight = 0.0f64;

        for &v in constraints.excluded {
            scratch.selected_stamp[v as usize] = generation;
        }
        for &v in constraints.forced {
            if scratch.selected_stamp[v as usize] == generation {
                continue;
            }
            scratch.selected_stamp[v as usize] = generation;
            let g = scratch.wgain[v as usize];
            seeds.push(v);
            marginal_gains.push(g);
            covered_weight += g;
            if g > 0.0 {
                self.cover_sets_weighted(v, generation, node_weights, scratch);
            }
        }

        while seeds.len() < k {
            let Some((WeightOrd(g), v)) = heap.pop() else { break };
            if scratch.selected_stamp[v as usize] == generation {
                continue;
            }
            let current = scratch.wgain[v as usize];
            if g > current {
                // Stale entry: re-key. Decrements of nonnegative weights
                // can only lower a gain, so the max-heap stays sound.
                if current > 0.0 {
                    heap.push((WeightOrd(current), v));
                }
                continue;
            }
            if current <= 0.0 {
                break; // only weightless coverage remains
            }
            scratch.selected_stamp[v as usize] = generation;
            seeds.push(v);
            marginal_gains.push(current);
            covered_weight += current;
            self.cover_sets_weighted(v, generation, node_weights, scratch);
        }

        // Pad to k with arbitrary unselected nodes, weight gain 0 —
        // mirrors the unweighted padding contract.
        let mut next = 0u32;
        while seeds.len() < k && next < n {
            if scratch.selected_stamp[next as usize] != generation {
                scratch.selected_stamp[next as usize] = generation;
                seeds.push(next);
                marginal_gains.push(0.0);
            }
            next += 1;
        }

        scratch.wheap_buf = heap.into_vec();
        WeightedCoverageResult { seeds, covered_weight, marginal_gains }
    }

    /// Weighted twin of the decremental-update sweep: marks `v`'s
    /// in-range sets covered and subtracts each set's weight from its
    /// members' weighted gains.
    fn cover_sets_weighted(
        &self,
        v: NodeId,
        generation: u32,
        node_weights: &[f64],
        scratch: &mut GreedyScratch,
    ) {
        let range = self.range();
        for id in self.pool().sets_containing_in(v, range.clone()) {
            let slot = (id - range.start) as usize;
            if scratch.covered_stamp[slot] == generation {
                continue;
            }
            scratch.covered_stamp[slot] = generation;
            let members = self.members(slot);
            let Some(&root) = members.first() else { continue };
            let w = node_weights[root as usize];
            if w == 0.0 {
                continue;
            }
            for &u in members {
                scratch.wgain[u as usize] -= w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_coverage_range, max_coverage_with, RrCollection};
    use sns_diffusion::RrMeta;

    fn m(root: NodeId) -> RrMeta {
        RrMeta { root, edges_examined: 0 }
    }

    /// Pool whose sets put their root first, as the samplers do.
    fn pool(sets: &[&[NodeId]], n: u32) -> RrCollection {
        let mut rc = RrCollection::new(n);
        for s in sets {
            rc.push(s, m(s.first().copied().unwrap_or(0)));
        }
        rc
    }

    fn random_pool(seed: u64, n: u32, sets: usize) -> RrCollection {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rc = RrCollection::new(n);
        for _ in 0..sets {
            let len = rng.gen_range(1..6usize);
            let root = rng.gen_range(0..n);
            let mut s = vec![root];
            for _ in 1..len {
                let v = rng.gen_range(0..n);
                if !s.contains(&v) {
                    s.push(v);
                }
            }
            rc.push(&s, m(root));
        }
        rc
    }

    #[test]
    fn snapshot_select_is_bit_identical_to_histogram_select() {
        let mut scratch = GreedyScratch::new();
        for seed in 0..10u64 {
            let rc = random_pool(seed, 30, 150);
            let total = rc.len() as u32;
            for range in [0..total, 0..total / 2, total / 4..total] {
                let view = CoverageView::build(&rc, range.clone());
                let snap = GainSnapshot::build(&view);
                assert_eq!(snap.range(), range);
                for k in [1usize, 3, 7] {
                    let frozen = view.select_from_snapshot(&snap, k, &mut scratch);
                    let fresh = view.select(k, &mut scratch);
                    assert_eq!(frozen, fresh, "seed {seed} range {range:?} k {k}");
                }
            }
        }
    }

    #[test]
    fn snapshot_survives_repeated_queries() {
        let rc = random_pool(3, 20, 100);
        let view = CoverageView::build(&rc, 0..100);
        let snap = GainSnapshot::build(&view);
        let mut scratch = GreedyScratch::new();
        let first = view.select_from_snapshot(&snap, 5, &mut scratch);
        for _ in 0..5 {
            assert_eq!(view.select_from_snapshot(&snap, 5, &mut scratch), first);
        }
        assert_eq!(first, max_coverage_range(&rc, 5, 0..100));
        assert!(snap.memory_bytes() > 0);
    }

    /// Acceptance property: seeds selected through epoch-merged
    /// snapshots are bit-identical to direct `max_coverage` on the same
    /// pool state, across several epoch layouts (including unaligned
    /// sub-ranges), both via a materialized [`GainSnapshot::merge`] and
    /// via the query-time [`CoverageView::select_from_snapshots`] path.
    #[test]
    fn epoch_merged_selection_is_bit_identical_across_layouts() {
        let mut scratch = GreedyScratch::new();
        for seed in 0..6u64 {
            let rc = random_pool(seed, 30, 160);
            // ≥3 epoch layouts: balanced, doubling-schedule-like, many tiny
            let layouts: [&[u32]; 4] =
                [&[40, 100, 160], &[20, 40, 80, 160], &[10, 20, 30, 60, 100, 160], &[160]];
            for (start, bounds) in layouts.iter().enumerate().map(|(i, b)| ((i as u32) * 7, *b)) {
                let mut parts = Vec::new();
                let mut lo = start;
                for &hi in bounds {
                    if hi <= lo {
                        continue;
                    }
                    parts.push(GainSnapshot::build(&CoverageView::build(&rc, lo..hi)));
                    lo = hi;
                }
                let range = start..lo;
                let refs: Vec<&GainSnapshot> = parts.iter().collect();
                let merged = GainSnapshot::merge(&refs);
                assert_eq!(merged.range(), range);
                // the merge must reproduce the from-scratch snapshot
                // exactly — gains, heap seed, and offsets
                let direct = GainSnapshot::build(&CoverageView::build(&rc, range.clone()));
                assert_eq!(merged, direct, "seed {seed} range {range:?}");
                let view = merged.view(&rc);
                for k in [1usize, 4, 9] {
                    let want = max_coverage_range(&rc, k, range.clone());
                    let via_merged = view.select_from_snapshot(&merged, k, &mut scratch);
                    assert_eq!(via_merged, want, "materialized merge, seed {seed} k {k}");
                    let at_query_time = view.select_from_snapshots(
                        &refs,
                        k,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(at_query_time, want, "query-time merge, seed {seed} k {k}");
                }
            }
        }
    }

    #[test]
    fn frozen_offsets_view_equals_rebuilt_view() {
        let rc = random_pool(11, 25, 120);
        let built = CoverageView::build(&rc, 15..95);
        let snap = GainSnapshot::build(&built);
        let frozen = snap.view(&rc);
        assert_eq!(frozen.range(), built.range());
        assert_eq!(frozen.len(), built.len());
        for slot in 0..built.len() {
            assert_eq!(frozen.members(slot), built.members(slot));
        }
        let mut scratch = GreedyScratch::new();
        assert_eq!(frozen.select(6, &mut scratch), built.select(6, &mut scratch));
    }

    #[test]
    #[should_panic(expected = "tile a contiguous id range")]
    fn merge_rejects_gapped_parts() {
        let rc = random_pool(2, 10, 60);
        let a = GainSnapshot::build(&CoverageView::build(&rc, 0..20));
        let b = GainSnapshot::build(&CoverageView::build(&rc, 30..60));
        GainSnapshot::merge(&[&a, &b]);
    }

    #[test]
    fn weighted_snapshot_matches_fresh_weighted_selection() {
        use rand::{Rng, SeedableRng};
        let mut scratch = GreedyScratch::new();
        for seed in 0..5u64 {
            let rc = random_pool(200 + seed, 20, 90);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let w: Vec<f64> = (0..20).map(|_| f64::from(rng.gen_range(0..5u32)) / 2.0).collect();
            for range in [0..90u32, 10..70] {
                let view = CoverageView::build(&rc, range.clone());
                let snap = WeightedGainSnapshot::build(&view, &w);
                assert_eq!(snap.range(), range);
                assert!(snap.memory_bytes() > 0);
                let frozen_view = snap.view(&rc);
                for k in [1usize, 4] {
                    let fresh = view.select_weighted(k, &w, &SeedConstraints::none(), &mut scratch);
                    let frozen = frozen_view.select_weighted_from_snapshot(
                        &snap,
                        k,
                        &w,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(frozen, fresh, "seed {seed} range {range:?} k {k}");
                    // repeated frozen queries stay stable
                    let again = frozen_view.select_weighted_from_snapshot(
                        &snap,
                        k,
                        &w,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(again, fresh);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "different pool slice")]
    fn weighted_snapshot_range_mismatch_panics() {
        let rc = random_pool(1, 10, 40);
        let w = vec![1.0f64; 10];
        let snap = WeightedGainSnapshot::build(&CoverageView::build(&rc, 0..20), &w);
        let view = CoverageView::build(&rc, 0..40);
        view.select_weighted_from_snapshot(
            &snap,
            2,
            &w,
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
    }

    #[test]
    #[should_panic(expected = "different pool slice")]
    fn range_mismatch_panics() {
        let rc = random_pool(1, 10, 40);
        let snap = GainSnapshot::build(&CoverageView::build(&rc, 0..20));
        let view = CoverageView::build(&rc, 0..40);
        view.select_from_snapshot(&snap, 2, &mut GreedyScratch::new());
    }

    #[test]
    fn excluded_seeds_are_never_selected_nor_padded() {
        // Node 0 dominates; excluding it promotes node 1 (sets 0 and 3).
        let rc = pool(&[&[0, 1], &[0, 2], &[0, 3], &[4, 1]], 5);
        let view = CoverageView::build(&rc, 0..4);
        let mut scratch = GreedyScratch::new();
        let cons = SeedConstraints { forced: &[], excluded: &[0] };
        let r = view.select_constrained(5, &cons, &mut scratch);
        assert!(!r.seeds.contains(&0), "excluded node selected: {:?}", r.seeds);
        assert_eq!(r.seeds.len(), 4, "padding must skip the excluded node");
        assert_eq!(r.seeds[0], 1, "with 0 excluded, node 1 covers most");
        assert_eq!(r.marginal_gains[0], 2);

        // Same answer through the frozen path.
        let snap = GainSnapshot::build(&view);
        let frozen = view.select_from_snapshot_constrained(&snap, 5, &cons, &mut scratch);
        assert_eq!(frozen, r);
    }

    #[test]
    fn forced_seeds_lead_and_their_coverage_is_accounted() {
        let rc = pool(&[&[0, 1], &[0, 2], &[3], &[3, 1]], 4);
        let view = CoverageView::build(&rc, 0..4);
        let mut scratch = GreedyScratch::new();
        let cons = SeedConstraints { forced: &[1], excluded: &[] };
        let r = view.select_constrained(2, &cons, &mut scratch);
        // forced first: node 1 covers sets {0, 3} (gain 2); best
        // remainder is node 0 with residual gain 1 (set 1).
        assert_eq!(r.seeds[0], 1);
        assert_eq!(r.marginal_gains[0], 2);
        assert_eq!(r.covered, 3);
        // duplicate forced seeds are selected once
        let dup = SeedConstraints { forced: &[1, 1], excluded: &[] };
        let r2 = view.select_constrained(2, &dup, &mut scratch);
        assert_eq!(r2.seeds, r.seeds);
    }

    #[test]
    fn empty_constraints_equal_plain_select() {
        let rc = random_pool(7, 25, 120);
        let view = CoverageView::build(&rc, 0..120);
        let mut scratch = GreedyScratch::new();
        let plain = view.select(6, &mut scratch);
        let constrained = view.select_constrained(6, &SeedConstraints::none(), &mut scratch);
        assert_eq!(plain, constrained);
        assert_eq!(plain, max_coverage_with(&rc, 6, 0..120, &mut scratch));
    }

    /// Textbook rescan oracle for the weighted greedy.
    fn weighted_oracle(
        rc: &RrCollection,
        k: usize,
        w: &[f64],
        range: std::ops::Range<u32>,
    ) -> (Vec<NodeId>, f64) {
        let n = rc.num_nodes();
        let set_w: Vec<f64> = (range.start..range.end)
            .map(|id| rc.set(id as usize).first().map_or(0.0, |&r| w[r as usize]))
            .collect();
        let mut covered = vec![false; set_w.len()];
        let mut selected = vec![false; n as usize];
        let mut seeds = Vec::new();
        let mut total = 0.0;
        for _ in 0..k.min(n as usize) {
            let mut best: Option<(f64, NodeId)> = None;
            for v in 0..n {
                if selected[v as usize] {
                    continue;
                }
                let g: f64 = rc
                    .sets_containing_in(v, range.clone())
                    .map(|id| {
                        let slot = (id - range.start) as usize;
                        if covered[slot] {
                            0.0
                        } else {
                            set_w[slot]
                        }
                    })
                    .sum();
                if g <= 0.0 {
                    continue;
                }
                // same (gain, id) max tie-break as the heap
                if best.is_none_or(|(bg, bv)| (g, v) > (bg, bv)) {
                    best = Some((g, v));
                }
            }
            let Some((g, v)) = best else { break };
            selected[v as usize] = true;
            seeds.push(v);
            total += g;
            for id in rc.sets_containing_in(v, range.clone()) {
                covered[(id - range.start) as usize] = true;
            }
        }
        let mut next = 0u32;
        while seeds.len() < k.min(n as usize) && next < n {
            if !selected[next as usize] {
                selected[next as usize] = true;
                seeds.push(next);
            }
            next += 1;
        }
        (seeds, total)
    }

    #[test]
    fn weighted_select_matches_rescan_oracle() {
        use rand::{Rng, SeedableRng};
        let mut scratch = GreedyScratch::new();
        for seed in 0..8u64 {
            let rc = random_pool(100 + seed, 20, 90);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // power-of-two weights make the float sums exact, so the
            // oracle (which re-adds from scratch) agrees to the bit
            let w: Vec<f64> =
                (0..20).map(|_| [0.0, 0.25, 0.5, 1.0, 2.0][rng.gen_range(0..5usize)]).collect();
            for range in [0..90u32, 10..70] {
                let view = CoverageView::build(&rc, range.clone());
                for k in [1usize, 4] {
                    let got = view.select_weighted(k, &w, &SeedConstraints::none(), &mut scratch);
                    let (want_seeds, want_total) = weighted_oracle(&rc, k, &w, range.clone());
                    assert_eq!(got.seeds, want_seeds, "seed {seed} range {range:?} k {k}");
                    assert!((got.covered_weight - want_total).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn uniform_weights_reduce_to_unweighted_selection() {
        let rc = random_pool(42, 30, 200);
        let w = vec![1.0f64; 30];
        let mut scratch = GreedyScratch::new();
        let view = CoverageView::build(&rc, 0..200);
        let weighted = view.select_weighted(5, &w, &SeedConstraints::none(), &mut scratch);
        let plain = view.select(5, &mut scratch);
        assert_eq!(weighted.seeds, plain.seeds);
        assert!((weighted.covered_weight - plain.covered as f64).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_roots_contribute_nothing() {
        // Sets rooted at 0 carry weight 0: only the set rooted at 3
        // counts, so its members win.
        let rc = pool(&[&[0, 1], &[0, 1, 2], &[3, 4]], 5);
        let mut w = vec![1.0f64; 5];
        w[0] = 0.0;
        let view = CoverageView::build(&rc, 0..3);
        let r = view.select_weighted(1, &w, &SeedConstraints::none(), &mut GreedyScratch::new());
        assert_eq!(r.seeds, vec![4], "ties on weight 1.0 break to the larger id");
        assert!((r.covered_weight - 1.0).abs() < 1e-12);
    }
}
