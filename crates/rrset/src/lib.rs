//! RR-set pool and max-coverage machinery for the Stop-and-Stare library.
//!
//! Every RIS algorithm works on a growing pool `R` of Reverse Reachable
//! sets and repeatedly needs two operations:
//!
//! * **Max-Coverage** (Algorithm 2 of the paper): pick `k` nodes covering
//!   the most RR sets — [`max_coverage`] implements the standard greedy
//!   with a lazy priority queue (gains are submodular, so stale heap
//!   entries are safe), running on a selection-time [`CoverageView`]: a
//!   sealed CSR-transposed snapshot of the queried pool slice that turns
//!   decremental gain updates into contiguous slice sweeps with a
//!   generation-stamped covered bitset ([`GreedyScratch`], reusable
//!   across rounds via [`max_coverage_with`]). [`max_coverage_naive`] is
//!   the textbook rescan version used for cross-checks and ablation
//!   benches.
//! * **Coverage queries**: `Cov_R(S)` for the stopping conditions —
//!   [`RrCollection::coverage_of`].
//!
//! [`RrCollection`] stores sets in a flat arena with a **two-tier**
//! inverted node→set-id index — a sealed flat-CSR tier rebuilt by a
//! parallel counting sort at epoch compactions, plus a small pending
//! chain tier for fresh appends (see [`RrCollection`]'s docs). It
//! supports deterministic parallel growth and accounts its exact byte
//! footprint (the quantity Figures 6–7 of the paper track).
//!
//! D-SSA splits its sample stream into halves (`R_t`, `R^c_t`); both
//! [`max_coverage_range`] and [`RrCollection::coverage_of_range`] take a
//! set-id range so the halves can live in one pool without copying.

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

mod bucket;
mod budgeted;
mod collection;
mod coverage;
pub mod directory;
mod greedy;
mod index;
pub mod narrow;
mod snapshot;
pub mod store;

pub use bucket::max_coverage_bucket;
pub use budgeted::{BudgetedCoverageResult, NodeCosts};
pub use collection::{RrCollection, SealOutcome};
pub use coverage::{max_coverage_with, CoverageView, GreedyScratch, SeedConstraints};
pub use directory::{DirectoryWriter, EpochDirectory};
pub use greedy::{
    max_coverage, max_coverage_naive, max_coverage_pre_refactor, max_coverage_range, CoverageResult,
};
pub use index::SetIds;
pub use snapshot::{GainSnapshot, WeightedCoverageResult, WeightedGainSnapshot};
pub use store::{PoolStore, Recovery, SaveStats, StoreError, StoreFingerprint};
