//! Sanctioned checked narrowing — the one place `usize`/`u64` values may
//! become `u32`.
//!
//! The pool's id domain is `u32` by representation: set ids, node ids,
//! and CSR offsets in the narrow tier are all 32-bit, so every count
//! that reaches these helpers is bounded by `u32::MAX` *by construction*
//! (a pool cannot hold a set it cannot id). The workspace linter
//! (`sns-lint`, rule `casts/lossy`) bans raw narrowing `as` casts
//! everywhere else; code that needs one routes through here, where the
//! bound is stated once and checked in debug builds, or through the
//! fallible [`try_u32`] when the bound is *not* structural and failure
//! must surface as a typed error.

/// The pool length as a set-id bound. Saturates (after a debug assert)
/// instead of truncating: a saturated bound keeps every real id
/// addressable, whereas silent truncation would drop high sets from
/// range queries.
#[inline]
pub fn set_count(len: usize) -> u32 {
    debug_assert!(len <= u32::MAX as usize, "pool of {len} sets exceeds the u32 id domain");
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// A node or seed count as a `u32`. Node ids are `u32` by representation
/// (`sns_graph::NodeId`), so any count derived from them fits; saturates
/// after a debug assert, like [`set_count`].
#[inline]
pub fn node_count(len: usize) -> u32 {
    debug_assert!(len <= u32::MAX as usize, "node count {len} exceeds the u32 id domain");
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// A small structural count (epochs, manifest strings, metadata pairs)
/// as `u32`. These are all hard-capped by the store's corruption guards
/// (`MAX_EPOCHS`, `MAX_STRING`, `MAX_META`) far inside the `u32` domain;
/// saturates after a debug assert, like [`set_count`].
#[inline]
pub fn small_count(len: usize) -> u32 {
    debug_assert!(len <= u32::MAX as usize, "count {len} exceeds the u32 domain");
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// A pending-tier entry index as `u32`. Entry ids reserve `u32::MAX` as
/// the chain terminator sentinel; saturating there trips the caller's
/// exhaustion assert instead of silently aliasing a live entry.
#[inline]
pub fn entry_count(len: usize) -> u32 {
    debug_assert!(len <= u32::MAX as usize, "entry count {len} exceeds the u32 id domain");
    u32::try_from(len).unwrap_or(u32::MAX)
}

/// Fallible narrowing for values with no structural bound (e.g. lengths
/// read from a persisted file before validation). `None` means the value
/// does not fit — callers turn that into their own typed error.
#[inline]
pub fn try_u32(v: u64) -> Option<u32> {
    u32::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_domain_values_round_trip() {
        assert_eq!(set_count(0), 0);
        assert_eq!(set_count(123_456), 123_456);
        assert_eq!(node_count(u32::MAX as usize), u32::MAX);
        assert_eq!(try_u32(7), Some(7));
    }

    #[test]
    fn try_u32_rejects_out_of_domain() {
        assert_eq!(try_u32(u64::from(u32::MAX) + 1), None);
        assert_eq!(try_u32(u64::MAX), None);
    }
}
