//! Budgeted (cost-aware) greedy Max-Coverage — the CTVM/BCT workload
//! class over a frozen pool.
//!
//! The paper's Algorithm 2 fixes a *cardinality* `k`; the
//! production-shaped variants (TipTop, arXiv:1701.08462; cost-aware
//! viral marketing, arXiv:1910.04134) attach a cost `c(v) > 0` to every
//! node and replace `|S| ≤ k` with a knapsack constraint
//! `Σ_{v∈S} c(v) ≤ B`. This module adds that selection mode to
//! [`CoverageView`] without touching the pool, snapshots, or the
//! unweighted loop:
//!
//! * **Ratio greedy.** Nodes are picked by cost-effectiveness — marginal
//!   gain divided by cost — under the same lazy max-heap discipline as
//!   the plain loop (gains only decrease and costs are fixed, so ratios
//!   only decrease and stale heap entries stay safe). A node whose cost
//!   exceeds the *remaining* budget is retired permanently: budgets only
//!   shrink, so it can never become affordable again.
//! * **The `max(greedy, best single)` guarantee.** Ratio greedy alone
//!   has an unbounded gap (a cheap low-gain node can lock out one huge
//!   affordable node); returning the better of the greedy set and the
//!   best single affordable node restores the classical
//!   `1 − 1/√e ≈ 0.3935` factor for budgeted maximum coverage (see
//!   `docs/DERIVATIONS.md` §6 and arXiv:1512.04180).
//! * **Determinism.** Ties break on the larger node id exactly like the
//!   unweighted heap, selection never consults wall clocks or hash
//!   order, and with [`NodeCosts::Uniform`] and `B = k` the pop sequence
//!   is order-isomorphic to the plain `(gain, id)` heap — seeds, covered
//!   counts and marginal gains degenerate *bit-identically* to
//!   [`CoverageView::select`] (a `u32` gain converts to `f64` exactly,
//!   and division by 1 preserves the order and the padding walk).
//!
//! Costs are per-query data like the weighted path's node weights: a
//! frozen [`GainSnapshot`] is cost-agnostic, so one snapshot serves
//! every cost vector and budget — the budgeted fast path starts from the
//! same memcpy as the plain one.

use std::collections::BinaryHeap;
use std::sync::Arc;

use sns_graph::NodeId;

use crate::snapshot::WeightOrd;
use crate::{CoverageView, GainSnapshot, GreedyScratch, SeedConstraints};

/// Per-node selection costs for a budgeted query.
///
/// `Uniform` charges every node `1.0`, so a budget `B = k` degenerates
/// to the cardinality constraint. `PerNode` shares an `Arc` so cloning a
/// query for another thread copies a pointer, and equality is *identity*
/// (`Arc::ptr_eq`), mirroring how the query engine keys topic weight
/// vectors.
#[derive(Debug, Clone, Default)]
pub enum NodeCosts {
    /// Every node costs `1.0` — budget = seed-count budget.
    #[default]
    Uniform,
    /// `costs[v]` is the cost of selecting node `v`; must hold one
    /// finite, strictly positive entry per node of the pool's universe.
    PerNode(Arc<[f64]>),
}

impl NodeCosts {
    /// Wraps a per-node cost vector.
    pub fn per_node(costs: Arc<[f64]>) -> Self {
        NodeCosts::PerNode(costs)
    }

    /// The cost of selecting node `v`.
    #[inline]
    pub fn cost(&self, v: NodeId) -> f64 {
        match self {
            NodeCosts::Uniform => 1.0,
            NodeCosts::PerNode(c) => c[v as usize],
        }
    }

    /// Identity comparison: `Uniform == Uniform`, per-node vectors by
    /// `Arc::ptr_eq` — the same rule the engine uses for topic weights.
    pub fn same_costs(&self, other: &NodeCosts) -> bool {
        match (self, other) {
            (NodeCosts::Uniform, NodeCosts::Uniform) => true,
            (NodeCosts::PerNode(a), NodeCosts::PerNode(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Validates the vector against a pool of `n` nodes and returns the
    /// cheapest cost (the selection loop's stopping threshold).
    ///
    /// # Panics
    ///
    /// Panics if a per-node vector is not one finite, strictly positive
    /// cost per node.
    fn validated_min(&self, n: u32) -> f64 {
        match self {
            NodeCosts::Uniform => 1.0,
            NodeCosts::PerNode(c) => {
                assert_eq!(c.len(), n as usize, "need one cost per node");
                let mut min = f64::INFINITY;
                for &x in c.iter() {
                    assert!(x.is_finite() && x > 0.0, "node costs must be finite and positive");
                    min = min.min(x);
                }
                min
            }
        }
    }
}

/// Result of a budgeted greedy selection
/// ([`CoverageView::select_budgeted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedCoverageResult {
    /// Selected seed nodes, in selection order.
    pub seeds: Vec<NodeId>,
    /// Number of distinct in-range sets the seeds cover.
    pub covered: u64,
    /// Marginal coverage of each seed at its selection time (`0` for
    /// budget-filling padding seeds).
    pub marginal_gains: Vec<u64>,
    /// Total cost charged against the budget.
    pub spent: f64,
    /// Whether the best-single-affordable-node arm of the
    /// `max(greedy, best single)` guarantee beat the ratio-greedy set
    /// (in which case `seeds` holds exactly that one node).
    pub single_fallback: bool,
}

impl CoverageView<'_> {
    /// Budgeted greedy Max-Coverage: picks seeds by cost-effectiveness
    /// (`gain / cost`) until no affordable node remains, then returns the
    /// better of that set and the best single affordable node — the
    /// standard `1 − 1/√e` approximation for coverage under a knapsack
    /// constraint (see the module docs).
    ///
    /// Forced seeds are selected first in order, charging the budget;
    /// excluded nodes are never selected. Leftover budget is spent on
    /// zero-gain padding seeds (ascending ids), mirroring the
    /// cardinality path's padding contract, so with
    /// [`NodeCosts::Uniform`] and `budget = k` the result is
    /// bit-identical to [`CoverageView::select`].
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not finite and nonnegative, if `costs` is
    /// malformed (see [`NodeCosts`]), or if the forced seeds alone
    /// overrun the budget.
    pub fn select_budgeted(
        &self,
        budget: f64,
        costs: &NodeCosts,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> BudgetedCoverageResult {
        self.select_budgeted_inner(budget, costs, constraints, scratch, None)
    }

    /// [`CoverageView::select_budgeted`] with the histogram pass replaced
    /// by a memcpy of `snapshot`'s frozen gains — the frozen-pool fast
    /// path. Snapshots are cost-agnostic, so one snapshot serves every
    /// `(budget, costs)` pair. Bit-identical to
    /// [`CoverageView::select_budgeted`].
    ///
    /// # Panics
    ///
    /// As [`CoverageView::select_budgeted`], plus if `snapshot` was built
    /// for a different pool slice.
    pub fn select_budgeted_from_snapshot(
        &self,
        snapshot: &GainSnapshot,
        budget: f64,
        costs: &NodeCosts,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
    ) -> BudgetedCoverageResult {
        self.select_budgeted_inner(budget, costs, constraints, scratch, Some(snapshot))
    }

    fn select_budgeted_inner(
        &self,
        budget: f64,
        costs: &NodeCosts,
        constraints: &SeedConstraints<'_>,
        scratch: &mut GreedyScratch,
        frozen: Option<&GainSnapshot>,
    ) -> BudgetedCoverageResult {
        let n = self.num_nodes();
        assert!(budget.is_finite() && budget >= 0.0, "budget must be finite and nonnegative");
        let min_cost = costs.validated_min(n);
        let generation = scratch.begin_run(n as usize, self.len());

        let mut heap_buf = std::mem::take(&mut scratch.wheap_buf);
        heap_buf.clear();
        let gain = &mut scratch.gain;
        gain.clear();
        match frozen {
            Some(snapshot) => {
                assert_eq!(
                    snapshot.range(),
                    self.range(),
                    "gain snapshot was built for a different pool slice"
                );
                gain.extend_from_slice(snapshot.gains());
            }
            None => {
                gain.resize(n as usize, 0);
                for &v in self.raw_members() {
                    gain[v as usize] += 1;
                }
            }
        }

        // Excluded nodes are retired before anything reads the gain
        // table, so neither the greedy loop, the padding, nor the
        // single-node fallback can return them.
        for &v in constraints.excluded {
            scratch.selected_stamp[v as usize] = generation;
        }

        // The other arm of the max(greedy, best single) guarantee: the
        // highest-gain node affordable within the *full* budget, read off
        // the initial gains before anything decrements them. Forced seeds
        // change what the query means (the fallback would drop them), so
        // the arm only applies to unconstrained-prefix queries.
        let mut best_single: Option<(u32, NodeId)> = None;
        if constraints.forced.is_empty() {
            for v in 0..n {
                let g = gain[v as usize];
                if g == 0 || scratch.selected_stamp[v as usize] == generation {
                    continue;
                }
                if costs.cost(v) <= budget && best_single.is_none_or(|b| (g, v) > b) {
                    best_single = Some((g, v));
                }
            }
        }

        // Seed the cost-effectiveness heap. `u32 → f64` is exact and the
        // tie-break is the node id, so with uniform costs this heap is
        // order-isomorphic to the plain `(gain, id)` heap.
        heap_buf.extend(
            (0..n)
                .filter(|&v| gain[v as usize] > 0)
                .map(|v| (WeightOrd(f64::from(gain[v as usize]) / costs.cost(v)), v)),
        );
        let mut heap: BinaryHeap<(WeightOrd, NodeId)> = BinaryHeap::from(heap_buf);

        let mut seeds = Vec::new();
        let mut marginal_gains = Vec::new();
        let mut covered = 0u64;
        let mut remaining = budget;
        let mut spent = 0.0f64;

        for &v in constraints.forced {
            if scratch.selected_stamp[v as usize] == generation {
                continue; // duplicate forced seed: selected (and charged) once
            }
            let c = costs.cost(v);
            assert!(c <= remaining, "forced seeds overrun the budget {budget}");
            scratch.selected_stamp[v as usize] = generation;
            remaining -= c;
            spent += c;
            let g = gain[v as usize];
            seeds.push(v);
            marginal_gains.push(u64::from(g));
            covered += u64::from(g);
            if g > 0 {
                self.cover_sets_of(v, generation, &mut scratch.covered_stamp, gain);
            }
        }

        while remaining >= min_cost {
            let Some((WeightOrd(r), v)) = heap.pop() else { break };
            if scratch.selected_stamp[v as usize] == generation {
                continue;
            }
            let g = gain[v as usize];
            let current = f64::from(g) / costs.cost(v);
            if r > current {
                // Stale entry: re-key with the exact ratio. Gains only
                // decrease and costs are fixed, so ratios only decrease
                // and the max-heap invariant stays sound.
                if g > 0 {
                    heap.push((WeightOrd(current), v));
                }
                continue;
            }
            if g == 0 {
                break; // nothing left to cover
            }
            let c = costs.cost(v);
            if c > remaining {
                // Unaffordable now; the budget only shrinks, so retire
                // the node for the rest of the run (padding included).
                scratch.selected_stamp[v as usize] = generation;
                continue;
            }
            scratch.selected_stamp[v as usize] = generation;
            remaining -= c;
            spent += c;
            seeds.push(v);
            marginal_gains.push(u64::from(g));
            covered += u64::from(g);
            self.cover_sets_of(v, generation, &mut scratch.covered_stamp, gain);
            debug_assert_eq!(gain[v as usize], 0);
        }

        // Spend leftover budget on zero-gain padding, ascending ids —
        // the budgeted mirror of the cardinality path's padding. Every
        // node with residual gain was either selected or retired as
        // unaffordable above, so padding seeds genuinely add nothing.
        let mut next = 0u32;
        while next < n && remaining >= min_cost {
            if scratch.selected_stamp[next as usize] != generation {
                let c = costs.cost(next);
                if c <= remaining {
                    scratch.selected_stamp[next as usize] = generation;
                    remaining -= c;
                    spent += c;
                    seeds.push(next);
                    marginal_gains.push(0);
                }
            }
            next += 1;
        }

        scratch.wheap_buf = heap.into_vec();

        if let Some((bg, bv)) = best_single {
            if u64::from(bg) > covered {
                // The single affordable node beats the whole ratio-greedy
                // set — the classical bad case for plain ratio greedy.
                return BudgetedCoverageResult {
                    seeds: vec![bv],
                    covered: u64::from(bg),
                    marginal_gains: vec![u64::from(bg)],
                    spent: costs.cost(bv),
                    single_fallback: true,
                };
            }
        }
        BudgetedCoverageResult { seeds, covered, marginal_gains, spent, single_fallback: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RrCollection;
    use sns_diffusion::RrMeta;

    fn m(root: NodeId) -> RrMeta {
        RrMeta { root, edges_examined: 0 }
    }

    fn pool(sets: &[&[NodeId]], n: u32) -> RrCollection {
        let mut rc = RrCollection::new(n);
        for s in sets {
            rc.push(s, m(s.first().copied().unwrap_or(0)));
        }
        rc
    }

    fn random_pool(seed: u64, n: u32, sets: usize) -> RrCollection {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rc = RrCollection::new(n);
        for _ in 0..sets {
            let len = rng.gen_range(1..6usize);
            let root = rng.gen_range(0..n);
            let mut s = vec![root];
            for _ in 1..len {
                let v = rng.gen_range(0..n);
                if !s.contains(&v) {
                    s.push(v);
                }
            }
            rc.push(&s, m(root));
        }
        rc
    }

    fn costs_from(seed: u64, n: u32) -> NodeCosts {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c: Vec<f64> =
            (0..n).map(|_| [0.5, 1.0, 1.5, 2.0, 3.0][rng.gen_range(0..5usize)]).collect();
        NodeCosts::per_node(c.into())
    }

    #[test]
    fn uniform_costs_with_budget_k_degenerate_to_top_k() {
        let mut scratch = GreedyScratch::new();
        for seed in 0..8u64 {
            let rc = random_pool(seed, 30, 150);
            let total = rc.len() as u32;
            for range in [0..total, 0..total / 2, total / 4..total] {
                let view = CoverageView::build(&rc, range.clone());
                let snap = GainSnapshot::build(&view);
                for k in [1usize, 3, 7, 40] {
                    let plain = view.select(k, &mut scratch);
                    let budgeted = view.select_budgeted(
                        k as f64,
                        &NodeCosts::Uniform,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(budgeted.seeds, plain.seeds, "seed {seed} range {range:?} k {k}");
                    assert_eq!(budgeted.covered, plain.covered);
                    assert_eq!(budgeted.marginal_gains, plain.marginal_gains);
                    assert!(!budgeted.single_fallback);
                    let frozen = view.select_budgeted_from_snapshot(
                        &snap,
                        k as f64,
                        &NodeCosts::Uniform,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(frozen, budgeted, "frozen path diverged");
                }
            }
        }
    }

    #[test]
    fn frozen_path_matches_fresh_path_under_arbitrary_costs() {
        let mut scratch = GreedyScratch::new();
        for seed in 0..6u64 {
            let rc = random_pool(50 + seed, 25, 120);
            let costs = costs_from(seed, 25);
            for range in [0..120u32, 10..90] {
                let view = CoverageView::build(&rc, range.clone());
                let snap = GainSnapshot::build(&view);
                for budget in [1.5f64, 4.0, 9.5] {
                    let fresh = view.select_budgeted(
                        budget,
                        &costs,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    let frozen = view.select_budgeted_from_snapshot(
                        &snap,
                        budget,
                        &costs,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(frozen, fresh, "seed {seed} range {range:?} budget {budget}");
                    // repeated queries against one snapshot stay stable
                    let again = view.select_budgeted_from_snapshot(
                        &snap,
                        budget,
                        &costs,
                        &SeedConstraints::none(),
                        &mut scratch,
                    );
                    assert_eq!(again, fresh);
                }
            }
        }
    }

    #[test]
    fn single_fallback_beats_ratio_greedy_lockout() {
        // Node 0 covers 4 sets but costs the whole budget; node 5 covers
        // one set at cost 0.5 with a better ratio. Plain ratio greedy
        // takes node 5, leaving node 0 unaffordable (and everything else
        // is overpriced) — the fallback must return node 0 alone.
        let rc = pool(&[&[0, 1], &[0, 2], &[0, 3], &[0, 4], &[5]], 6);
        let costs: Vec<f64> = vec![4.0, 5.0, 5.0, 5.0, 5.0, 0.5];
        let view = CoverageView::build(&rc, 0..5);
        let r = view.select_budgeted(
            4.0,
            &NodeCosts::per_node(costs.into()),
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
        assert!(r.single_fallback);
        assert_eq!(r.seeds, vec![0]);
        assert_eq!(r.covered, 4);
        assert_eq!(r.marginal_gains, vec![4]);
        assert!((r.spent - 4.0).abs() < 1e-12);
    }

    #[test]
    fn unaffordable_nodes_are_skipped_not_fatal() {
        // Node 0 has the best ratio but costs more than the budget; the
        // greedy loop must retire it and select affordable nodes.
        let rc = pool(&[&[0, 1], &[0, 2], &[0, 3], &[1, 4], &[2]], 5);
        let costs: Vec<f64> = vec![10.0, 1.0, 1.0, 1.0, 1.0];
        let view = CoverageView::build(&rc, 0..5);
        let r = view.select_budgeted(
            2.0,
            &NodeCosts::per_node(costs.into()),
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
        assert!(!r.seeds.contains(&0), "unaffordable node selected: {:?}", r.seeds);
        assert!(r.covered >= 3, "affordable pair should cover ≥ 3 sets: {r:?}");
        assert!(r.spent <= 2.0 + 1e-12);
    }

    #[test]
    fn forced_seeds_charge_the_budget_and_lead() {
        let rc = pool(&[&[0, 1], &[0, 2], &[3], &[3, 1]], 4);
        let view = CoverageView::build(&rc, 0..4);
        let mut scratch = GreedyScratch::new();
        let cons = SeedConstraints { forced: &[1], excluded: &[] };
        let r = view.select_budgeted(2.0, &NodeCosts::Uniform, &cons, &mut scratch);
        assert_eq!(r.seeds[0], 1);
        assert_eq!(r.marginal_gains[0], 2);
        assert_eq!(r.covered, 3);
        assert!((r.spent - 2.0).abs() < 1e-12);
        // duplicates are selected and charged once
        let dup = SeedConstraints { forced: &[1, 1], excluded: &[] };
        let r2 = view.select_budgeted(2.0, &NodeCosts::Uniform, &dup, &mut scratch);
        assert_eq!(r2.seeds, r.seeds);
    }

    #[test]
    #[should_panic(expected = "overrun the budget")]
    fn forced_seeds_beyond_the_budget_panic() {
        let rc = pool(&[&[0], &[1]], 2);
        let view = CoverageView::build(&rc, 0..2);
        let cons = SeedConstraints { forced: &[0, 1], excluded: &[] };
        view.select_budgeted(1.0, &NodeCosts::Uniform, &cons, &mut GreedyScratch::new());
    }

    #[test]
    fn excluded_nodes_never_appear_even_via_fallback() {
        // Node 0 would win both the greedy loop and the fallback; with it
        // excluded the answer must come from the rest.
        let rc = pool(&[&[0, 1], &[0, 2], &[0, 3], &[4, 1]], 5);
        let view = CoverageView::build(&rc, 0..4);
        let cons = SeedConstraints { forced: &[], excluded: &[0] };
        let costs: Vec<f64> = vec![1.0, 0.1, 1.0, 1.0, 1.0];
        let r = view.select_budgeted(
            1.0,
            &NodeCosts::per_node(costs.into()),
            &cons,
            &mut GreedyScratch::new(),
        );
        assert!(!r.seeds.contains(&0), "excluded node selected: {:?}", r.seeds);
    }

    #[test]
    fn leftover_budget_pads_with_affordable_zero_gain_nodes() {
        let rc = pool(&[&[0, 1], &[0, 2]], 6);
        let view = CoverageView::build(&rc, 0..2);
        let mut scratch = GreedyScratch::new();
        // Uniform, budget 4: node 0 covers everything, then 3 pads.
        let r =
            view.select_budgeted(4.0, &NodeCosts::Uniform, &SeedConstraints::none(), &mut scratch);
        assert_eq!(r.seeds, vec![0, 1, 2, 3]);
        assert_eq!(r.marginal_gains, vec![2, 0, 0, 0]);
        assert_eq!(r.covered, 2);
        // Costly padding candidates are skipped when unaffordable.
        let costs: Vec<f64> = vec![1.0, 9.0, 1.0, 9.0, 1.0, 1.0];
        let r2 = view.select_budgeted(
            3.0,
            &NodeCosts::per_node(costs.into()),
            &SeedConstraints::none(),
            &mut scratch,
        );
        assert_eq!(r2.seeds, vec![0, 2, 4], "padding must skip nodes it cannot afford");
    }

    #[test]
    fn zero_budget_returns_nothing() {
        let rc = pool(&[&[0, 1]], 2);
        let view = CoverageView::build(&rc, 0..1);
        let r = view.select_budgeted(
            0.0,
            &NodeCosts::Uniform,
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
        assert!(r.seeds.is_empty());
        assert_eq!(r.covered, 0);
        assert_eq!(r.spent, 0.0);
    }

    #[test]
    fn cost_identity_semantics() {
        let a: Arc<[f64]> = vec![1.0, 2.0].into();
        let b: Arc<[f64]> = vec![1.0, 2.0].into();
        assert!(NodeCosts::Uniform.same_costs(&NodeCosts::Uniform));
        assert!(NodeCosts::per_node(a.clone()).same_costs(&NodeCosts::per_node(a.clone())));
        assert!(!NodeCosts::per_node(a.clone()).same_costs(&NodeCosts::per_node(b)));
        assert!(!NodeCosts::Uniform.same_costs(&NodeCosts::per_node(a)));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nonpositive_costs_are_rejected() {
        let rc = pool(&[&[0]], 2);
        let view = CoverageView::build(&rc, 0..1);
        view.select_budgeted(
            1.0,
            &NodeCosts::per_node(vec![1.0, 0.0].into()),
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
    }

    #[test]
    #[should_panic(expected = "one cost per node")]
    fn wrong_length_costs_are_rejected() {
        let rc = pool(&[&[0]], 3);
        let view = CoverageView::build(&rc, 0..1);
        view.select_budgeted(
            1.0,
            &NodeCosts::per_node(vec![1.0].into()),
            &SeedConstraints::none(),
            &mut GreedyScratch::new(),
        );
    }
}
