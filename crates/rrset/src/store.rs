//! Crash-safe persistent pool store: checksummed epoch snapshots,
//! atomic manifest commit, valid-prefix recovery.
//!
//! Sampling is the expensive phase of SSA/D-SSA; this module makes the
//! sampled pool durable so a restart serves from disk instead of paying
//! for the samples again. The design center is robustness: every byte
//! read back is checksum-verified, the commit protocol cannot publish a
//! manifest pointing at garbage, and corruption degrades to a *typed*
//! outcome — never a panic, never a silently wrong answer.
//!
//! # On-disk layout
//!
//! A store is a directory:
//!
//! ```text
//! store/
//! ├── MANIFEST          committed last, atomically (see below)
//! ├── epoch-00000.rr    one immutable segment per sealed epoch
//! ├── epoch-00001.rr
//! └── …
//! ```
//!
//! Each segment serializes one sealed epoch of an
//! [`RrCollection`] as its flat set-CSR slice
//! verbatim — the epoch's node arena plus width-adaptive (u32/u64)
//! per-set end offsets — framed by a self-describing header and a
//! checksummed footer:
//!
//! ```text
//! "SNSE" | version u32 | epoch u32 | start u32 | sets u32
//!        | entries u64 | edges_delta u64 | offset_width u32
//! offsets: sets × offset_width bytes   (rebased ends, leading 0 implicit)
//! data:    entries × 4 bytes           (node ids)
//! checksum u64 over all bytes above | "ESNS"
//! ```
//!
//! The `MANIFEST` records the [`StoreFingerprint`] (graph content hash,
//! model, RNG seed, Γ, free-form metadata such as stopping-rule
//! provenance) and an epoch table — `(boundary, cumulative edge total,
//! file length, checksum)` per epoch — and ends in its own checksum.
//! All integers are little-endian; checksums are the word-wise FNV-1a
//! of [`sns_graph::hash`].
//!
//! # Commit protocol
//!
//! Segments are immutable once named by a manifest; a save writes new
//! segments first (`write → fsync → rename`), then commits the manifest
//! the same way: write `MANIFEST.tmp`, `fsync`, atomically rename over
//! `MANIFEST`, `fsync` the directory. A crash at any point leaves either
//! the old manifest (new segments are unreferenced garbage, harmless and
//! rewritten by the next save) or the new one (fully written, since the
//! rename happens after the segment fsyncs). Stale `*.tmp` files are
//! ignored by the loader. An incremental save ([`PoolStore::save`] on a
//! directory that already holds a prefix of the pool) writes **only the
//! new epochs** — this is the `extend()`-then-`save()` append path of
//! `sns_core::SeedQueryEngine`.
//!
//! # Recovery semantics
//!
//! Epochs are append-only and immutable, so the longest valid prefix of
//! a damaged store is well-defined. [`PoolStore::load`] fails on the
//! first fault with a typed [`StoreError`];
//! [`PoolStore::load_recovering`] instead stops at the first damaged
//! epoch and returns the verified prefix plus [`Recovery::Recovered`]
//! accounting what was lost. Because sampling is deterministic per
//! sample index, re-extending a recovered prefix by `sets_lost` sets
//! reproduces the original pool bit-for-bit. Manifest damage is never
//! recovered around — without a trusted epoch table there is no "valid
//! prefix" to speak of.
//!
//! # Example
//!
//! ```
//! use sns_rrset::{PoolStore, RrCollection, StoreFingerprint};
//!
//! let mut pool = RrCollection::new(4);
//! // (sampled in real use; see sns_core::SeedQueryEngine::save for the
//! // engine-level path that fills the fingerprint automatically)
//! # use sns_diffusion::RrMeta;
//! # pool.push(&[0, 1], RrMeta { root: 0, edges_examined: 2 });
//! # pool.push(&[2], RrMeta { root: 2, edges_examined: 1 });
//! let _ = pool.seal();
//!
//! let fp = StoreFingerprint {
//!     graph_hash: 0xfeed,
//!     num_nodes: 4,
//!     model: "IC".into(),
//!     rng_seed: 7,
//!     gamma: 4.0,
//!     meta: vec![],
//! };
//! let dir = std::env::temp_dir().join(format!("sns-store-doc-{}", std::process::id()));
//! let store = PoolStore::at(&dir);
//! store.save(&pool, &fp).unwrap();
//! let (loaded, loaded_fp) = store.load(1).unwrap();
//! assert_eq!(loaded.len(), pool.len());
//! assert_eq!(loaded_fp, fp);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use sns_graph::hash::{fnv64, Fnv64};
use sns_graph::NodeId;

use crate::{narrow, RrCollection};

/// Magic prefix of the manifest file.
const MANIFEST_MAGIC: &[u8; 4] = b"SNSM";
/// Magic prefix of an epoch segment file.
const SEGMENT_MAGIC: &[u8; 4] = b"SNSE";
/// Trailing magic of an epoch segment file.
const SEGMENT_END_MAGIC: &[u8; 4] = b"ESNS";
/// Current store format version (manifest and segments move together).
const STORE_VERSION: u32 = 1;
/// Manifest file name.
const MANIFEST: &str = "MANIFEST";

/// Segment bytes before the offsets payload: magic + (version, epoch,
/// start, sets, width) u32s + (entries, edges_delta) u64s.
const SEGMENT_HEADER_BYTES: u64 = 4 + 4 * 5 + 8 * 2;
/// Segment footer: checksum u64 + end magic.
const SEGMENT_FOOTER_BYTES: u64 = 8 + 4;

/// Hard caps on corruption-controlled counts, so a damaged field can
/// never demand an absurd allocation. (Segment payloads are verified
/// against the manifest's recorded file length before any allocation;
/// these caps guard the manifest itself, which only carries its trailing
/// whole-file checksum and is parsed first.)
const MAX_STRING: usize = 4096;
const MAX_META: usize = 1024;
const MAX_EPOCHS: usize = 1 << 20;

/// Typed failure of a [`PoolStore`] operation. Every injected fault in
/// the corruption sweep (`tests/failure_injection.rs`) surfaces as one
/// of these — never as a panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying filesystem failure (`file` is store-relative).
    Io {
        /// Store-relative file the operation touched.
        file: String,
        /// The originating I/O error.
        source: io::Error,
    },
    /// A file the manifest references (or the manifest itself) does not
    /// exist.
    Missing {
        /// Store-relative file that was not found.
        file: String,
    },
    /// The file does not start (or end) with the expected magic — not a
    /// store file at all, or overwritten wholesale.
    BadMagic {
        /// Store-relative file with the wrong magic.
        file: String,
    },
    /// The file declares a format version this reader does not speak.
    VersionSkew {
        /// Store-relative file with the foreign version.
        file: String,
        /// The version the file declares.
        found: u32,
    },
    /// The file is shorter than its own framing says it must be.
    Truncated {
        /// Store-relative file that ended early.
        file: String,
    },
    /// The file's contents do not hash to its recorded checksum.
    ChecksumMismatch {
        /// Store-relative file whose checksum failed.
        file: String,
    },
    /// The file is structurally inconsistent (its declared fields
    /// contradict each other, the manifest, or the pool being restored).
    BadFormat {
        /// Store-relative file with the inconsistency.
        file: String,
        /// What specifically is inconsistent.
        detail: String,
    },
    /// The store was sampled under a different graph / model / seed than
    /// the caller expects (see [`StoreFingerprint`]).
    FingerprintMismatch {
        /// Which fingerprint field disagrees, and how.
        detail: String,
    },
    /// The in-memory pool's epoch metadata disagrees with its arena —
    /// the save-time guard that turns a bookkeeping bug into an error
    /// instead of a corrupt store.
    MetadataDrift {
        /// What disagrees.
        detail: String,
    },
    /// A broken invariant inside this crate (not in the store on disk).
    /// Reported as an error rather than a panic, per the workspace
    /// panic-path contract (`docs/ARCHITECTURE.md` §6); seeing one is a
    /// bug in `sns-rrset`.
    Internal {
        /// Which invariant broke.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { file, source } => write!(f, "store io error on {file}: {source}"),
            StoreError::Missing { file } => write!(f, "store file {file} is missing"),
            StoreError::BadMagic { file } => write!(f, "store file {file} has a bad magic"),
            StoreError::VersionSkew { file, found } => {
                write!(f, "store file {file} has version {found}, reader speaks {STORE_VERSION}")
            }
            StoreError::Truncated { file } => write!(f, "store file {file} is truncated"),
            StoreError::ChecksumMismatch { file } => {
                write!(f, "store file {file} fails its checksum")
            }
            StoreError::BadFormat { file, detail } => {
                write!(f, "store file {file} is malformed: {detail}")
            }
            StoreError::FingerprintMismatch { detail } => {
                write!(f, "store fingerprint mismatch: {detail}")
            }
            StoreError::MetadataDrift { detail } => {
                write!(f, "pool epoch metadata drifted from its arena: {detail}")
            }
            StoreError::Internal { detail } => {
                write!(f, "internal invariant violated (bug in sns-rrset): {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Identity of the sampling run a store was baked from. Serving a pool
/// against the wrong graph (or model, or seed) would silently answer
/// wrong questions, so the manifest records this and loaders compare it
/// ([`StoreFingerprint::matches_sampling`]).
#[derive(Debug, Clone)]
pub struct StoreFingerprint {
    /// [`sns_graph::Graph::content_hash`] of the sampled graph.
    pub graph_hash: u64,
    /// Node-universe size (`Graph::num_nodes`); also sizes the loaded
    /// pool's index.
    pub num_nodes: u32,
    /// Diffusion model short name (`"IC"` / `"LT"`).
    pub model: String,
    /// Master RNG seed of the sampling context.
    pub rng_seed: u64,
    /// Universe mass Γ behind influence estimates (compared bitwise).
    pub gamma: f64,
    /// Free-form provenance — stopping-rule metadata from a solver's
    /// `RunResult`, root-distribution kind, and anything else worth
    /// carrying. Mostly **not** part of the sampling identity (two
    /// stores of the same samples with different notes still match),
    /// with two exceptions checked by
    /// [`StoreFingerprint::matches_sampling`]: the `"roots"` kind and
    /// the `"roots_checksum"` content hash of the weight/benefit
    /// vector. Γ alone cannot tell two vectors with equal mass apart;
    /// the checksum makes reloading a weighted pool under a different
    /// vector fail loudly instead of via silent Γ-compatible drift.
    pub meta: Vec<(String, String)>,
}

impl PartialEq for StoreFingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.graph_hash == other.graph_hash
            && self.num_nodes == other.num_nodes
            && self.model == other.model
            && self.rng_seed == other.rng_seed
            && self.gamma.to_bits() == other.gamma.to_bits()
            && self.meta == other.meta
    }
}

impl StoreFingerprint {
    /// Compares the sampling-identity fields — the scalar identity plus
    /// the `"roots"` / `"roots_checksum"` meta keys (other meta entries
    /// are free-form provenance) — against `expected`, reporting the
    /// first disagreement as [`StoreError::FingerprintMismatch`].
    pub fn matches_sampling(&self, expected: &StoreFingerprint) -> Result<(), StoreError> {
        let fail = |field: &str, found: String, want: String| {
            Err(StoreError::FingerprintMismatch {
                detail: format!("{field}: store has {found}, caller expects {want}"),
            })
        };
        if self.graph_hash != expected.graph_hash {
            return fail(
                "graph_hash",
                format!("{:#x}", self.graph_hash),
                format!("{:#x}", expected.graph_hash),
            );
        }
        if self.num_nodes != expected.num_nodes {
            return fail("num_nodes", self.num_nodes.to_string(), expected.num_nodes.to_string());
        }
        if self.model != expected.model {
            return fail("model", self.model.clone(), expected.model.clone());
        }
        if self.rng_seed != expected.rng_seed {
            return fail("rng_seed", self.rng_seed.to_string(), expected.rng_seed.to_string());
        }
        if self.gamma.to_bits() != expected.gamma.to_bits() {
            return fail("gamma", self.gamma.to_string(), expected.gamma.to_string());
        }
        // Root-distribution identity rides in `meta`: the "roots" kind and
        // the "roots_checksum" content hash of the weight/benefit vector.
        // Present-vs-absent counts as a mismatch — an old store without a
        // checksum cannot prove it was sampled under the caller's vector.
        let meta_value = |fp: &StoreFingerprint, key: &str| -> Option<String> {
            fp.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
        };
        for key in ["roots", "roots_checksum"] {
            let (found, want) = (meta_value(self, key), meta_value(expected, key));
            if found != want {
                let show = |v: Option<String>| v.unwrap_or_else(|| "<absent>".to_string());
                return fail(key, show(found), show(want));
            }
        }
        Ok(())
    }
}

/// Outcome of [`PoolStore::load_recovering`]: whether the whole store
/// verified, or only a prefix survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Every epoch verified; the loaded pool is the full saved pool.
    Intact,
    /// Damage was found; the loaded pool is the longest valid epoch
    /// prefix. Re-sampling `sets_lost` sets (deterministic per-index
    /// streams) reproduces the original pool bit-for-bit.
    Recovered {
        /// Saved epochs that failed verification (the damaged one and
        /// everything after it — recovery keeps a *prefix*, because a
        /// later epoch's start depends on every earlier boundary).
        epochs_lost: u32,
        /// RR sets in the lost epochs.
        sets_lost: u64,
    },
}

/// What a [`PoolStore::save`] actually did — incremental saves reuse
/// every epoch already on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveStats {
    /// Epoch segments written by this save.
    pub epochs_written: u32,
    /// Epoch segments already on disk and reused verbatim.
    pub epochs_reused: u32,
    /// Bytes written (segments + manifest).
    pub bytes_written: u64,
}

/// One manifest epoch-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EpochEntry {
    /// Cumulative set-id boundary (matches `epoch_boundaries()`).
    boundary: u32,
    /// Cumulative `total_edges_examined` at this boundary.
    edges_total: u64,
    /// Exact byte length of the segment file.
    file_len: u64,
    /// Checksum of the segment file minus its footer — the same value
    /// the segment's own footer carries.
    checksum: u64,
}

/// Parsed manifest.
#[derive(Debug, Clone)]
struct Manifest {
    fingerprint: StoreFingerprint,
    epochs: Vec<EpochEntry>,
}

/// Handle to a pool-store directory. Cheap to construct — no I/O happens
/// until [`PoolStore::save`] / [`PoolStore::load`] /
/// [`PoolStore::read_fingerprint`]. See the module docs for the format,
/// commit protocol and recovery semantics.
#[derive(Debug, Clone)]
pub struct PoolStore {
    dir: PathBuf,
}

impl PoolStore {
    /// A store handle rooted at `dir` (created on first save).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PoolStore { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a committed manifest exists (an interrupted first save
    /// leaves none — the directory then reads as "no store").
    pub fn exists(&self) -> bool {
        self.dir.join(MANIFEST).is_file()
    }

    /// Reads and verifies the manifest alone — the cheap way to inspect
    /// a store's [`StoreFingerprint`] without loading any epoch.
    pub fn read_fingerprint(&self) -> Result<StoreFingerprint, StoreError> {
        Ok(self.read_manifest()?.fingerprint)
    }

    /// Persists `pool` (which must be fully sealed — every set inside an
    /// epoch) under `fingerprint`. Incremental: epochs already on disk
    /// with matching boundaries are reused; only new epochs and the
    /// manifest are written. The manifest commit is atomic (see the
    /// module docs), so a crash mid-save can never be observed as a
    /// half-written store.
    ///
    /// # Errors
    ///
    /// [`StoreError::MetadataDrift`] if the pool's epoch metadata
    /// disagrees with its arena (the guard that keeps a bookkeeping bug
    /// from becoming a corrupt store), [`StoreError::FingerprintMismatch`]
    /// if the directory already holds a committed store of *different*
    /// samples, [`StoreError::Io`] on filesystem failure.
    pub fn save(
        &self,
        pool: &RrCollection,
        fingerprint: &StoreFingerprint,
    ) -> Result<SaveStats, StoreError> {
        validate_pool_metadata(pool)?;
        if pool.num_nodes() != fingerprint.num_nodes {
            return Err(StoreError::MetadataDrift {
                detail: format!(
                    "pool indexes {} nodes but the fingerprint declares {}",
                    pool.num_nodes(),
                    fingerprint.num_nodes
                ),
            });
        }
        fs::create_dir_all(&self.dir)
            .map_err(|e| StoreError::Io { file: ".".into(), source: e })?;

        let bounds = pool.epoch_boundaries();
        let edge_totals = pool.epoch_edge_totals();
        // An existing committed store of the same samples is extended in
        // place. A diverged epoch layout or stale segment files mean the
        // directory predates a different growth schedule: rewrite from
        // epoch 0 (correct either way — the manifest commit is atomic).
        // An unreadable existing manifest is also rewritten; a *readable*
        // one for different samples is an error, not a silent overwrite.
        let reusable = match self.read_manifest() {
            Ok(m) => {
                m.fingerprint.matches_sampling(fingerprint)?;
                let prefix_matches = m.epochs.len() <= bounds.len()
                    && m.epochs
                        .iter()
                        .zip(bounds.iter().zip(edge_totals))
                        .all(|(e, (&b, &t))| e.boundary == b && e.edges_total == t)
                    && m.epochs.iter().enumerate().all(|(i, e)| {
                        fs::metadata(self.dir.join(segment_name(i)))
                            .map(|md| md.len() == e.file_len)
                            .unwrap_or(false)
                    });
                if prefix_matches {
                    m.epochs
                } else {
                    Vec::new()
                }
            }
            Err(StoreError::Missing { .. }) => Vec::new(),
            Err(_) => Vec::new(),
        };

        let (data, offsets) = pool.arena();
        let mut stats = SaveStats {
            epochs_reused: narrow::small_count(reusable.len()),
            ..SaveStats::default()
        };
        let mut entries = reusable;
        // Walk the epochs past the reused prefix, carrying the previous
        // boundary/total instead of indexing `bounds[e - 1]` — the save
        // path stays free of unchecked indexing (sns-lint `panics/index`).
        let mut lo = entries.last().map_or(0, |e| e.boundary);
        let mut prev_edges = entries.last().map_or(0, |e| e.edges_total);
        let fresh = bounds.iter().zip(edge_totals).enumerate().skip(entries.len());
        for (e, (&hi, &edges_total)) in fresh {
            let bytes = encode_segment(
                narrow::small_count(e),
                lo,
                hi,
                data,
                offsets,
                edges_total - prev_edges,
            );
            let payload_len = bytes.len().saturating_sub(SEGMENT_FOOTER_BYTES as usize);
            let checksum = fnv64(bytes.get(..payload_len).unwrap_or_default());
            let name = segment_name(e);
            write_atomic(&self.dir, &name, &bytes)?;
            stats.epochs_written += 1;
            stats.bytes_written += bytes.len() as u64;
            entries.push(EpochEntry {
                boundary: hi,
                edges_total,
                file_len: bytes.len() as u64,
                checksum,
            });
            lo = hi;
            prev_edges = edges_total;
        }

        let manifest = encode_manifest(fingerprint, &entries);
        stats.bytes_written += manifest.len() as u64;
        write_atomic(&self.dir, MANIFEST, &manifest)?;
        Ok(stats)
    }

    /// Loads the full pool, verifying every epoch's checksum and
    /// structure. Strict: the first fault is returned as its typed
    /// [`StoreError`]. Index rebuilds fan across `threads` workers (the
    /// result never depends on it).
    pub fn load(&self, threads: usize) -> Result<(RrCollection, StoreFingerprint), StoreError> {
        match self.load_prefix(threads, false)? {
            (pool, fingerprint, Recovery::Intact) => Ok((pool, fingerprint)),
            // Strict loads propagate the first fault instead of
            // recovering, so a partial result here is a bug in this
            // crate — reported as a typed error, not a panic.
            _ => {
                Err(StoreError::Internal { detail: "strict load returned a partial prefix".into() })
            }
        }
    }

    /// Loads the longest valid epoch prefix. Epoch damage (truncation,
    /// bit rot, a deleted segment) stops the scan and returns what
    /// verified, with [`Recovery::Recovered`] accounting the rest;
    /// manifest damage is still a hard error (without a trusted epoch
    /// table there is no meaningful prefix).
    pub fn load_recovering(
        &self,
        threads: usize,
    ) -> Result<(RrCollection, StoreFingerprint, Recovery), StoreError> {
        self.load_prefix(threads, true)
    }

    fn load_prefix(
        &self,
        threads: usize,
        recover: bool,
    ) -> Result<(RrCollection, StoreFingerprint, Recovery), StoreError> {
        let manifest = self.read_manifest()?;
        let mut pool = RrCollection::new(manifest.fingerprint.num_nodes);
        let total_sets = manifest.epochs.last().map_or(0, |e| e.boundary as u64);
        let mut prev_bound = 0u32;
        let mut prev_edges = 0u64;
        for (e, entry) in manifest.epochs.iter().enumerate() {
            let verified =
                self.read_segment(e, entry, prev_bound, prev_edges, manifest.fingerprint.num_nodes);
            match verified {
                Ok((data, set_ends, edges_delta)) => {
                    pool.restore_sealed_epoch(&data, &set_ends, edges_delta, threads);
                    prev_bound = entry.boundary;
                    prev_edges = entry.edges_total;
                }
                Err(err) => {
                    if recover {
                        return Ok((
                            pool,
                            manifest.fingerprint,
                            Recovery::Recovered {
                                epochs_lost: (manifest.epochs.len() - e) as u32,
                                sets_lost: total_sets - prev_bound as u64,
                            },
                        ));
                    }
                    return Err(err);
                }
            }
        }
        Ok((pool, manifest.fingerprint, Recovery::Intact))
    }

    /// Reads, checksums and structurally validates one epoch segment,
    /// returning `(node data, rebased per-set end offsets, edge delta)`.
    fn read_segment(
        &self,
        epoch: usize,
        entry: &EpochEntry,
        prev_bound: u32,
        prev_edges: u64,
        num_nodes: u32,
    ) -> Result<(Vec<NodeId>, Vec<u64>, u64), StoreError> {
        let name = segment_name(epoch);
        let bytes = read_file(&self.dir, &name)?;
        let bad = |detail: String| Err(StoreError::BadFormat { file: name.clone(), detail });
        if (bytes.len() as u64) < entry.file_len {
            return Err(StoreError::Truncated { file: name.clone() });
        }
        if bytes.len() as u64 > entry.file_len {
            return bad(format!("{} bytes on disk, manifest says {}", bytes.len(), entry.file_len));
        }
        if (bytes.len() as u64) < SEGMENT_HEADER_BYTES + SEGMENT_FOOTER_BYTES {
            return Err(StoreError::Truncated { file: name.clone() });
        }

        // Verify framing and checksum before believing any header field.
        // All byte access below goes through `field` — clamped slicing
        // that cannot panic on hostile lengths (the length checks above
        // and the exact-layout check below make a short slice impossible,
        // but untrusted-input decoding does not get to rely on that).
        let payload_end = bytes.len() - SEGMENT_FOOTER_BYTES as usize;
        if field(&bytes, 0, 4) != SEGMENT_MAGIC {
            return Err(StoreError::BadMagic { file: name.clone() });
        }
        if field(&bytes, bytes.len() - 4, bytes.len()) != SEGMENT_END_MAGIC {
            return Err(StoreError::BadMagic { file: name.clone() });
        }
        let version = le_u32(field(&bytes, 4, 8));
        if version != STORE_VERSION {
            return Err(StoreError::VersionSkew { file: name.clone(), found: version });
        }
        let footer_checksum = le_u64(field(&bytes, payload_end, payload_end + 8));
        let realized = fnv64(field(&bytes, 0, payload_end));
        if realized != footer_checksum || realized != entry.checksum {
            return Err(StoreError::ChecksumMismatch { file: name.clone() });
        }

        // Header fields (now trustworthy modulo save-time bugs, which the
        // structural cross-checks below turn into typed errors).
        let declared_epoch = le_u32(field(&bytes, 8, 12));
        let start = le_u32(field(&bytes, 12, 16));
        let sets = le_u32(field(&bytes, 16, 20));
        let entries = le_u64(field(&bytes, 20, 28));
        let edges_delta = le_u64(field(&bytes, 28, 36));
        let width = le_u32(field(&bytes, 36, 40));
        if declared_epoch as usize != epoch {
            return bad(format!("declares epoch {declared_epoch}, expected {epoch}"));
        }
        if start != prev_bound {
            return bad(format!("starts at set {start}, previous epoch ended at {prev_bound}"));
        }
        if entry.boundary <= prev_bound || sets != entry.boundary - prev_bound {
            return bad(format!(
                "{sets} sets does not span boundary {} → {}",
                prev_bound, entry.boundary
            ));
        }
        if edges_delta != entry.edges_total - prev_edges {
            return bad(format!(
                "edge delta {edges_delta} disagrees with manifest totals {} → {}",
                prev_edges, entry.edges_total
            ));
        }
        if width != 4 && width != 8 {
            return bad(format!("offset width {width} (expected 4 or 8)"));
        }
        let expect_len =
            SEGMENT_HEADER_BYTES + sets as u64 * width as u64 + entries * 4 + SEGMENT_FOOTER_BYTES;
        if bytes.len() as u64 != expect_len {
            return bad(format!("{} bytes for a declared layout of {expect_len}", bytes.len()));
        }

        // Offsets: rebased per-set ends, nondecreasing, closing exactly
        // at the entry count.
        let offsets_end = SEGMENT_HEADER_BYTES as usize + sets as usize * width as usize;
        let raw = field(&bytes, SEGMENT_HEADER_BYTES as usize, offsets_end);
        let mut set_ends = Vec::with_capacity(sets as usize);
        if width == 4 {
            set_ends.extend(raw.chunks_exact(4).map(|c| le_u32(c) as u64));
        } else {
            set_ends.extend(raw.chunks_exact(8).map(le_u64));
        }
        let mut prev = 0u64;
        for (i, &end) in set_ends.iter().enumerate() {
            if end < prev {
                return bad(format!("offset of set {i} decreases ({prev} → {end})"));
            }
            prev = end;
        }
        if prev != entries {
            return bad(format!("offsets close at {prev}, header declares {entries} entries"));
        }

        // Node data, bounded by the pool's node universe (the bound is
        // folded into the decode pass: one max-tracking sweep instead of
        // a separate validation scan over megabytes of ids).
        let raw = field(&bytes, offsets_end, payload_end);
        let mut data = Vec::with_capacity(entries as usize);
        let mut max_id = 0u32;
        data.extend(raw.chunks_exact(4).map(|c| {
            let v = le_u32(c);
            max_id = max_id.max(v);
            v
        }));
        if max_id >= num_nodes && !data.is_empty() {
            return bad(format!("node id {max_id} out of universe (n = {num_nodes})"));
        }
        Ok((data, set_ends, edges_delta))
    }

    fn read_manifest(&self) -> Result<Manifest, StoreError> {
        let bytes = read_file(&self.dir, MANIFEST)?;
        decode_manifest(&bytes)
    }
}

/// The save-time drift guard: the pool must be fully sealed and its
/// epoch metadata must agree with the arena it describes. Catching this
/// here turns a would-be silently corrupt store into a typed error.
fn validate_pool_metadata(pool: &RrCollection) -> Result<(), StoreError> {
    let drift = |detail: String| Err(StoreError::MetadataDrift { detail });
    let bounds = pool.epoch_boundaries();
    let edge_totals = pool.epoch_edge_totals();
    let (data, offsets) = pool.arena();

    if let Some(w) = bounds.windows(2).find(|w| w[0] >= w[1]) {
        return drift(format!("epoch boundaries not strictly ascending: {} → {}", w[0], w[1]));
    }
    let sealed = bounds.last().copied().unwrap_or(0) as usize;
    if sealed != pool.len() {
        return drift(format!(
            "pool is not fully sealed: {} of {} sets inside epochs (seal() before save)",
            sealed,
            pool.len()
        ));
    }
    if offsets.len() != pool.len() + 1 || offsets.first() != Some(&0) {
        return drift(format!(
            "arena offsets malformed: {} offsets for {} sets",
            offsets.len(),
            pool.len()
        ));
    }
    if let Some(i) = offsets.windows(2).position(|w| w[1] < w[0]) {
        return drift(format!("arena offset of set {} decreases", i + 1));
    }
    if offsets.last().copied().unwrap_or(0) != data.len() as u64 {
        return drift(format!(
            "arena offsets close at {} but the arena holds {} entries",
            offsets.last().copied().unwrap_or(0),
            data.len()
        ));
    }
    if edge_totals.len() != bounds.len() {
        return drift(format!(
            "{} epoch edge totals for {} boundaries",
            edge_totals.len(),
            bounds.len()
        ));
    }
    if let Some(w) = edge_totals.windows(2).find(|w| w[0] > w[1]) {
        return drift(format!("epoch edge totals decrease: {} → {}", w[0], w[1]));
    }
    if edge_totals.last().copied().unwrap_or(0) != pool.total_edges_examined() {
        return drift(format!(
            "last epoch edge total {} disagrees with the pool total {}",
            edge_totals.last().copied().unwrap_or(0),
            pool.total_edges_examined()
        ));
    }
    Ok(())
}

/// Serializes one sealed epoch (sets `lo..hi` of the arena) into its
/// segment byte layout, footer included.
fn encode_segment(
    epoch: u32,
    lo: u32,
    hi: u32,
    data: &[NodeId],
    offsets: &[u64],
    edges_delta: u64,
) -> Vec<u8> {
    // `lo`/`hi` come from `validate_pool_metadata`-checked epoch
    // boundaries, so the arena lookups always hit; the `.get()` defaults
    // keep the save path panic-free regardless (a violated invariant
    // would produce a structurally-empty segment the loader's
    // cross-checks reject, not a crash).
    let base = offsets.get(lo as usize).copied().unwrap_or_default();
    let end = offsets.get(hi as usize).copied().unwrap_or_default();
    let sets = (hi - lo) as u64;
    let entries = end - base;
    // Width-adaptive offsets, preserved verbatim on the round trip: u32
    // whenever the epoch's entry count fits (the overwhelmingly common
    // case), u64 beyond 4 G entries per epoch.
    let width_tag: u32 = if entries <= u32::MAX as u64 { 4 } else { 8 };
    let width = u64::from(width_tag);
    let len = SEGMENT_HEADER_BYTES + sets * width + entries * 4 + SEGMENT_FOOTER_BYTES;
    let mut out = Vec::with_capacity(len as usize);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&lo.to_le_bytes());
    out.extend_from_slice(&(hi - lo).to_le_bytes());
    out.extend_from_slice(&entries.to_le_bytes());
    out.extend_from_slice(&edges_delta.to_le_bytes());
    out.extend_from_slice(&width_tag.to_le_bytes());
    for &o in offsets.iter().skip(lo as usize + 1).take(sets as usize) {
        let rebased = o - base;
        if width == 4 {
            out.extend_from_slice(&(rebased as u32).to_le_bytes());
        } else {
            out.extend_from_slice(&rebased.to_le_bytes());
        }
    }
    for &v in data.iter().skip(base as usize).take((end - base) as usize) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(SEGMENT_END_MAGIC);
    debug_assert_eq!(out.len() as u64, len);
    out
}

fn encode_manifest(fingerprint: &StoreFingerprint, epochs: &[EpochEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&STORE_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.num_nodes.to_le_bytes());
    out.extend_from_slice(&fingerprint.graph_hash.to_le_bytes());
    out.extend_from_slice(&fingerprint.rng_seed.to_le_bytes());
    out.extend_from_slice(&fingerprint.gamma.to_bits().to_le_bytes());
    put_string(&mut out, &fingerprint.model);
    out.extend_from_slice(&narrow::small_count(fingerprint.meta.len()).to_le_bytes());
    for (k, v) in &fingerprint.meta {
        put_string(&mut out, k);
        put_string(&mut out, v);
    }
    out.extend_from_slice(&narrow::small_count(epochs.len()).to_le_bytes());
    for e in epochs {
        out.extend_from_slice(&e.boundary.to_le_bytes());
        out.extend_from_slice(&e.edges_total.to_le_bytes());
        out.extend_from_slice(&e.file_len.to_le_bytes());
        out.extend_from_slice(&e.checksum.to_le_bytes());
    }
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<Manifest, StoreError> {
    let mut c = Cursor { bytes, pos: 0 };
    let file = || MANIFEST.to_string();
    let bad = |detail: String| Err(StoreError::BadFormat { file: MANIFEST.to_string(), detail });

    if c.take(4)? != MANIFEST_MAGIC {
        return Err(StoreError::BadMagic { file: file() });
    }
    let version = c.u32()?;
    if version != STORE_VERSION {
        return Err(StoreError::VersionSkew { file: file(), found: version });
    }
    // Self-checksum first: everything after the version gate is only
    // interpreted once the whole file hashes clean.
    if bytes.len() < 8 {
        return Err(StoreError::Truncated { file: file() });
    }
    let declared = le_u64(field(bytes, bytes.len() - 8, bytes.len()));
    let mut h = Fnv64::new();
    h.write(field(bytes, 0, bytes.len() - 8));
    if h.finish() != declared {
        return Err(StoreError::ChecksumMismatch { file: file() });
    }

    let num_nodes = c.u32()?;
    let graph_hash = c.u64()?;
    let rng_seed = c.u64()?;
    let gamma = f64::from_bits(c.u64()?);
    let model = c.string()?;
    let meta_len = c.u32()? as usize;
    if meta_len > MAX_META {
        return bad(format!("{meta_len} metadata pairs exceeds the cap {MAX_META}"));
    }
    let mut meta = Vec::with_capacity(meta_len);
    for _ in 0..meta_len {
        let k = c.string()?;
        let v = c.string()?;
        meta.push((k, v));
    }
    let epoch_len = c.u32()? as usize;
    if epoch_len > MAX_EPOCHS {
        return bad(format!("{epoch_len} epochs exceeds the cap {MAX_EPOCHS}"));
    }
    let mut epochs: Vec<EpochEntry> = Vec::with_capacity(epoch_len);
    for i in 0..epoch_len {
        let entry = EpochEntry {
            boundary: c.u32()?,
            edges_total: c.u64()?,
            file_len: c.u64()?,
            checksum: c.u64()?,
        };
        if let Some(prev) = epochs.last() {
            if entry.boundary <= prev.boundary || entry.edges_total < prev.edges_total {
                return bad(format!("epoch table not ascending at entry {i}"));
            }
        } else if entry.boundary == 0 {
            return bad("epoch 0 has boundary 0".into());
        }
        epochs.push(entry);
    }
    if c.pos != bytes.len() - 8 {
        return bad(format!(
            "{} bytes of trailing garbage before the checksum",
            bytes.len() - 8 - c.pos
        ));
    }
    Ok(Manifest {
        fingerprint: StoreFingerprint { graph_hash, num_nodes, model, rng_seed, gamma, meta },
        epochs,
    })
}

/// Bounds-checked little-endian reader over a byte slice; running out of
/// bytes is [`StoreError::Truncated`] on the manifest.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        // The trailing 8 checksum bytes are not part of the payload.
        let payload_len = self.bytes.len().saturating_sub(8);
        let out = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= payload_len)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or(StoreError::Truncated { file: MANIFEST.to_string() })?;
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(le_u32(self.take(4)?))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(le_u64(self.take(8)?))
    }

    fn string(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        if len > MAX_STRING {
            return Err(StoreError::BadFormat {
                file: MANIFEST.to_string(),
                detail: format!("string of {len} bytes exceeds the cap {MAX_STRING}"),
            });
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| StoreError::BadFormat {
            file: MANIFEST.to_string(),
            detail: "string is not UTF-8".into(),
        })
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_STRING, "manifest strings are caller-bounded");
    out.extend_from_slice(&narrow::small_count(s.len()).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// `bytes[lo..hi]`, clamped: an out-of-bounds or inverted range yields
/// the empty slice instead of panicking. Decode paths validate lengths
/// before reading fields, so the clamp never fires on a well-formed
/// file — it exists so that *no* input, however malformed, can reach an
/// indexing panic (the workspace panic-path contract).
fn field(bytes: &[u8], lo: usize, hi: usize) -> &[u8] {
    bytes.get(lo..hi).unwrap_or_default()
}

/// Little-endian `u32` from the first 4 bytes, zero-extending a short
/// slice (callers size their [`field`] reads; a short slice only occurs
/// downstream of a clamped out-of-bounds read, which the structural
/// checks then reject).
fn le_u32(b: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    u32::from_le_bytes(buf)
}

/// Little-endian `u64` from the first 8 bytes, zero-extending like
/// [`le_u32`].
fn le_u64(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    for (d, s) in buf.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from_le_bytes(buf)
}

fn segment_name(epoch: usize) -> String {
    format!("epoch-{epoch:05}.rr")
}

fn read_file(dir: &Path, name: &str) -> Result<Vec<u8>, StoreError> {
    match fs::read(dir.join(name)) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            Err(StoreError::Missing { file: name.to_string() })
        }
        Err(e) => Err(StoreError::Io { file: name.to_string(), source: e }),
    }
}

/// The commit primitive: write `name.tmp`, fsync, rename over `name`,
/// fsync the directory (unix). Readers either see the old file or the
/// complete new one — never a torn write.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let run = || -> io::Result<()> {
        let tmp = dir.join(format!("{name}.tmp"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, dir.join(name))?;
        #[cfg(unix)]
        fs::File::open(dir)?.sync_all()?;
        Ok(())
    };
    run().map_err(|e| StoreError::Io { file: name.to_string(), source: e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::RrMeta;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store(tag: &str) -> PoolStore {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sns-store-unit-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        PoolStore::at(dir)
    }

    fn meta(root: NodeId) -> RrMeta {
        RrMeta { root, edges_examined: 2 }
    }

    /// A small pool with `epochs` sealed epochs of `per_epoch` sets.
    fn pool(epochs: usize, per_epoch: usize) -> RrCollection {
        let mut rc = RrCollection::new(16);
        for e in 0..epochs {
            for i in 0..per_epoch {
                let a = ((e * per_epoch + i) % 16) as NodeId;
                let b = ((e * 7 + i * 3) % 16) as NodeId;
                rc.push(&[a, b, (a + b) % 16], meta(a));
            }
            let _ = rc.seal();
        }
        rc
    }

    fn fp() -> StoreFingerprint {
        StoreFingerprint {
            graph_hash: 0xdead_beef,
            num_nodes: 16,
            model: "IC".into(),
            rng_seed: 42,
            gamma: 16.0,
            meta: vec![("rule".into(), "dssa".into())],
        }
    }

    fn cleanup(store: &PoolStore) {
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn round_trip_preserves_pool_and_fingerprint() {
        let store = temp_store("roundtrip");
        let rc = pool(3, 40);
        let stats = store.save(&rc, &fp()).unwrap();
        assert_eq!(stats.epochs_written, 3);
        assert_eq!(stats.epochs_reused, 0);
        assert!(stats.bytes_written > 0);

        let (loaded, got_fp) = store.load(1).unwrap();
        assert_eq!(got_fp, fp());
        assert_eq!(loaded.len(), rc.len());
        assert_eq!(loaded.arena(), rc.arena());
        assert_eq!(loaded.epoch_boundaries(), rc.epoch_boundaries());
        assert_eq!(loaded.epoch_edge_totals(), rc.epoch_edge_totals());
        assert_eq!(loaded.total_edges_examined(), rc.total_edges_examined());
        for v in 0..16 {
            assert_eq!(
                loaded.sets_containing(v).to_vec(),
                rc.sets_containing(v).to_vec(),
                "node {v}"
            );
        }
        cleanup(&store);
    }

    #[test]
    fn incremental_save_writes_only_new_epochs() {
        let store = temp_store("incremental");
        let mut rc = pool(2, 30);
        store.save(&rc, &fp()).unwrap();
        // grow one epoch and save again
        for i in 0..30 {
            rc.push(&[(i % 16) as NodeId], meta(0));
        }
        let _ = rc.seal();
        let stats = store.save(&rc, &fp()).unwrap();
        assert_eq!(stats.epochs_reused, 2);
        assert_eq!(stats.epochs_written, 1);
        let (loaded, _) = store.load(1).unwrap();
        assert_eq!(loaded.arena(), rc.arena());
        assert_eq!(loaded.epoch_boundaries(), rc.epoch_boundaries());
        cleanup(&store);
    }

    #[test]
    fn roots_meta_keys_are_sampling_identity() {
        let base = fp();
        let mut with_ck = base.clone();
        with_ck.meta.push(("roots".into(), "benefit-weighted".into()));
        with_ck.meta.push(("roots_checksum".into(), "0x00000000deadbeef".into()));
        with_ck.matches_sampling(&with_ck.clone()).unwrap();

        // A different vector checksum under identical scalars (same Γ!)
        // must fail loudly, naming the key.
        let mut other = with_ck.clone();
        other.meta.retain(|(k, _)| k != "roots_checksum");
        other.meta.push(("roots_checksum".into(), "0x00000000cafebabe".into()));
        match with_ck.matches_sampling(&other) {
            Err(StoreError::FingerprintMismatch { detail }) => {
                assert!(detail.contains("roots_checksum"), "{detail}")
            }
            outcome => panic!("expected FingerprintMismatch, got {outcome:?}"),
        }

        // Absent-vs-present is a mismatch too: a store without a checksum
        // cannot prove it was sampled under the caller's vector.
        match base.matches_sampling(&with_ck) {
            Err(StoreError::FingerprintMismatch { detail }) => {
                assert!(detail.contains("<absent>"), "{detail}")
            }
            outcome => panic!("expected FingerprintMismatch, got {outcome:?}"),
        }

        // Free-form provenance keys stay outside the sampling identity.
        let mut noted = with_ck.clone();
        noted.meta.push(("note".into(), "re-baked overnight".into()));
        noted.matches_sampling(&with_ck).unwrap();
    }

    #[test]
    fn unsealed_pool_is_metadata_drift() {
        let store = temp_store("unsealed");
        let mut rc = pool(1, 10);
        rc.push(&[1], meta(1)); // pending past the last boundary
        match store.save(&rc, &fp()) {
            Err(StoreError::MetadataDrift { detail }) => {
                assert!(detail.contains("not fully sealed"), "{detail}")
            }
            other => panic!("expected MetadataDrift, got {other:?}"),
        }
        cleanup(&store);
    }

    #[test]
    fn drifted_offsets_are_caught_at_save_time() {
        let store = temp_store("drift-offsets");
        let mut rc = pool(2, 10);
        rc.corrupt_last_offset_for_test();
        assert!(matches!(store.save(&rc, &fp()), Err(StoreError::MetadataDrift { .. })));
        cleanup(&store);
    }

    #[test]
    fn drifted_edge_totals_are_caught_at_save_time() {
        let store = temp_store("drift-edges");
        let mut rc = pool(2, 10);
        rc.truncate_epoch_edges_for_test();
        assert!(matches!(store.save(&rc, &fp()), Err(StoreError::MetadataDrift { .. })));
        cleanup(&store);
    }

    #[test]
    fn fingerprint_num_nodes_must_match_pool() {
        let store = temp_store("fp-nodes");
        let rc = pool(1, 10);
        let wrong = StoreFingerprint { num_nodes: 17, ..fp() };
        assert!(matches!(store.save(&rc, &wrong), Err(StoreError::MetadataDrift { .. })));
        cleanup(&store);
    }

    #[test]
    fn saving_different_samples_over_a_store_is_rejected() {
        let store = temp_store("overwrite");
        store.save(&pool(1, 10), &fp()).unwrap();
        let other = StoreFingerprint { rng_seed: 43, ..fp() };
        match store.save(&pool(1, 10), &other) {
            Err(StoreError::FingerprintMismatch { detail }) => {
                assert!(detail.contains("rng_seed"), "{detail}")
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        cleanup(&store);
    }

    #[test]
    fn missing_store_reads_as_missing() {
        let store = temp_store("missing");
        assert!(!store.exists());
        assert!(matches!(store.load(1), Err(StoreError::Missing { .. })));
        assert!(matches!(store.read_fingerprint(), Err(StoreError::Missing { .. })));
        cleanup(&store);
    }

    #[test]
    fn empty_pool_round_trips() {
        let store = temp_store("empty");
        let rc = RrCollection::new(16);
        store.save(&rc, &fp()).unwrap();
        let (loaded, _) = store.load(1).unwrap();
        assert_eq!(loaded.len(), 0);
        assert!(loaded.epoch_boundaries().is_empty());
        cleanup(&store);
    }

    #[test]
    fn recovery_returns_the_valid_prefix() {
        let store = temp_store("recover");
        let rc = pool(4, 25);
        store.save(&rc, &fp()).unwrap();
        // damage epoch 2: flip one payload bit
        let path = store.dir().join(segment_name(2));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();

        assert!(matches!(store.load(1), Err(StoreError::ChecksumMismatch { .. })));
        let (prefix, _, recovery) = store.load_recovering(1).unwrap();
        assert_eq!(recovery, Recovery::Recovered { epochs_lost: 2, sets_lost: 50 });
        assert_eq!(prefix.len(), 50);
        assert_eq!(prefix.epoch_boundaries(), &rc.epoch_boundaries()[..2]);
        // the prefix is bit-identical to the original's first two epochs
        let (pd, po) = prefix.arena();
        let (od, oo) = rc.arena();
        assert_eq!(pd, &od[..pd.len()]);
        assert_eq!(po, &oo[..po.len()]);
        cleanup(&store);
    }

    #[test]
    fn segment_checksum_detects_every_single_bit_flip_in_a_small_store() {
        let store = temp_store("bitflips");
        let rc = pool(1, 3);
        store.save(&rc, &fp()).unwrap();
        let path = store.dir().join(segment_name(0));
        let pristine = fs::read(&path).unwrap();
        for byte in 0..pristine.len() {
            let mut dam = pristine.clone();
            dam[byte] ^= 1;
            fs::write(&path, &dam).unwrap();
            assert!(store.load(1).is_err(), "flip at byte {byte} loaded cleanly");
        }
        fs::write(&path, &pristine).unwrap();
        assert!(store.load(1).is_ok());
        cleanup(&store);
    }
}
