//! Property-based tests for the RR pool, its two-tier inverted index and
//! greedy max-coverage.

use proptest::collection::vec;
use proptest::prelude::*;

use sns_diffusion::RrMeta;
use sns_graph::NodeId;
use sns_rrset::{
    max_coverage, max_coverage_naive, max_coverage_pre_refactor, max_coverage_range,
    max_coverage_with, GreedyScratch, RrCollection,
};

const N: u32 = 24;

fn meta() -> RrMeta {
    RrMeta { root: 0, edges_examined: 0 }
}

/// Strategy: a pool of up to 80 RR sets, each 1..6 distinct nodes.
fn pool_strategy() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    vec(vec(0u32..N, 1..6), 0..80).prop_map(|sets| {
        sets.into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect()
    })
}

fn build(sets: &[Vec<NodeId>]) -> RrCollection {
    let mut rc = RrCollection::new(N);
    for s in sets {
        rc.push(s, meta());
    }
    rc
}

/// Exhaustive best size-k coverage, for small instances.
fn exhaustive_best(rc: &RrCollection, k: usize) -> u64 {
    fn count(rc: &RrCollection, seeds: &[NodeId]) -> u64 {
        rc.coverage_of(seeds)
    }
    let nodes: Vec<NodeId> = (0..N).collect();
    let mut best = 0;
    // choose(24, k) is fine for k <= 3
    fn rec(
        rc: &RrCollection,
        nodes: &[NodeId],
        k: usize,
        start: usize,
        current: &mut Vec<NodeId>,
        best: &mut u64,
    ) {
        if current.len() == k {
            *best = (*best).max(count(rc, current));
            return;
        }
        for i in start..nodes.len() {
            current.push(nodes[i]);
            rec(rc, nodes, k, i + 1, current, best);
            current.pop();
        }
    }
    let mut cur = Vec::new();
    rec(rc, &nodes, k, 0, &mut cur, &mut best);
    best
}

proptest! {
    /// Lazy greedy and naive greedy agree exactly (same deterministic
    /// tie-breaking).
    #[test]
    fn lazy_equals_naive(sets in pool_strategy(), k in 1usize..6) {
        let rc = build(&sets);
        let a = max_coverage(&rc, k);
        let b = max_coverage_naive(&rc, k);
        prop_assert_eq!(a.covered, b.covered);
        prop_assert_eq!(a.seeds, b.seeds);
        prop_assert_eq!(a.marginal_gains, b.marginal_gains);
    }

    /// The greedy cover is consistent with a direct coverage query over
    /// its seeds.
    #[test]
    fn reported_coverage_is_real(sets in pool_strategy(), k in 1usize..6) {
        let rc = build(&sets);
        let r = max_coverage(&rc, k);
        prop_assert_eq!(r.covered, rc.coverage_of(&r.seeds));
        let gain_sum: u64 = r.marginal_gains.iter().sum();
        prop_assert_eq!(r.covered, gain_sum);
    }

    /// Greedy achieves at least (1 - 1/e) of the exhaustive optimum
    /// (Nemhauser–Wolsey); checked on small k where exhaustive search is
    /// feasible.
    #[test]
    fn greedy_approximation_bound(sets in pool_strategy(), k in 1usize..4) {
        let rc = build(&sets);
        let greedy = max_coverage(&rc, k).covered as f64;
        let opt = exhaustive_best(&rc, k) as f64;
        prop_assert!(greedy >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9,
            "greedy {} below bound for opt {}", greedy, opt);
    }

    /// Coverage is monotone: more seeds never cover fewer sets.
    #[test]
    fn coverage_monotone(sets in pool_strategy(), k in 1usize..5) {
        let rc = build(&sets);
        let small = max_coverage(&rc, k);
        let large = max_coverage(&rc, k + 1);
        prop_assert!(large.covered >= small.covered);
    }

    /// Marginal gains are non-increasing (submodularity of coverage).
    #[test]
    fn marginal_gains_non_increasing(sets in pool_strategy(), k in 1usize..8) {
        let rc = build(&sets);
        let r = max_coverage(&rc, k);
        prop_assert!(r.marginal_gains.windows(2).all(|w| w[0] >= w[1]),
            "gains not monotone: {:?}", r.marginal_gains);
    }

    /// coverage_of over a union of singleton queries upper-bounds the
    /// union query (inclusion-exclusion sanity).
    #[test]
    fn coverage_subadditive(sets in pool_strategy(), a in 0u32..N, b in 0u32..N) {
        let rc = build(&sets);
        let together = rc.coverage_of(&[a, b]);
        let separate = rc.coverage_of(&[a]) + rc.coverage_of(&[b]);
        prop_assert!(together <= separate);
        prop_assert!(together >= rc.coverage_of(&[a]));
    }

    /// `max_coverage_range` over the full id range is exactly
    /// `max_coverage` — same seeds, gains and coverage (both run on the
    /// coverage view; this pins the range plumbing, not just totals).
    #[test]
    fn full_range_equals_max_coverage(sets in pool_strategy(), k in 1usize..6) {
        let rc = build(&sets);
        let full = max_coverage_range(&rc, k, 0..rc.len() as u32);
        let plain = max_coverage(&rc, k);
        prop_assert_eq!(full, plain);
    }

    /// A range starting at a nonzero offset must behave exactly like a
    /// fresh pool holding only the sets of that range: the coverage
    /// view's slot rebasing cannot leak absolute ids anywhere.
    #[test]
    fn offset_range_equals_truncated_pool(
        sets in pool_strategy(),
        lo_frac in 0.0f64..=1.0,
        hi_frac in 0.0f64..=1.0,
        k in 1usize..6,
    ) {
        let rc = build(&sets);
        let total = rc.len() as u32;
        let lo = (f64::from(total) * lo_frac) as u32;
        let hi = (f64::from(total) * hi_frac) as u32;
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let ranged = max_coverage_range(&rc, k, lo..hi);
        let sliced = build(&sets[lo as usize..hi as usize]);
        let expect = max_coverage(&sliced, k);
        prop_assert_eq!(ranged, expect);
    }

    /// Empty ranges (anywhere in the pool) cover nothing and only pad.
    #[test]
    fn empty_range_only_pads(sets in pool_strategy(), at_frac in 0.0f64..=1.0, k in 0usize..6) {
        let rc = build(&sets);
        let at = (f64::from(rc.len() as u32) * at_frac) as u32;
        let r = max_coverage_range(&rc, k, at..at);
        prop_assert_eq!(r.covered, 0);
        prop_assert_eq!(r.seeds.len(), k.min(N as usize));
        prop_assert!(r.marginal_gains.iter().all(|&g| g == 0));
    }

    /// One `GreedyScratch` reused across arbitrary pools, ranges and k
    /// (the SSA/D-SSA usage pattern) never contaminates later runs.
    #[test]
    fn scratch_reuse_matches_fresh_runs(
        pools in proptest::collection::vec((pool_strategy(), 1usize..6), 1..6),
    ) {
        let mut scratch = GreedyScratch::new();
        for (sets, k) in pools {
            let rc = build(&sets);
            let half = rc.len() as u32 / 2;
            let reused = max_coverage_with(&rc, k, 0..half, &mut scratch);
            let fresh = max_coverage_range(&rc, k, 0..half);
            prop_assert_eq!(reused, fresh);
        }
    }

    /// Two-tier index ≡ naive rescan: across random interleavings of
    /// pushes and forced epoch seals, `sets_containing_in` must return
    /// exactly the ids a linear scan of the arena finds, ascending, for
    /// every node and query range — regardless of how the ids are split
    /// between the sealed CSR tier and the pending chains.
    #[test]
    fn index_matches_naive_rescan(
        ops in vec((vec(0u32..N, 1..6), 0u32..8), 1..60),
        lo_frac in 0.0f64..=1.0,
        hi_frac in 0.0f64..=1.0,
    ) {
        let mut rc = RrCollection::new(N);
        let mut sets: Vec<Vec<NodeId>> = Vec::new();
        for (s, seal_die) in ops {
            let mut s = s.clone();
            s.sort_unstable();
            s.dedup();
            rc.push(&s, meta());
            sets.push(s);
            // seal with probability 1/8 → interleavings cover pools that
            // are fully sealed, fully pending, and everything between
            if seal_die == 0 {
                let _ = rc.seal();
            }
        }
        let total = sets.len() as u32;
        let lo = (f64::from(total) * lo_frac) as u32;
        let hi = (f64::from(total) * hi_frac) as u32;
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        for v in 0..N {
            let expect_all: Vec<u32> = (0..total)
                .filter(|&id| sets[id as usize].contains(&v))
                .collect();
            let expect_range: Vec<u32> =
                expect_all.iter().copied().filter(|&id| id >= lo && id < hi).collect();
            prop_assert_eq!(rc.sets_containing(v).to_vec(), expect_all);
            let got = rc.sets_containing_in(v, lo..hi);
            prop_assert_eq!(got.len(), expect_range.len());
            prop_assert_eq!(got.to_vec(), expect_range);
        }
    }
}

/// `extend_parallel` must be observably bit-identical to
/// `extend_sequential` for 1, 2 and 8 worker threads — same sets, same
/// index responses, same accounting — including when growth happens in
/// several increments (the SSA/D-SSA doubling schedule).
#[test]
fn extend_parallel_bit_identical_across_thread_counts() {
    use sns_diffusion::{Model, RootDist, RrSampler};
    use sns_graph::{gen, WeightModel};

    let g = gen::erdos_renyi(250, 2000, 9).build(WeightModel::WeightedCascade).unwrap();
    for model in [Model::IndependentCascade, Model::LinearThreshold] {
        let sampler = RrSampler::with_config(&g, model, RootDist::Uniform, 13);
        let mut seq = RrCollection::new(250);
        let mut s = sampler.clone();
        // grow in doubling increments like the algorithms do
        for (from, count) in [(0u64, 300u64), (300, 300), (600, 600)] {
            seq.extend_sequential(&mut s, from, count);
        }
        for threads in [1usize, 2, 8] {
            let mut par = RrCollection::new(250);
            for (from, count) in [(0u64, 300u64), (300, 300), (600, 600)] {
                par.extend_parallel(&sampler, from, count, threads);
            }
            assert_eq!(seq.len(), par.len(), "{model}: {threads} threads");
            assert_eq!(seq.total_nodes(), par.total_nodes());
            assert_eq!(seq.total_edges_examined(), par.total_edges_examined());
            assert_eq!(seq.sealed_sets(), par.sealed_sets());
            assert_eq!(seq.pending_sets(), par.pending_sets());
            assert_eq!(seq.memory_bytes(), par.memory_bytes());
            for id in 0..seq.len() {
                assert_eq!(seq.set(id), par.set(id), "{model}: set {id} differs");
            }
            for v in 0..250u32 {
                assert_eq!(
                    seq.sets_containing(v).to_vec(),
                    par.sets_containing(v).to_vec(),
                    "{model}: node {v} index differs at {threads} threads"
                );
            }
        }
    }
}

/// Acceptance criterion of the coverage-view refactor: on a 100k-node
/// Barabási–Albert pool, `max_coverage` (and the ranged/scratch entry
/// points SSA, D-SSA, IMM and TIM use) must return **bit-identical**
/// seeds, marginal gains and coverage to the pre-refactor lazy-heap
/// implementation — including on D-SSA-style half ranges and on a pool
/// whose index still has a pending chain tail.
#[test]
fn greedy_bit_identical_to_pre_refactor_on_100k_ba_pool() {
    use sns_diffusion::{Model, RootDist, RrSampler};
    use sns_graph::{gen, WeightModel};

    let g = gen::barabasi_albert(100_000, 4, gen::Orientation::RandomSingle, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let sampler = RrSampler::with_config(&g, Model::IndependentCascade, RootDist::Uniform, 3);
    let mut rc = RrCollection::new(g.num_nodes());
    rc.extend_parallel(&sampler, 0, 15_000, 8);
    // Leave a pending tail so the reference path also exercises the chain
    // tier the view replaces.
    {
        let mut s = sampler.clone();
        let mut rr = Vec::new();
        for i in 0..500u64 {
            let meta = s.sample(15_000 + i, &mut rr);
            rc.push(&rr, meta);
        }
    }
    assert!(rc.pending_sets() > 0, "pool must end with a pending chain tail");

    let total = rc.len() as u32;
    let mut scratch = GreedyScratch::new();
    for (k, range) in [
        (1, 0..total),
        (50, 0..total),
        (50, 0..total / 2),     // D-SSA find half
        (20, total / 3..total), // nonzero offset
    ] {
        let reference = max_coverage_pre_refactor(&rc, k, range.clone());
        let plain = max_coverage_range(&rc, k, range.clone());
        let reused = max_coverage_with(&rc, k, range.clone(), &mut scratch);
        assert_eq!(plain, reference, "k={k} range={range:?}");
        assert_eq!(reused, reference, "k={k} range={range:?} (scratch reuse)");
        if range == (0..total) {
            assert_eq!(max_coverage(&rc, k), reference, "k={k} full-pool entry point");
        }
    }
}

/// Acceptance criterion of the two-tier layout: on a 100k-node
/// Barabási–Albert pool the inverted index must cost at most half of
/// what the previous `Vec<Vec<u32>>` layout would (headers + capacity
/// slack measured on an actually-built per-node-Vec index).
#[test]
fn index_memory_halves_vs_per_node_vecs() {
    use sns_diffusion::{Model, RootDist, RrSampler};
    use sns_graph::{gen, WeightModel};

    let g = gen::barabasi_albert(100_000, 4, gen::Orientation::RandomSingle, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let sampler = RrSampler::with_config(&g, Model::IndependentCascade, RootDist::Uniform, 3);
    let mut rc = RrCollection::new(g.num_nodes());
    rc.extend_parallel(&sampler, 0, 15_000, 8);
    assert_eq!(rc.pending_sets(), 0, "a bulk extend past the threshold must seal");

    // Rebuild the pre-refactor index layout and measure it exactly.
    let mut node_to_sets: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes() as usize];
    for id in 0..rc.len() {
        for &v in rc.set(id) {
            node_to_sets[v as usize].push(id as u32);
        }
    }
    let old_bytes: u64 = node_to_sets
        .iter()
        .map(|v| {
            (v.capacity() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>()) as u64
        })
        .sum();
    let new_bytes = rc.index_memory_bytes();
    assert!(
        2 * new_bytes <= old_bytes,
        "two-tier index {new_bytes} B not ≥2× smaller than Vec<Vec<u32>> {old_bytes} B"
    );
}
