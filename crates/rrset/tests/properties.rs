//! Property-based tests for the RR pool and greedy max-coverage.

use proptest::collection::vec;
use proptest::prelude::*;

use sns_diffusion::RrMeta;
use sns_graph::NodeId;
use sns_rrset::{max_coverage, max_coverage_naive, RrCollection};

const N: u32 = 24;

fn meta() -> RrMeta {
    RrMeta { root: 0, edges_examined: 0 }
}

/// Strategy: a pool of up to 80 RR sets, each 1..6 distinct nodes.
fn pool_strategy() -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    vec(vec(0u32..N, 1..6), 0..80).prop_map(|sets| {
        sets.into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect()
    })
}

fn build(sets: &[Vec<NodeId>]) -> RrCollection {
    let mut rc = RrCollection::new(N);
    for s in sets {
        rc.push(s, meta());
    }
    rc
}

/// Exhaustive best size-k coverage, for small instances.
fn exhaustive_best(rc: &RrCollection, k: usize) -> u64 {
    fn count(rc: &RrCollection, seeds: &[NodeId]) -> u64 {
        rc.coverage_of(seeds)
    }
    let nodes: Vec<NodeId> = (0..N).collect();
    let mut best = 0;
    // choose(24, k) is fine for k <= 3
    fn rec(
        rc: &RrCollection,
        nodes: &[NodeId],
        k: usize,
        start: usize,
        current: &mut Vec<NodeId>,
        best: &mut u64,
    ) {
        if current.len() == k {
            *best = (*best).max(count(rc, current));
            return;
        }
        for i in start..nodes.len() {
            current.push(nodes[i]);
            rec(rc, nodes, k, i + 1, current, best);
            current.pop();
        }
    }
    let mut cur = Vec::new();
    rec(rc, &nodes, k, 0, &mut cur, &mut best);
    best
}

proptest! {
    /// Lazy greedy and naive greedy agree exactly (same deterministic
    /// tie-breaking).
    #[test]
    fn lazy_equals_naive(sets in pool_strategy(), k in 1usize..6) {
        let rc = build(&sets);
        let a = max_coverage(&rc, k);
        let b = max_coverage_naive(&rc, k);
        prop_assert_eq!(a.covered, b.covered);
        prop_assert_eq!(a.seeds, b.seeds);
        prop_assert_eq!(a.marginal_gains, b.marginal_gains);
    }

    /// The greedy cover is consistent with a direct coverage query over
    /// its seeds.
    #[test]
    fn reported_coverage_is_real(sets in pool_strategy(), k in 1usize..6) {
        let rc = build(&sets);
        let r = max_coverage(&rc, k);
        prop_assert_eq!(r.covered, rc.coverage_of(&r.seeds));
        let gain_sum: u64 = r.marginal_gains.iter().sum();
        prop_assert_eq!(r.covered, gain_sum);
    }

    /// Greedy achieves at least (1 - 1/e) of the exhaustive optimum
    /// (Nemhauser–Wolsey); checked on small k where exhaustive search is
    /// feasible.
    #[test]
    fn greedy_approximation_bound(sets in pool_strategy(), k in 1usize..4) {
        let rc = build(&sets);
        let greedy = max_coverage(&rc, k).covered as f64;
        let opt = exhaustive_best(&rc, k) as f64;
        prop_assert!(greedy >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9,
            "greedy {} below bound for opt {}", greedy, opt);
    }

    /// Coverage is monotone: more seeds never cover fewer sets.
    #[test]
    fn coverage_monotone(sets in pool_strategy(), k in 1usize..5) {
        let rc = build(&sets);
        let small = max_coverage(&rc, k);
        let large = max_coverage(&rc, k + 1);
        prop_assert!(large.covered >= small.covered);
    }

    /// Marginal gains are non-increasing (submodularity of coverage).
    #[test]
    fn marginal_gains_non_increasing(sets in pool_strategy(), k in 1usize..8) {
        let rc = build(&sets);
        let r = max_coverage(&rc, k);
        prop_assert!(r.marginal_gains.windows(2).all(|w| w[0] >= w[1]),
            "gains not monotone: {:?}", r.marginal_gains);
    }

    /// coverage_of over a union of singleton queries upper-bounds the
    /// union query (inclusion-exclusion sanity).
    #[test]
    fn coverage_subadditive(sets in pool_strategy(), a in 0u32..N, b in 0u32..N) {
        let rc = build(&sets);
        let together = rc.coverage_of(&[a, b]);
        let separate = rc.coverage_of(&[a]) + rc.coverage_of(&[b]);
        prop_assert!(together <= separate);
        prop_assert!(together >= rc.coverage_of(&[a]));
    }
}
