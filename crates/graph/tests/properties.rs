//! Property-based tests for the graph substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use sns_graph::{AliasTable, DedupPolicy, GraphBuilder, WeightModel};

/// Arbitrary small edge list over up to 32 nodes.
fn edge_list() -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0u32..32, 0u32..32), 0..200)
}

proptest! {
    /// Forward and reverse CSR views always describe the same arc set.
    #[test]
    fn forward_reverse_consistent(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(32);
        b.extend_arcs(edges.iter().copied());
        let g = b.build(WeightModel::Constant(0.5)).unwrap();

        let mut fwd: Vec<(u32, u32)> = g.arcs().map(|(u, v, _)| (u, v)).collect();
        let mut rev: Vec<(u32, u32)> = (0..g.num_nodes())
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    /// Degree sums equal the arc count in both directions.
    #[test]
    fn degree_sums_match_arcs(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(32);
        b.extend_arcs(edges.iter().copied());
        let g = b.build(WeightModel::Constant(0.5)).unwrap();

        let dout: u64 = (0..g.num_nodes()).map(|v| u64::from(g.out_degree(v))).sum();
        let din: u64 = (0..g.num_nodes()).map(|v| u64::from(g.in_degree(v))).sum();
        prop_assert_eq!(dout, g.num_arcs());
        prop_assert_eq!(din, g.num_arcs());
    }

    /// Building is insensitive to edge insertion order (dedup = KeepLast
    /// can differ per-order on duplicate weights, so use distinct arcs).
    #[test]
    fn insertion_order_irrelevant(mut edges in edge_list(), seed in 0u64..1000) {
        edges.sort_unstable();
        edges.dedup();

        let mut b1 = GraphBuilder::new();
        b1.set_num_nodes(32);
        b1.extend_arcs(edges.iter().copied());
        let g1 = b1.build(WeightModel::WeightedCascade).unwrap();

        // pseudo-shuffle deterministically from the seed
        let mut shuffled = edges.clone();
        let len = shuffled.len();
        if len > 1 {
            let mut s = seed;
            for i in (1..len).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
        }
        let mut b2 = GraphBuilder::new();
        b2.set_num_nodes(32);
        b2.extend_arcs(shuffled.iter().copied());
        let g2 = b2.build(WeightModel::WeightedCascade).unwrap();

        let a1: Vec<_> = g1.arcs().collect();
        let a2: Vec<_> = g2.arcs().collect();
        prop_assert_eq!(a1, a2);
    }

    /// Weighted cascade always yields an LT-compatible graph with
    /// in-weight sums of exactly 1 for nodes with in-edges.
    #[test]
    fn weighted_cascade_lt_invariant(edges in edge_list()) {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(32);
        b.extend_arcs(edges.iter().copied());
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        prop_assert!(g.lt_compatible());
        for v in 0..g.num_nodes() {
            if g.in_degree(v) > 0 {
                prop_assert!((g.in_weight_sum(v) - 1.0).abs() < 1e-4);
            } else {
                prop_assert_eq!(g.in_weight_sum(v), 0.0);
            }
        }
    }

    /// The LT in-neighbor sampler partitions [0,1): every draw lands on a
    /// real in-neighbor or on None, and the neighbor frequencies respect
    /// the weights (checked structurally: returned node must be an
    /// in-neighbor).
    #[test]
    fn lt_sampler_returns_in_neighbors(edges in edge_list(), r in 0.0f32..1.0) {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(32);
        b.extend_arcs(edges.iter().copied());
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        for v in 0..g.num_nodes() {
            match g.sample_in_neighbor_lt(v, r) {
                Some(u) => prop_assert!(g.in_neighbors(v).contains(&u)),
                None => prop_assert!(r >= g.in_weight_sum(v) - 1e-5),
            }
        }
    }

    /// SumClamped dedup never produces weights above 1 or below either
    /// input.
    #[test]
    fn sum_clamped_bounds(w1 in 0.0f32..=1.0, w2 in 0.0f32..=1.0) {
        let mut b = GraphBuilder::new();
        b.dedup_policy(DedupPolicy::SumClamped);
        b.add_edge(0, 1, w1);
        b.add_edge(0, 1, w2);
        let g = b.build(WeightModel::Provided).unwrap();
        let w = g.out_weights(0)[0];
        prop_assert!(w <= 1.0 + 1e-6);
        prop_assert!(w >= w1.max(w2) - 1e-6 || w == 1.0);
    }

    /// Binary IO round-trips arbitrary graphs bit-exactly.
    #[test]
    fn binary_roundtrip(edges in edge_list(), weights in vec(0.0f32..=1.0, 200)) {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(32);
        for (i, &(u, v)) in edges.iter().enumerate() {
            b.add_edge(u, v, weights[i % weights.len()]);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let mut buf = Vec::new();
        sns_graph::io::write_binary(&g, &mut buf).unwrap();
        let g2 = sns_graph::io::read_binary(&buf[..]).unwrap();
        let a1: Vec<_> = g.arcs().collect();
        let a2: Vec<_> = g2.arcs().collect();
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
    }

    /// Alias tables never return a zero-weight category.
    #[test]
    fn alias_skips_zero_weights(weights in vec(0.0f64..10.0, 1..50), seed in 0u64..100) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = t.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "drew zero-weight category {}", i);
        }
    }
}
