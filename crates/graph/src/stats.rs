//! Graph statistics — the quantities reported in Table 2 of the paper.

use crate::Graph;

/// Summary statistics of a graph, printable as a Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: u32,
    /// Directed arc count.
    pub arcs: u64,
    /// Average out-degree (`arcs / nodes`).
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Nodes with neither in- nor out-edges.
    pub isolated_nodes: u32,
    /// Size of the largest weakly connected component (real social
    /// networks — and credible stand-ins — have a giant one).
    pub largest_wcc: u32,
}

impl GraphStats {
    /// Computes statistics in one pass over the offset arrays plus a
    /// union-find sweep for the weak components.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut max_out = 0u32;
        let mut max_in = 0u32;
        let mut isolated = 0u32;
        for v in 0..n {
            let (dout, din) = (g.out_degree(v), g.in_degree(v));
            max_out = max_out.max(dout);
            max_in = max_in.max(din);
            if dout == 0 && din == 0 {
                isolated += 1;
            }
        }
        GraphStats {
            nodes: n,
            arcs: g.num_arcs(),
            avg_out_degree: g.num_arcs() as f64 / f64::from(n.max(1)),
            max_out_degree: max_out,
            max_in_degree: max_in,
            isolated_nodes: isolated,
            largest_wcc: largest_weak_component(g),
        }
    }
}

/// Size of the largest weakly connected component (union-find with path
/// halving and union by size).
pub fn largest_weak_component(g: &Graph) -> u32 {
    let n = g.num_nodes() as usize;
    if n == 0 {
        return 0;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<u32> = vec![1; n];

    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize]; // path halving
            v = parent[v as usize];
        }
        v
    }

    for u in 0..g.num_nodes() {
        for &v in g.out_neighbors(u) {
            let (mut a, mut b) = (find(&mut parent, u), find(&mut parent, v));
            if a == b {
                continue;
            }
            if size[a as usize] < size[b as usize] {
                std::mem::swap(&mut a, &mut b);
            }
            parent[b as usize] = a;
            size[a as usize] += size[b as usize];
        }
    }
    (0..g.num_nodes())
        .filter(|&v| find(&mut parent, v) == v)
        .map(|v| size[v as usize])
        .max()
        .unwrap_or(0)
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} arcs, avg degree {:.1}, max out/in degree {}/{}, {} isolated, largest WCC {}",
            self.nodes,
            self.arcs,
            self.avg_out_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.isolated_nodes,
            self.largest_wcc
        )
    }
}

/// Log₂-binned out-degree histogram, for eyeballing power-law shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts nodes with out-degree in `[2^i, 2^(i+1))`;
    /// `buckets[0]` additionally includes degree 0 and 1.
    pub buckets: Vec<u64>,
}

impl DegreeHistogram {
    /// Builds the histogram of out-degrees.
    pub fn out_degrees(g: &Graph) -> Self {
        let mut buckets = vec![0u64; 33];
        for v in 0..g.num_nodes() {
            let d = g.out_degree(v);
            let b = if d <= 1 { 0 } else { (31 - d.leading_zeros()) as usize };
            buckets[b] += 1;
        }
        while buckets.len() > 1 && *buckets.last().unwrap() == 0 {
            buckets.pop();
        }
        DegreeHistogram { buckets }
    }

    /// Builds the histogram of in-degrees.
    pub fn in_degrees(g: &Graph) -> Self {
        let mut buckets = vec![0u64; 33];
        for v in 0..g.num_nodes() {
            let d = g.in_degree(v);
            let b = if d <= 1 { 0 } else { (31 - d.leading_zeros()) as usize };
            buckets[b] += 1;
        }
        while buckets.len() > 1 && *buckets.last().unwrap() == 0 {
            buckets.pop();
        }
        DegreeHistogram { buckets }
    }
}

impl std::fmt::Display for DegreeHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = if i == 0 { 0 } else { 1u64 << i };
            let hi = (1u64 << (i + 1)) - 1;
            writeln!(f, "  deg {lo:>8}..={hi:<8} : {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, WeightModel};

    fn star(n: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for v in 1..n {
            b.add_arc(0, v);
        }
        b.build(WeightModel::Constant(0.1)).unwrap()
    }

    #[test]
    fn stats_on_star() {
        let g = star(11);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 11);
        assert_eq!(s.arcs, 10);
        assert_eq!(s.max_out_degree, 10);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_nodes, 0);
        assert!((s.avg_out_degree - 10.0 / 11.0).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("11 nodes"));
    }

    #[test]
    fn isolated_nodes_counted() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.set_num_nodes(5);
        let g = b.build(WeightModel::Constant(0.1)).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated_nodes, 3);
        assert_eq!(s.largest_wcc, 2);
    }

    #[test]
    fn wcc_ignores_direction_and_finds_the_giant() {
        // components {0,1,2} (via mixed directions) and {3,4}; 5 isolated
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.add_arc(2, 1); // weakly connects 2
        b.add_arc(3, 4);
        b.set_num_nodes(6);
        let g = b.build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(super::largest_weak_component(&g), 3);
        let s = GraphStats::compute(&g);
        assert_eq!(s.largest_wcc, 3);
        assert!(s.to_string().contains("largest WCC 3"));
    }

    #[test]
    fn histogram_bucketing() {
        let g = star(11);
        let h = DegreeHistogram::out_degrees(&g);
        // node 0 has degree 10 -> bucket 3 ([8, 15]); others degree 0 -> bucket 0
        assert_eq!(h.buckets[0], 10);
        assert_eq!(h.buckets[3], 1);
        let shown = h.to_string();
        assert!(shown.contains(": 10"));

        let h_in = DegreeHistogram::in_degrees(&g);
        assert_eq!(h_in.buckets[0], 11); // ten nodes of in-degree 1, one of 0
    }
}
