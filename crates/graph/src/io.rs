//! Graph persistence: text edge lists (SNAP-style) and a compact binary
//! format.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Graph, GraphBuilder, GraphError, WeightModel};

/// Magic prefix of the binary format.
const MAGIC: &[u8; 4] = b"SNSG";
/// Current binary format version.
const VERSION: u32 = 1;
/// Hard cap on the header's declared arc count (2^40 ≈ 1.1 T arcs, an
/// order of magnitude past the paper's largest network). A corrupt
/// 8-byte count field can therefore never demand an absurd allocation.
const MAX_ARCS: u64 = 1 << 40;
/// Arcs preallocated up front; a header lying about `m` past this costs
/// incremental growth, not a multi-GiB `with_capacity`.
const PREALLOC_ARCS: u64 = 1 << 20;

/// Parses a SNAP-style text edge list: one `from to [weight]` triple per
/// line, `#` / `%` comment lines and blank lines ignored.
///
/// Returns a [`GraphBuilder`] so the caller decides the weight model; rows
/// without a weight column must be built with a generating model, rows
/// with one can use [`WeightModel::Provided`].
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<GraphBuilder, GraphError> {
    let mut builder = GraphBuilder::new();
    let mut line_no = 0usize;
    let mut buf = String::new();
    let mut reader = reader;
    loop {
        buf.clear();
        line_no += 1;
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let from = parse_node(it.next(), line_no, "missing source node")?;
        let to = parse_node(it.next(), line_no, "missing target node")?;
        match it.next() {
            None => {
                builder.add_arc(from, to);
            }
            Some(tok) => {
                let w: f32 = tok.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("invalid weight {tok:?}"),
                })?;
                builder.add_edge(from, to, w);
                if it.next().is_some() {
                    return Err(GraphError::Parse {
                        line: line_no,
                        message: "too many columns (expected `from to [weight]`)".into(),
                    });
                }
            }
        }
    }
    Ok(builder)
}

fn parse_node(tok: Option<&str>, line: usize, msg: &str) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, message: msg.into() })?;
    tok.parse().map_err(|_| GraphError::Parse { line, message: format!("invalid node id {tok:?}") })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<GraphBuilder, GraphError> {
    read_edge_list(BufReader::new(File::open(path)?))
}

/// Writes the graph as a weighted text edge list (`from to weight`).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# sns-graph edge list: {} nodes, {} arcs", g.num_nodes(), g.num_arcs())?;
    for (u, v, weight) in g.arcs() {
        writeln!(w, "{u} {v} {weight}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph to a file as a text edge list.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, File::create(path)?)
}

/// Serializes the graph in the compact binary format
/// (`SNSG | version | n | m | m × (from, to, weight)`, little-endian).
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&g.num_nodes().to_le_bytes())?;
    w.write_all(&g.num_arcs().to_le_bytes())?;
    for (u, v, weight) in g.arcs() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        w.write_all(&weight.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the binary format to a file.
pub fn write_binary_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_binary(g, File::create(path)?)
}

/// Deserializes a graph written by [`write_binary`]. Weights are restored
/// exactly ([`WeightModel::Provided`]).
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::BadFormat("bad magic (not an SNSG file)".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(GraphError::BadFormat(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let n = read_u32(&mut r)?;
    let m = read_u64(&mut r)?;
    if n == 0 {
        return Err(GraphError::BadFormat("zero nodes".into()));
    }
    // Sanity-bound the header counts before any allocation: `m` is
    // attacker/corruption-controlled 8 bytes, so cap it and preallocate
    // conservatively — a truncated stream then fails on read_exact after
    // at most PREALLOC_ARCS worth of memory, not in the allocator.
    if m > MAX_ARCS {
        return Err(GraphError::BadFormat(format!("header declares {m} arcs (cap {MAX_ARCS})")));
    }
    let mut builder = GraphBuilder::with_capacity(m.min(PREALLOC_ARCS) as usize);
    builder.set_num_nodes(n);
    // Self-loops and duplicates were already resolved when the source
    // graph was built; keep the bytes as-is.
    builder.allow_self_loops(true);
    let mut rec = [0u8; 12];
    for _ in 0..m {
        r.read_exact(&mut rec)?;
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let w = f32::from_le_bytes(rec[8..12].try_into().unwrap());
        builder.add_edge(u, v, w);
    }
    builder.build(WeightModel::Provided)
}

/// Reads the binary format from a file.
pub fn read_binary_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_binary(File::open(path)?)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightModel;

    #[test]
    fn parses_weighted_and_comments() {
        let text = "# header\n% alt comment\n\n0 1 0.5\n1 2 0.25\n";
        let b = read_edge_list(text.as_bytes()).unwrap();
        let g = b.build(WeightModel::Provided).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert!((g.out_weights(0)[0] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn parses_unweighted() {
        let text = "0 1\n1 2\n2 0\n";
        let g =
            read_edge_list(text.as_bytes()).unwrap().build(WeightModel::WeightedCascade).unwrap();
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let text = "0 1 0.5\nnot a line\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }

        let text = "0\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(GraphError::Parse { line: 1, .. })));

        let text = "0 1 0.5 9 9\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(GraphError::Parse { .. })));

        let text = "0 1 huh\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn text_roundtrip() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.125);
        b.set_num_nodes(4);
        let g = b.build(WeightModel::Provided).unwrap();

        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap().build(WeightModel::Provided).unwrap();
        // node 3 is isolated so the text round-trip shrinks n; arcs match
        assert_eq!(g2.num_arcs(), g.num_arcs());
        let a1: Vec<_> = g.arcs().collect();
        let a2: Vec<_> = g2.arcs().collect();
        assert_eq!(a1, a2);
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.125);
        b.set_num_nodes(5); // trailing isolated nodes survive binary io
        let g = b.build(WeightModel::Provided).unwrap();

        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_arcs(), 2);
        let a1: Vec<_> = g.arcs().collect();
        let a2: Vec<_> = g2.arcs().collect();
        assert_eq!(a1, a2);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(read_binary(&b"XXXX"[..]), Err(GraphError::BadFormat(_))));
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::BadFormat(_))));
        // truncated file
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_oversized_header_counts_without_allocating() {
        // a corrupt count field must hit the cap check, not the allocator
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&10u32.to_le_bytes()); // n
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // m: absurd
        match read_binary(&buf[..]) {
            Err(GraphError::BadFormat(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected BadFormat, got {other:?}"),
        }
    }

    #[test]
    fn binary_header_overclaiming_arcs_fails_on_truncation_not_memory() {
        // m lies high but under the cap: the read must fail cleanly when
        // the stream runs out, after bounded preallocation
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // n
        buf.extend_from_slice(&1_000_000u64.to_le_bytes()); // m: overclaimed
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0.5f32.to_le_bytes()); // ... but only 1 arc present
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_truncation_inside_the_header() {
        // cut at every header section boundary: magic, version, n, m
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        for cut in [0, 2, 4, 6, 8, 10, 12, 16] {
            assert!(read_binary(&buf[..cut]).is_err(), "cut at {cut} accepted");
        }
    }
}
