//! Compact graph substrate for the Stop-and-Stare influence-maximization
//! library.
//!
//! This crate provides everything the sampling layers need from a network:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR representation of a
//!   directed, weighted influence graph. Both the forward (out-edge) and
//!   reverse (in-edge) adjacency are materialized because forward cascade
//!   simulation walks out-edges while RIS sampling walks in-edges.
//! * [`GraphBuilder`] + [`WeightModel`] — construction from edge lists with
//!   the weight conventions used in the IM literature (weighted cascade
//!   `w(u,v) = 1/din(v)`, constant, trivalency, uniform-random, provided).
//! * [`gen`] — synthetic network generators (Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, R-MAT) and a registry of stand-ins for the paper's
//!   Table 2 datasets.
//! * [`io`] — text edge-list and binary persistence.
//! * [`AliasTable`] — O(1) sampling from discrete distributions, used for
//!   weighted root selection (WRIS) and by the generators.
//! * [`GraphStats`] — the statistics reported in Table 2 of the paper.
//!
//! # Example
//!
//! ```
//! use sns_graph::{GraphBuilder, WeightModel};
//!
//! let mut b = GraphBuilder::new();
//! b.add_arc(0, 1);
//! b.add_arc(1, 2);
//! b.add_arc(0, 2);
//! let g = b.build(WeightModel::WeightedCascade).unwrap();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_arcs(), 3);
//! // node 2 has two in-edges, each with weight 1/2 under weighted cascade
//! assert_eq!(g.in_degree(2), 2);
//! assert!((g.in_weight_sum(2) - 1.0).abs() < 1e-6);
//! ```

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

mod alias;
mod builder;
mod csr;
mod error;
pub mod gen;
pub mod hash;
pub mod io;
mod stats;
mod transform;
mod weights;

pub use alias::AliasTable;
pub use builder::{DedupPolicy, GraphBuilder};
pub use csr::{Graph, InEdgeIter, OutEdgeIter};
pub use error::GraphError;
pub use hash::{fnv64, Fnv64};
pub use stats::{largest_weak_component, DegreeHistogram, GraphStats};
pub use transform::{induced_subgraph, transpose};
pub use weights::WeightModel;

/// Identifier of a node. Dense in `0..Graph::num_nodes()`.
///
/// `u32` bounds the library at ~4.2 billion nodes, which covers every
/// network in the paper (Friendster, the largest, has 65.6M nodes) while
/// halving index memory relative to `usize`.
pub type NodeId = u32;
