//! Error type shared by graph construction, IO and sampling helpers.

use std::fmt;

/// Errors produced while building, loading or validating a [`crate::Graph`].
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// The builder contained no nodes.
    EmptyGraph,
    /// An edge referenced a node id `>= num_nodes` after the node count was
    /// fixed with [`crate::GraphBuilder::set_num_nodes`].
    NodeOutOfRange {
        /// The offending node id.
        node: crate::NodeId,
        /// The fixed node count.
        num_nodes: u32,
    },
    /// An edge weight was outside `[0, 1]` or not finite.
    InvalidWeight {
        /// Source of the offending edge.
        from: crate::NodeId,
        /// Target of the offending edge.
        to: crate::NodeId,
        /// The offending weight.
        weight: f32,
    },
    /// The total incoming weight of a node exceeds 1, violating the Linear
    /// Threshold model's requirement `Σ_u w(u,v) ≤ 1`.
    LtWeightOverflow {
        /// The node whose in-weights overflow.
        node: crate::NodeId,
        /// The offending total.
        sum: f64,
    },
    /// A discrete distribution summed to zero (or was empty) where a
    /// positive total was required, e.g. in [`crate::AliasTable::new`].
    ZeroTotalWeight,
    /// Text edge-list parsing failed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Binary graph file was malformed or of an unsupported version.
    BadFormat(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range (num_nodes = {num_nodes})")
            }
            GraphError::InvalidWeight { from, to, weight } => {
                write!(f, "edge ({from} -> {to}) has invalid weight {weight}; expected finite value in [0, 1]")
            }
            GraphError::LtWeightOverflow { node, sum } => {
                write!(f, "node {node} has total incoming weight {sum:.6} > 1, violating the LT model constraint")
            }
            GraphError::ZeroTotalWeight => {
                write!(f, "distribution has zero total weight; nothing to sample")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::BadFormat(msg) => write!(f, "bad graph file: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, num_nodes: 3 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3'));

        let e = GraphError::LtWeightOverflow { node: 1, sum: 1.5 };
        assert!(e.to_string().contains("1.5"));

        let e = GraphError::Parse { line: 4, message: "bad token".into() };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
    }
}
