//! Graph transformations: transpose and induced subgraphs.
//!
//! Both are standard preprocessing steps in IM studies — transposition
//! converts "who influences v" questions into forward reachability, and
//! induced subgraphs are how scaled-down experiment replicas are cut out
//! of larger networks.

use crate::{Graph, GraphBuilder, GraphError, NodeId, WeightModel};

/// Returns the transpose graph: every arc `(u, v, w)` becomes `(v, u, w)`.
///
/// Influence semantics flip accordingly: the influence of `S` in the
/// transpose is the expected number of nodes that can *reach* `S` in the
/// original — useful for source-detection analyses.
pub fn transpose(g: &Graph) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.num_arcs() as usize);
    b.set_num_nodes(g.num_nodes());
    for (u, v, w) in g.arcs() {
        b.add_edge(v, u, w);
    }
    b.build(WeightModel::Provided).expect("transposing a valid graph cannot fail")
}

/// Extracts the subgraph induced by `nodes`, relabelling them densely to
/// `0..nodes.len()` in the given order.
///
/// Returns the subgraph and the mapping `new id -> original id`.
/// Duplicate entries in `nodes` are rejected.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
    let n = g.num_nodes();
    let mut new_id = vec![u32::MAX; n as usize];
    for (i, &v) in nodes.iter().enumerate() {
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, num_nodes: n });
        }
        if new_id[v as usize] != u32::MAX {
            return Err(GraphError::Parse {
                line: i + 1,
                message: format!("duplicate node {v} in induced_subgraph selection"),
            });
        }
        new_id[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new();
    b.set_num_nodes(nodes.len() as u32);
    if nodes.is_empty() {
        return Err(GraphError::EmptyGraph);
    }
    for &v in nodes {
        for (t, w) in g.out_edges(v) {
            let nt = new_id[t as usize];
            if nt != u32::MAX {
                b.add_edge(new_id[v as usize], nt, w);
            }
        }
    }
    let sub = b.build(WeightModel::Provided)?;
    Ok((sub, nodes.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.25);
        b.add_edge(0, 2, 0.75);
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn transpose_flips_arcs() {
        let g = triangle();
        let t = transpose(&g);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_arcs(), 3);
        let mut arcs: Vec<_> = t.arcs().collect();
        arcs.sort_by_key(|&(u, v, _)| (u, v));
        assert_eq!(arcs[0], (1, 0, 0.5));
        assert_eq!(arcs[1], (2, 0, 0.75));
        assert_eq!(arcs[2], (2, 1, 0.25));
        // double transpose = identity
        let tt = transpose(&t);
        let a: Vec<_> = g.arcs().collect();
        let b: Vec<_> = tt.arcs().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle();
        let (sub, mapping) = induced_subgraph(&g, &[0, 2]).unwrap();
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(mapping, vec![0, 2]);
        // only 0 -> 2 (weight 0.75) survives; relabelled 0 -> 1
        let arcs: Vec<_> = sub.arcs().collect();
        assert_eq!(arcs, vec![(0, 1, 0.75)]);
    }

    #[test]
    fn induced_subgraph_validates() {
        let g = triangle();
        assert!(matches!(
            induced_subgraph(&g, &[0, 9]),
            Err(GraphError::NodeOutOfRange { node: 9, .. })
        ));
        assert!(induced_subgraph(&g, &[0, 0]).is_err());
        assert!(matches!(induced_subgraph(&g, &[]), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn relabelling_preserves_order() {
        let g = triangle();
        let (sub, mapping) = induced_subgraph(&g, &[2, 1, 0]).unwrap();
        assert_eq!(mapping, vec![2, 1, 0]);
        // original 0 -> 1 becomes 2 -> 1; original 1 -> 2 becomes 1 -> 0;
        // original 0 -> 2 becomes 2 -> 0
        let mut arcs: Vec<_> = sub.arcs().collect();
        arcs.sort_by_key(|&(u, v, _)| (u, v));
        assert_eq!(arcs, vec![(1, 0, 0.25), (2, 0, 0.75), (2, 1, 0.5)]);
    }
}
