//! Mutable edge-list builder that materializes an immutable CSR
//! [`Graph`].

use crate::{Graph, GraphError, NodeId, WeightModel};

/// What to do with parallel (duplicate) arcs `u → v` during
/// [`GraphBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Keep the first occurrence in insertion order.
    KeepFirst,
    /// Keep the last occurrence in insertion order (the default; matches
    /// "later rows override earlier rows" file semantics).
    #[default]
    KeepLast,
    /// Sum the weights of all occurrences and clamp the result to `1.0`.
    /// Only meaningful with [`WeightModel::Provided`]; under any other
    /// model duplicates collapse to a single edge before weights are
    /// assigned, so this behaves like `KeepLast`.
    SumClamped,
}

/// Sentinel weight for arcs added without an explicit weight.
const UNWEIGHTED: f32 = f32::NAN;

/// Accumulates edges and builds a [`Graph`].
///
/// ```
/// use sns_graph::{GraphBuilder, WeightModel};
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1, 0.7);
/// b.add_edge(2, 1, 0.2);
/// let g = b.build(WeightModel::Provided).unwrap();
/// assert_eq!(g.in_degree(1), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId, f32)>,
    fixed_n: Option<u32>,
    max_node: Option<NodeId>,
    dedup: DedupPolicy,
    allow_self_loops: bool,
    normalize_lt: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `edges` arcs.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder { edges: Vec::with_capacity(edges), ..Self::default() }
    }

    /// Fixes the node count. Any later edge touching a node `>= n` makes
    /// [`GraphBuilder::build`] fail; without this the node count is
    /// `max node id + 1`. Also the only way to include trailing isolated
    /// nodes.
    pub fn set_num_nodes(&mut self, n: u32) -> &mut Self {
        self.fixed_n = Some(n);
        self
    }

    /// Selects the duplicate-arc policy (default [`DedupPolicy::KeepLast`]).
    pub fn dedup_policy(&mut self, policy: DedupPolicy) -> &mut Self {
        self.dedup = policy;
        self
    }

    /// Keeps self-loops instead of silently dropping them (default drops;
    /// a self-loop never changes influence semantics but inflates degree
    /// normalizations).
    pub fn allow_self_loops(&mut self, allow: bool) -> &mut Self {
        self.allow_self_loops = allow;
        self
    }

    /// Rescales each node's incoming weights at build time so their total
    /// never exceeds 1, making any weight model LT-compatible.
    pub fn normalize_for_lt(&mut self, on: bool) -> &mut Self {
        self.normalize_lt = on;
        self
    }

    /// Adds a weighted arc `from → to` with influence probability
    /// `weight`. Validation happens at build time.
    #[inline]
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f32) -> &mut Self {
        self.touch(from);
        self.touch(to);
        self.edges.push((from, to, weight));
        self
    }

    /// Adds an unweighted arc `from → to`; the weight comes from the
    /// [`WeightModel`] at build time. Incompatible with
    /// [`WeightModel::Provided`].
    #[inline]
    pub fn add_arc(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.add_edge(from, to, UNWEIGHTED)
    }

    /// Adds both arcs of an undirected edge (the paper's treatment of the
    /// undirected Orkut and Friendster networks).
    #[inline]
    pub fn add_undirected(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.add_arc(a, b);
        self.add_arc(b, a)
    }

    /// Bulk-adds unweighted arcs.
    pub fn extend_arcs<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.add_arc(u, v);
        }
        self
    }

    /// Number of arcs currently staged (before dedup / self-loop removal).
    pub fn num_staged_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn touch(&mut self, v: NodeId) {
        self.max_node = Some(self.max_node.map_or(v, |m| m.max(v)));
    }

    /// Validates, deduplicates, assigns weights and freezes the graph.
    pub fn build(mut self, model: WeightModel) -> Result<Graph, GraphError> {
        let n = match (self.fixed_n, self.max_node) {
            (Some(n), _) => n,
            (None, Some(max)) => max + 1,
            (None, None) => return Err(GraphError::EmptyGraph),
        };
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(fixed) = self.fixed_n {
            if let Some(max) = self.max_node {
                if max >= fixed {
                    return Err(GraphError::NodeOutOfRange { node: max, num_nodes: fixed });
                }
            }
        }

        if !self.allow_self_loops {
            self.edges.retain(|&(u, v, _)| u != v);
        }

        if model.requires_provided_weights() {
            for &(u, v, w) in &self.edges {
                if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                    return Err(GraphError::InvalidWeight { from: u, to: v, weight: w });
                }
            }
        }

        // Stable sort by (source, target) keeps insertion order within
        // duplicate groups, which KeepFirst / KeepLast rely on.
        self.edges.sort_by_key(|&(u, v, _)| (u, v));
        dedup_sorted(&mut self.edges, self.dedup);

        // In-degrees of the deduplicated list drive WeightedCascade.
        let mut in_degree = vec![0u32; n as usize];
        for &(_, v, _) in &self.edges {
            in_degree[v as usize] += 1;
        }
        model.assign(&mut self.edges, &in_degree);

        if self.normalize_lt {
            normalize_in_weights(&mut self.edges, n);
        }

        let m = self.edges.len();

        // Forward CSR straight from the (source-sorted) edge list.
        let mut out_offsets = vec![0u64; n as usize + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for &(_, v, w) in &self.edges {
            out_targets.push(v);
            out_weights.push(w);
        }

        // Reverse CSR via counting sort on the target.
        let mut in_offsets = vec![0u64; n as usize + 1];
        for &(_, v, _) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u64> = in_offsets[..n as usize].to_vec();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_weights = vec![0.0f32; m];
        for &(u, v, w) in &self.edges {
            let slot = cursor[v as usize] as usize;
            in_sources[slot] = u;
            in_weights[slot] = w;
            cursor[v as usize] += 1;
        }

        Ok(Graph::from_csr(
            n,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        ))
    }
}

/// Collapses runs of identical `(u, v)` pairs in a sorted edge list.
fn dedup_sorted(edges: &mut Vec<(NodeId, NodeId, f32)>, policy: DedupPolicy) {
    if edges.len() < 2 {
        return;
    }
    let mut write = 0usize;
    let mut read = 0usize;
    while read < edges.len() {
        let (u, v, _) = edges[read];
        let mut chosen = edges[read].2;
        let mut end = read + 1;
        while end < edges.len() && edges[end].0 == u && edges[end].1 == v {
            end += 1;
        }
        if end - read > 1 {
            chosen = match policy {
                DedupPolicy::KeepFirst => edges[read].2,
                DedupPolicy::KeepLast => edges[end - 1].2,
                DedupPolicy::SumClamped => {
                    let sum: f64 = edges[read..end].iter().map(|e| f64::from(e.2)).sum();
                    (sum as f32).min(1.0)
                }
            };
        }
        edges[write] = (u, v, chosen);
        write += 1;
        read = end;
    }
    edges.truncate(write);
}

/// Rescales incoming weights per node so `Σ_u w(u,v) ≤ 1`.
fn normalize_in_weights(edges: &mut [(NodeId, NodeId, f32)], n: u32) {
    let mut sums = vec![0.0f64; n as usize];
    for &(_, v, w) in edges.iter() {
        sums[v as usize] += f64::from(w);
    }
    for e in edges.iter_mut() {
        let s = sums[e.1 as usize];
        if s > 1.0 {
            e.2 = (f64::from(e.2) / s) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_fails() {
        assert!(matches!(
            GraphBuilder::new().build(WeightModel::Provided),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn fixed_num_nodes_allows_isolated_tail() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.set_num_nodes(10);
        let g = b.build(WeightModel::Constant(0.5)).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn node_out_of_range_rejected() {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(2);
        b.add_arc(0, 5);
        assert!(matches!(
            b.build(WeightModel::Constant(0.5)),
            Err(GraphError::NodeOutOfRange { node: 5, num_nodes: 2 })
        ));
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 0);
        b.add_arc(0, 1);
        let g = b.build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(g.num_arcs(), 1);

        let mut b = GraphBuilder::new();
        b.allow_self_loops(true);
        b.add_arc(0, 0);
        b.add_arc(0, 1);
        let g = b.build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    fn provided_requires_valid_weights() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.5);
        assert!(matches!(b.build(WeightModel::Provided), Err(GraphError::InvalidWeight { .. })));

        let mut b = GraphBuilder::new();
        b.add_arc(0, 1); // NaN weight sentinel
        assert!(matches!(b.build(WeightModel::Provided), Err(GraphError::InvalidWeight { .. })));
    }

    #[test]
    fn dedup_keep_first_and_last() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.1);
        b.add_edge(0, 1, 0.9);
        let g = b.clone().build(WeightModel::Provided).unwrap();
        assert_eq!(g.num_arcs(), 1);
        assert!((g.out_weights(0)[0] - 0.9).abs() < 1e-7); // KeepLast default

        b.dedup_policy(DedupPolicy::KeepFirst);
        let g = b.clone().build(WeightModel::Provided).unwrap();
        assert!((g.out_weights(0)[0] - 0.1).abs() < 1e-7);

        b.dedup_policy(DedupPolicy::SumClamped);
        let g = b.build(WeightModel::Provided).unwrap();
        assert!((g.out_weights(0)[0] - 1.0).abs() < 1e-7); // 0.1 + 0.9
    }

    #[test]
    fn dedup_sum_clamps_at_one() {
        let mut b = GraphBuilder::new();
        b.dedup_policy(DedupPolicy::SumClamped);
        b.add_edge(0, 1, 0.8);
        b.add_edge(0, 1, 0.8);
        let g = b.build(WeightModel::Provided).unwrap();
        assert!((g.out_weights(0)[0] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn normalize_for_lt_rescales_overflowing_nodes() {
        let mut b = GraphBuilder::new();
        b.normalize_for_lt(true);
        b.add_edge(0, 2, 0.9);
        b.add_edge(1, 2, 0.9);
        let g = b.build(WeightModel::Provided).unwrap();
        assert!(g.lt_compatible());
        assert!((g.in_weight_sum(2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn undirected_adds_both_arcs() {
        let mut b = GraphBuilder::new();
        b.add_undirected(0, 1);
        let g = b.build(WeightModel::Constant(0.2)).unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 1);
    }

    #[test]
    fn csr_is_sorted_and_consistent() {
        let mut b = GraphBuilder::new();
        // insertion order deliberately scrambled
        for (u, v) in [(3, 1), (0, 2), (2, 1), (0, 1), (3, 0), (1, 3)] {
            b.add_arc(u, v);
        }
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 6);
        // out-neighbors sorted per node
        for v in 0..4 {
            let ns = g.out_neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] <= w[1]));
        }
        // forward and reverse views agree on the arc set
        let mut fwd: Vec<(u32, u32)> = g.arcs().map(|(u, v, _)| (u, v)).collect();
        let mut rev: Vec<(u32, u32)> =
            (0..4).flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v))).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }
}
