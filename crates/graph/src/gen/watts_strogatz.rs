//! Watts–Strogatz small-world graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::Orientation;
use crate::GraphBuilder;

/// Generates a Watts–Strogatz small-world network: a ring lattice where
/// each node connects to its `k` nearest neighbors (`k/2` on each side),
/// with every lattice edge rewired to a uniform random endpoint with
/// probability `beta`.
///
/// `k` must be even and `< n`. `beta = 0` yields the pure lattice,
/// `beta = 1` approaches an Erdős–Rényi graph.
///
/// ```
/// use sns_graph::{gen::{watts_strogatz, Orientation}, WeightModel};
/// let g = watts_strogatz(60, 4, 0.1, Orientation::Symmetric, 5)
///     .build(WeightModel::WeightedCascade)
///     .unwrap();
/// assert_eq!(g.num_nodes(), 60);
/// ```
pub fn watts_strogatz(
    n: u32,
    k: u32,
    beta: f64,
    orientation: Orientation,
    seed: u64,
) -> GraphBuilder {
    assert!(k.is_multiple_of(2), "watts_strogatz needs even k");
    assert!(k >= 2 && k < n, "watts_strogatz needs 2 <= k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity((u64::from(n) * u64::from(k)) as usize);
    builder.set_num_nodes(n);

    let emit = |b: &mut GraphBuilder, rng: &mut StdRng, u: u32, v: u32| match orientation {
        Orientation::Symmetric => {
            b.add_undirected(u, v);
        }
        Orientation::RandomSingle => {
            if rng.gen::<bool>() {
                b.add_arc(u, v);
            } else {
                b.add_arc(v, u);
            }
        }
    };

    for u in 0..n {
        for j in 1..=(k / 2) {
            let lattice_v = (u + j) % n;
            let v = if rng.gen::<f64>() < beta {
                // Rewire to a random non-self endpoint. Duplicates that
                // arise are merged by the builder's dedup pass.
                let mut w = rng.gen_range(0..n);
                while w == u {
                    w = rng.gen_range(0..n);
                }
                w
            } else {
                lattice_v
            };
            emit(&mut builder, &mut rng, u, v);
        }
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightModel;

    #[test]
    fn pure_lattice_has_uniform_degree() {
        let g = watts_strogatz(40, 4, 0.0, Orientation::Symmetric, 1)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        // each node touches k others; symmetric emission gives out-degree k
        for v in 0..40 {
            assert_eq!(g.out_degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn rewiring_perturbs_lattice() {
        let lattice = watts_strogatz(200, 6, 0.0, Orientation::Symmetric, 1)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        let rewired = watts_strogatz(200, 6, 0.5, Orientation::Symmetric, 1)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        let a: Vec<_> = lattice.arcs().map(|(u, v, _)| (u, v)).collect();
        let b: Vec<_> = rewired.arcs().map(|(u, v, _)| (u, v)).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, Orientation::Symmetric, 0);
    }
}
