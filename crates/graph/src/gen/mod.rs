//! Synthetic network generators.
//!
//! The paper evaluates on SNAP/KONECT snapshots that are not shipped with
//! this repository; these generators produce structurally comparable
//! stand-ins (see `DESIGN.md` §4). All generators are deterministic for a
//! given seed and return a [`crate::GraphBuilder`] so the caller picks the
//! edge-weight model.

pub mod datasets;

mod barabasi_albert;
mod erdos_renyi;
mod forest_fire;
mod rmat;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::erdos_renyi;
pub use forest_fire::forest_fire;
pub use rmat::{rmat, RmatParams};
pub use watts_strogatz::watts_strogatz;

/// How generators that conceptually produce *undirected* edges emit arcs
/// into the directed influence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Orientation {
    /// Each undirected edge becomes one arc with a random direction.
    #[default]
    RandomSingle,
    /// Each undirected edge becomes two opposite arcs — the paper's
    /// treatment of Orkut and Friendster ("we replace each edge by two
    /// oppositely directed edges").
    Symmetric,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightModel;

    #[test]
    fn generators_are_deterministic() {
        let a = erdos_renyi(100, 400, 7).build(WeightModel::Constant(0.1)).unwrap();
        let b = erdos_renyi(100, 400, 7).build(WeightModel::Constant(0.1)).unwrap();
        let ea: Vec<_> = a.arcs().collect();
        let eb: Vec<_> = b.arcs().collect();
        assert_eq!(ea, eb);

        let a = barabasi_albert(200, 3, Orientation::Symmetric, 11)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let b = barabasi_albert(200, 3, Orientation::Symmetric, 11)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        assert_eq!(a.num_arcs(), b.num_arcs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(100, 400, 1).build(WeightModel::Constant(0.1)).unwrap();
        let b = erdos_renyi(100, 400, 2).build(WeightModel::Constant(0.1)).unwrap();
        let ea: Vec<_> = a.arcs().collect();
        let eb: Vec<_> = b.arcs().collect();
        assert_ne!(ea, eb);
    }
}
