//! Barabási–Albert preferential-attachment graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::Orientation;
use crate::{GraphBuilder, NodeId};

/// Generates a Barabási–Albert scale-free network: nodes arrive one at a
/// time and attach to `m_attach` existing nodes chosen proportionally to
/// their current degree, yielding the heavy-tailed degree distribution
/// characteristic of social networks.
///
/// The seed graph is a star over the first `m_attach + 1` nodes. The
/// classic "repeated nodes" implementation gives O(1) preferential picks:
/// every edge endpoint is appended to a pool and uniform draws from the
/// pool are degree-proportional draws.
///
/// `orientation` controls how each undirected attachment edge enters the
/// directed influence graph.
///
/// ```
/// use sns_graph::{gen::{barabasi_albert, Orientation}, WeightModel};
/// let g = barabasi_albert(100, 2, Orientation::Symmetric, 1)
///     .build(WeightModel::WeightedCascade)
///     .unwrap();
/// assert_eq!(g.num_nodes(), 100);
/// ```
pub fn barabasi_albert(n: u32, m_attach: u32, orientation: Orientation, seed: u64) -> GraphBuilder {
    assert!(m_attach >= 1, "barabasi_albert needs m_attach >= 1");
    assert!(
        n > m_attach,
        "barabasi_albert needs n > m_attach (got n = {n}, m_attach = {m_attach})"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let approx_edges = (u64::from(n) * u64::from(m_attach)) as usize;
    let mut builder = GraphBuilder::with_capacity(approx_edges * 2);
    builder.set_num_nodes(n);

    // Degree-proportional pool of endpoints.
    let mut pool: Vec<NodeId> = Vec::with_capacity(approx_edges * 2);
    let emit = |b: &mut GraphBuilder, rng: &mut StdRng, u: NodeId, v: NodeId| match orientation {
        Orientation::Symmetric => {
            b.add_undirected(u, v);
        }
        Orientation::RandomSingle => {
            if rng.gen::<bool>() {
                b.add_arc(u, v);
            } else {
                b.add_arc(v, u);
            }
        }
    };

    // Star seed: nodes 1..=m_attach each connected to node 0.
    for v in 1..=m_attach {
        emit(&mut builder, &mut rng, v, 0);
        pool.push(v);
        pool.push(0);
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m_attach as usize);
    for new in (m_attach + 1)..n {
        targets.clear();
        // Sample m_attach distinct targets preferentially; the retry loop
        // terminates quickly because m_attach is small relative to the
        // number of distinct pool members.
        while targets.len() < m_attach as usize {
            let pick = pool[rng.gen_range(0..pool.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            emit(&mut builder, &mut rng, new, t);
            pool.push(new);
            pool.push(t);
        }
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightModel;

    #[test]
    fn node_and_edge_counts() {
        let g = barabasi_albert(100, 3, Orientation::Symmetric, 2)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        assert_eq!(g.num_nodes(), 100);
        // star: 3 edges, growth: 96 * 3 edges, each emitted as 2 arcs
        assert_eq!(g.num_arcs(), 2 * (3 + 96 * 3));
    }

    #[test]
    fn random_single_halves_arcs() {
        let g = barabasi_albert(100, 3, Orientation::RandomSingle, 2)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        assert_eq!(g.num_arcs(), 3 + 96 * 3);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 2, Orientation::Symmetric, 3)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        let mut degrees: Vec<u32> = (0..g.num_nodes()).map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // hubs: the max degree should far exceed the median — a loose but
        // robust check for preferential attachment.
        let max = degrees[0];
        let median = degrees[degrees.len() / 2];
        assert!(max >= median * 8, "expected hub formation, max = {max}, median = {median}");
    }

    #[test]
    #[should_panic(expected = "n > m_attach")]
    fn rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, Orientation::Symmetric, 0);
    }
}
