//! Erdős–Rényi G(n, m) directed random graphs.

// Keyed-only HashSet: edge dedup by contains/insert, never iterated, so hash
// order cannot reach any output (docs/ARCHITECTURE.md §6).
#![allow(clippy::disallowed_types)]

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::GraphBuilder;

/// Samples a directed Erdős–Rényi graph with exactly `num_arcs` distinct
/// arcs (no self-loops) over `n` nodes.
///
/// `num_arcs` is clamped to `n·(n−1)`, the number of possible arcs.
/// Rejection sampling keeps construction `O(m)` in expectation while the
/// graph is sparse (the IM regime); for near-complete graphs it degrades
/// gracefully because the clamp guarantees termination.
///
/// ```
/// use sns_graph::{gen::erdos_renyi, WeightModel};
/// let g = erdos_renyi(50, 200, 42).build(WeightModel::WeightedCascade).unwrap();
/// assert_eq!(g.num_nodes(), 50);
/// assert_eq!(g.num_arcs(), 200);
/// ```
pub fn erdos_renyi(n: u32, num_arcs: u64, seed: u64) -> GraphBuilder {
    assert!(n >= 2, "erdos_renyi needs at least 2 nodes");
    let max_arcs = u64::from(n) * (u64::from(n) - 1);
    let m = num_arcs.min(max_arcs);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m as usize);
    let mut builder = GraphBuilder::with_capacity(m as usize);
    builder.set_num_nodes(n);

    // Dense fallback: when m is close to max_arcs, enumerate-and-shuffle
    // beats rejection.
    if m * 2 > max_arcs {
        let mut all: Vec<(u32, u32)> =
            (0..n).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v))).collect();
        // Fisher–Yates partial shuffle of the first m slots.
        for i in 0..m as usize {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        for &(u, v) in &all[..m as usize] {
            builder.add_arc(u, v);
        }
        return builder;
    }

    while (seen.len() as u64) < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u64::from(u) << 32) | u64::from(v);
        if seen.insert(key) {
            builder.add_arc(u, v);
        }
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightModel;

    #[test]
    fn exact_arc_count_no_loops_no_dups() {
        let g = erdos_renyi(30, 300, 5).build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(g.num_arcs(), 300);
        let mut arcs: Vec<(u32, u32)> = g.arcs().map(|(u, v, _)| (u, v)).collect();
        let before = arcs.len();
        arcs.sort_unstable();
        arcs.dedup();
        assert_eq!(arcs.len(), before, "duplicate arcs found");
        assert!(arcs.iter().all(|&(u, v)| u != v), "self-loop found");
    }

    #[test]
    fn clamps_to_complete_digraph() {
        let g = erdos_renyi(5, 10_000, 0).build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(g.num_arcs(), 20); // 5 * 4
    }

    #[test]
    fn dense_fallback_path() {
        // m > max/2 triggers the enumerate-and-shuffle branch.
        let g = erdos_renyi(10, 80, 3).build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(g.num_arcs(), 80);
        let mut arcs: Vec<(u32, u32)> = g.arcs().map(|(u, v, _)| (u, v)).collect();
        arcs.sort_unstable();
        arcs.dedup();
        assert_eq!(arcs.len(), 80);
    }
}
