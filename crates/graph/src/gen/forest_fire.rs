//! Forest Fire generator (Leskovec, Kleinberg, Faloutsos — KDD'05).
//!
//! Produces networks with the densification and shrinking-diameter
//! properties observed in real citation/social graphs: each arriving
//! node picks an ambassador and "burns" through its neighborhood,
//! linking to every burned node. Used in IM papers as the realistic
//! citation-network model (NetHEPT/NetPHY-like).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GraphBuilder, NodeId};

/// Generates a Forest Fire graph with `n` nodes.
///
/// `forward_prob` (`p`) controls the burn spread along out-edges;
/// `backward_ratio` (`r`) scales the burn probability along in-edges
/// (`p·r`). Typical values: `p ∈ [0.2, 0.4]`, `r ∈ [0.2, 0.4]` — higher
/// values densify. Every new node links *to* each node it burns
/// (citation direction).
pub fn forest_fire(n: u32, forward_prob: f64, backward_ratio: f64, seed: u64) -> GraphBuilder {
    assert!(n >= 2, "forest_fire needs at least 2 nodes");
    assert!((0.0..1.0).contains(&forward_prob), "forward_prob must be in [0, 1)");
    assert!(backward_ratio >= 0.0, "backward_ratio must be non-negative");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new();
    builder.set_num_nodes(n);
    // adjacency grown incrementally (small vectors; the generator runs
    // once so simplicity beats a CSR rebuild per node)
    let mut out_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n as usize];
    let mut in_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n as usize];
    let mut burned = vec![0u32; n as usize];
    let mut epoch = 0u32;

    builder.add_arc(1, 0);
    out_adj[1].push(0);
    in_adj[0].push(1);

    let mut frontier: Vec<NodeId> = Vec::new();
    let mut to_visit: Vec<NodeId> = Vec::new();
    for v in 2..n {
        epoch += 1;
        let ambassador = rng.gen_range(0..v);
        burned[ambassador as usize] = epoch;
        burned[v as usize] = epoch; // never link to self
        frontier.clear();
        frontier.push(ambassador);
        let mut links: Vec<NodeId> = vec![ambassador];
        while let Some(u) = frontier.pop() {
            to_visit.clear();
            // geometric "burn counts" via independent coin flips keeps
            // the implementation simple and matches the model's intent
            for &t in &out_adj[u as usize] {
                if burned[t as usize] != epoch && rng.gen::<f64>() < forward_prob {
                    to_visit.push(t);
                }
            }
            for &s in &in_adj[u as usize] {
                if burned[s as usize] != epoch && rng.gen::<f64>() < forward_prob * backward_ratio {
                    to_visit.push(s);
                }
            }
            for &w in &to_visit {
                if burned[w as usize] != epoch {
                    burned[w as usize] = epoch;
                    links.push(w);
                    frontier.push(w);
                }
            }
        }
        for &t in &links {
            builder.add_arc(v, t);
            out_adj[v as usize].push(t);
            in_adj[t as usize].push(v);
        }
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphStats, WeightModel};

    #[test]
    fn generates_connected_citation_structure() {
        let g = forest_fire(2000, 0.35, 0.3, 7).build(WeightModel::WeightedCascade).unwrap();
        assert_eq!(g.num_nodes(), 2000);
        // every node (except 0) cites at least one earlier node
        for v in 1..2000 {
            assert!(g.out_degree(v) >= 1, "node {v} has no citations");
        }
        // no isolated nodes at all
        assert_eq!(GraphStats::compute(&g).isolated_nodes, 0);
    }

    #[test]
    fn edges_point_backward_in_time() {
        let g = forest_fire(500, 0.3, 0.3, 1).build(WeightModel::Constant(0.1)).unwrap();
        for (u, v, _) in g.arcs() {
            assert!(v < u, "citation {u} -> {v} points forward in time");
        }
    }

    #[test]
    fn higher_forward_prob_densifies() {
        let sparse = forest_fire(1500, 0.15, 0.2, 3).build(WeightModel::Constant(0.1)).unwrap();
        let dense = forest_fire(1500, 0.4, 0.4, 3).build(WeightModel::Constant(0.1)).unwrap();
        assert!(
            dense.num_arcs() > sparse.num_arcs(),
            "dense {} vs sparse {}",
            dense.num_arcs(),
            sparse.num_arcs()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = forest_fire(300, 0.3, 0.3, 9).build(WeightModel::Constant(0.1)).unwrap();
        let b = forest_fire(300, 0.3, 0.3, 9).build(WeightModel::Constant(0.1)).unwrap();
        let ea: Vec<_> = a.arcs().collect();
        let eb: Vec<_> = b.arcs().collect();
        assert_eq!(ea, eb);
    }
}
