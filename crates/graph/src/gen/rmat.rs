//! R-MAT (recursive matrix) power-law graph generator.
//!
//! R-MAT (Chakrabarti, Zhan, Faloutsos — SDM'04) recursively subdivides
//! the adjacency matrix into quadrants with probabilities `(a, b, c, d)`;
//! with the standard skewed parameters it produces the heavy-tailed in-
//! and out-degree distributions of real social networks, which is what
//! governs RIS sampling cost. It is the workhorse behind the Table 2
//! dataset stand-ins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::GraphBuilder;

/// Quadrant probabilities for [`rmat`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left (head–head) quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right (tail–tail) quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// Graph500 reference parameters `(0.57, 0.19, 0.19, 0.05)` — a strong
    /// social-network-like skew.
    pub const GRAPH500: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 };

    /// Milder skew `(0.45, 0.22, 0.22, 0.11)`, closer to collaboration
    /// networks such as DBLP or NetHEPT.
    pub const COLLABORATION: RmatParams = RmatParams { a: 0.45, b: 0.22, c: 0.22, d: 0.11 };

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-9, "R-MAT quadrant probabilities must sum to 1, got {sum}");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "R-MAT quadrant probabilities must be non-negative"
        );
    }
}

/// Generates `num_arcs` R-MAT arcs over `n` nodes (ids `0..n`).
///
/// Node coordinates are drawn on the enclosing power-of-two grid and
/// rejected if `≥ n`, so no modulo artifacts distort the distribution.
/// Self-loops are rejected during generation. Duplicate arcs *are*
/// possible (R-MAT naturally produces them on skewed quadrants) and are
/// merged by the builder's dedup pass, so the final arc count can be a few
/// percent below `num_arcs`; callers that need an exact count should
/// oversample. Per-level probability perturbation (±10%, as in the
/// original paper) avoids the exact self-similar staircase.
///
/// ```
/// use sns_graph::{gen::{rmat, RmatParams}, WeightModel};
/// let g = rmat(1000, 5000, RmatParams::GRAPH500, 7)
///     .build(WeightModel::WeightedCascade)
///     .unwrap();
/// assert_eq!(g.num_nodes(), 1000);
/// assert!(g.num_arcs() > 4000);
/// ```
pub fn rmat(n: u32, num_arcs: u64, params: RmatParams, seed: u64) -> GraphBuilder {
    params.validate();
    assert!(n >= 2, "rmat needs at least 2 nodes");

    let levels = 32 - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_arcs as usize);
    builder.set_num_nodes(n);

    let mut produced = 0u64;
    while produced < num_arcs {
        let (u, v) = sample_cell(levels, params, &mut rng);
        if u >= n || v >= n || u == v {
            continue;
        }
        builder.add_arc(u, v);
        produced += 1;
    }
    builder
}

/// Samples one (row, column) cell by recursive quadrant descent.
fn sample_cell(levels: u32, p: RmatParams, rng: &mut StdRng) -> (u32, u32) {
    let mut u = 0u32;
    let mut v = 0u32;
    for level in (0..levels).rev() {
        // ±10% multiplicative noise per level, renormalized, following
        // Chakrabarti et al.
        let na = p.a * (0.9 + 0.2 * rng.gen::<f64>());
        let nb = p.b * (0.9 + 0.2 * rng.gen::<f64>());
        let nc = p.c * (0.9 + 0.2 * rng.gen::<f64>());
        let nd = p.d * (0.9 + 0.2 * rng.gen::<f64>());
        let total = na + nb + nc + nd;
        let r = rng.gen::<f64>() * total;
        let (row_bit, col_bit) = if r < na {
            (0, 0)
        } else if r < na + nb {
            (0, 1)
        } else if r < na + nb + nc {
            (1, 0)
        } else {
            (1, 1)
        };
        u |= row_bit << level;
        v |= col_bit << level;
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightModel;

    #[test]
    fn respects_node_bound() {
        // 1000 is not a power of two; rejection must keep ids < 1000.
        let g =
            rmat(1000, 3000, RmatParams::GRAPH500, 1).build(WeightModel::Constant(0.1)).unwrap();
        assert_eq!(g.num_nodes(), 1000);
        for (u, v, _) in g.arcs() {
            assert!(u < 1000 && v < 1000 && u != v);
        }
    }

    #[test]
    fn skewed_parameters_make_hubs() {
        let g =
            rmat(4096, 40_000, RmatParams::GRAPH500, 3).build(WeightModel::Constant(0.1)).unwrap();
        let mut in_degrees: Vec<u32> = (0..g.num_nodes()).map(|v| g.in_degree(v)).collect();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: u64 = in_degrees[..41].iter().map(|&d| u64::from(d)).sum();
        // With GRAPH500 skew the top 1% of nodes should hold a large share
        // of the in-arcs (a uniform graph would give them ~1%; measured
        // share for this configuration is ~23%).
        assert!(
            top1pct * 6 > g.num_arcs(),
            "expected >16% of arcs on top-1% nodes, got {top1pct}/{}",
            g.num_arcs()
        );
    }

    #[test]
    fn dedup_loss_is_small_on_sparse_instances() {
        let requested = 20_000;
        let g = rmat(1 << 14, requested, RmatParams::GRAPH500, 5)
            .build(WeightModel::Constant(0.1))
            .unwrap();
        assert!(
            g.num_arcs() as f64 > 0.9 * requested as f64,
            "lost too many arcs to dedup: {}",
            g.num_arcs()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_params() {
        let bad = RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5 };
        let _ = rmat(16, 10, bad, 0);
    }
}
