//! Registry of stand-ins for the paper's Table 2 datasets.
//!
//! The paper evaluates on eight real networks (SNAP/KONECT snapshots plus
//! a Twitter crawl). This module reproduces each row of Table 2 — node
//! count, edge count, directedness, degree skew — with R-MAT generators at
//! a configurable scale so every experiment in the harness runs on a
//! laptop. See `DESIGN.md` §4 for the substitution rationale.

use super::rmat::{rmat, RmatParams};
use crate::{Graph, GraphError, WeightModel};

/// One row of the paper's Table 2 plus generation metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Node count reported in Table 2.
    pub nodes: u64,
    /// Edge count reported in Table 2 (undirected edge count for Orkut and
    /// Friendster, which the paper symmetrizes into two arcs each).
    pub edges: u64,
    /// Whether the original network is undirected.
    pub undirected: bool,
    /// Average degree reported in Table 2.
    pub avg_degree: f64,
    /// Default generation scale: 1.0 reproduces the original size, smaller
    /// values shrink nodes and edges proportionally (the three web-scale
    /// networks default below 1.0 to stay laptop-sized).
    pub default_scale: f64,
    /// R-MAT skew used for the stand-in.
    pub skew: RmatParams,
}

/// NetHEPT citation network (15K nodes / 59K edges).
pub const NETHEPT: DatasetSpec = DatasetSpec {
    name: "NetHEPT",
    nodes: 15_233,
    edges: 58_891,
    undirected: false,
    avg_degree: 4.1,
    default_scale: 1.0,
    skew: RmatParams::COLLABORATION,
};

/// NetPHY citation network (37K nodes / 181K edges).
pub const NETPHY: DatasetSpec = DatasetSpec {
    name: "NetPHY",
    nodes: 37_154,
    edges: 180_826,
    undirected: false,
    avg_degree: 13.4,
    default_scale: 1.0,
    skew: RmatParams::COLLABORATION,
};

/// Email-Enron communication network (37K nodes / 184K edges).
pub const ENRON: DatasetSpec = DatasetSpec {
    name: "Enron",
    nodes: 36_692,
    edges: 183_831,
    undirected: false,
    avg_degree: 5.0,
    default_scale: 1.0,
    skew: RmatParams::GRAPH500,
};

/// Epinions trust network (132K nodes / 841K edges).
pub const EPINIONS: DatasetSpec = DatasetSpec {
    name: "Epinions",
    nodes: 131_828,
    edges: 841_372,
    undirected: false,
    avg_degree: 13.4,
    default_scale: 1.0,
    skew: RmatParams::GRAPH500,
};

/// DBLP collaboration network (655K nodes / 2M edges).
pub const DBLP: DatasetSpec = DatasetSpec {
    name: "DBLP",
    nodes: 655_000,
    edges: 2_000_000,
    undirected: false,
    avg_degree: 6.1,
    default_scale: 1.0,
    skew: RmatParams::COLLABORATION,
};

/// Orkut social network (3M nodes / 234M undirected edges). Scaled by
/// default: at 1/64 the stand-in keeps the m/n ratio and skew.
pub const ORKUT: DatasetSpec = DatasetSpec {
    name: "Orkut",
    nodes: 3_000_000,
    edges: 234_000_000,
    undirected: true,
    avg_degree: 78.0,
    default_scale: 1.0 / 64.0,
    skew: RmatParams::GRAPH500,
};

/// Twitter follower network (41.7M nodes / 1.5G edges), Kwak et al. 2010.
pub const TWITTER: DatasetSpec = DatasetSpec {
    name: "Twitter",
    nodes: 41_700_000,
    edges: 1_500_000_000,
    undirected: false,
    avg_degree: 70.5,
    default_scale: 1.0 / 256.0,
    skew: RmatParams::GRAPH500,
};

/// Friendster social network (65.6M nodes / 3.6G edges).
pub const FRIENDSTER: DatasetSpec = DatasetSpec {
    name: "Friendster",
    nodes: 65_600_000,
    edges: 3_600_000_000,
    undirected: true,
    avg_degree: 54.8,
    default_scale: 1.0 / 512.0,
    skew: RmatParams::GRAPH500,
};

/// All eight Table 2 datasets, in the paper's order.
pub const ALL: [&DatasetSpec; 8] =
    [&NETHEPT, &NETPHY, &ENRON, &EPINIONS, &DBLP, &ORKUT, &TWITTER, &FRIENDSTER];

/// Case-insensitive lookup by paper name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    ALL.iter().copied().find(|d| d.name.eq_ignore_ascii_case(name))
}

impl DatasetSpec {
    /// Node count after applying `scale` (at least 64 so tiny smoke scales
    /// stay meaningful).
    pub fn scaled_nodes(&self, scale: f64) -> u32 {
        ((self.nodes as f64 * scale).round() as u64).clamp(64, u64::from(u32::MAX)) as u32
    }

    /// Edge count after applying `scale` (at least 128).
    pub fn scaled_edges(&self, scale: f64) -> u64 {
        ((self.edges as f64 * scale).round() as u64).max(128)
    }

    /// Generates the stand-in at the given scale with the paper's
    /// weighted-cascade edge weights (`w(u,v) = 1/din(v)`, §7.1).
    ///
    /// Undirected datasets are generated as undirected edges and
    /// symmetrized into two arcs each, matching the paper's remark on
    /// Orkut and Friendster.
    pub fn generate(&self, scale: f64, seed: u64) -> Result<Graph, GraphError> {
        self.generate_with(scale, seed, WeightModel::WeightedCascade)
    }

    /// Like [`DatasetSpec::generate`] with an explicit weight model.
    pub fn generate_with(
        &self,
        scale: f64,
        seed: u64,
        model: WeightModel,
    ) -> Result<Graph, GraphError> {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = self.scaled_nodes(scale);
        let m = self.scaled_edges(scale);
        let base = rmat(n, m, self.skew, seed);
        if self.undirected {
            // Re-emit every arc in both directions; the builder dedups the
            // overlap, so arcs ≈ 2m.
            let g = base.build(WeightModel::Constant(0.0))?;
            let mut sym = crate::GraphBuilder::with_capacity(2 * g.num_arcs() as usize);
            sym.set_num_nodes(n);
            for (u, v, _) in g.arcs() {
                sym.add_undirected(u, v);
            }
            sym.build(model)
        } else {
            base.build(model)
        }
    }

    /// Generates at [`DatasetSpec::default_scale`].
    pub fn generate_default(&self, seed: u64) -> Result<Graph, GraphError> {
        self.generate(self.default_scale, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup() {
        assert_eq!(by_name("nethept").unwrap().name, "NetHEPT");
        assert_eq!(by_name("Friendster").unwrap().nodes, 65_600_000);
        assert!(by_name("nope").is_none());
        assert_eq!(ALL.len(), 8);
    }

    #[test]
    fn scaled_counts_track_scale() {
        assert_eq!(NETHEPT.scaled_nodes(1.0), 15_233);
        assert_eq!(TWITTER.scaled_nodes(1.0 / 256.0), 162_891);
        assert!(ORKUT.scaled_edges(1.0 / 64.0) >= 3_600_000);
        // floors kick in at extreme scales
        assert_eq!(NETHEPT.scaled_nodes(1e-9), 64);
        assert_eq!(NETHEPT.scaled_edges(1e-9), 128);
    }

    #[test]
    fn directed_standin_matches_spec_size() {
        let scale = 0.05;
        let g = NETHEPT.generate(scale, 42).unwrap();
        assert_eq!(g.num_nodes(), NETHEPT.scaled_nodes(scale));
        let target = NETHEPT.scaled_edges(scale);
        assert!(
            g.num_arcs() as f64 > 0.85 * target as f64,
            "arcs {} too far below target {target}",
            g.num_arcs()
        );
        assert!(g.lt_compatible());
    }

    #[test]
    fn undirected_standin_symmetrizes() {
        let g = ORKUT.generate(0.0002, 7).unwrap();
        // every arc must have its reverse
        for v in 0..g.num_nodes() {
            for &u in g.in_neighbors(v) {
                assert!(
                    g.in_neighbors(u).binary_search(&v).is_ok(),
                    "missing reverse arc {v} -> {u}"
                );
            }
        }
    }
}
