//! Walker–Vose alias method for O(1) sampling from a fixed discrete
//! distribution.
//!
//! Used by the weighted RIS sampler (WRIS, §7.3.1 of the paper): TVM picks
//! the RR-set root proportional to per-node relevance weights, and an alias
//! table makes each pick constant-time regardless of `n`.

use rand::Rng;

use crate::GraphError;

/// Precomputed alias table over indices `0..len`.
///
/// Construction is `O(len)`; [`AliasTable::sample`] is `O(1)`.
///
/// ```
/// use sns_graph::AliasTable;
/// use rand::SeedableRng;
///
/// let t = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut counts = [0u32; 3];
/// for _ in 0..10_000 {
///     counts[t.sample(&mut rng)] += 1;
/// }
/// assert_eq!(counts[1], 0);            // zero-weight index never drawn
/// assert!(counts[2] > counts[0]);      // 3:1 ratio
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the column's own index, scaled to [0,1].
    prob: Vec<f64>,
    /// Fallback index when the coin flip rejects the column index.
    alias: Vec<u32>,
    /// Total input weight, kept for consumers that need the normalizer
    /// (e.g. TVM's Γ = Σ b(v)).
    total: f64,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// Returns [`GraphError::ZeroTotalWeight`] if the slice is empty or
    /// sums to zero, and [`GraphError::InvalidWeight`] if any weight is
    /// negative or non-finite.
    pub fn new(weights: &[f64]) -> Result<Self, GraphError> {
        let n = weights.len();
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidWeight {
                    from: i as u32,
                    to: i as u32,
                    weight: w as f32,
                });
            }
            total += w;
        }
        if n == 0 || total <= 0.0 {
            return Err(GraphError::ZeroTotalWeight);
        }

        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Columns with scaled weight < 1 ("small") get topped up by the
        // excess of "large" columns.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual columns are exactly 1 up to float error.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(AliasTable { prob, alias, total })
    }

    /// Draws an index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // One uniform in [0, n): integer part picks the column, fractional
        // part is the coin flip. Saves a second RNG call.
        let u: f64 = rng.gen::<f64>() * self.prob.len() as f64;
        let col = (u as usize).min(self.prob.len() - 1);
        let frac = u - col as f64;
        if frac < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a successfully built
    /// table, provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the input weights (the distribution's normalizer).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// FNV-1a checksum over the table's exact contents (`prob` f64 bits,
    /// `alias` entries, total-weight bits). Construction is a pure
    /// deterministic function of the input weights, so two tables built
    /// from the same weight vector always agree and any content change —
    /// even one that preserves the total — changes the checksum. Used by
    /// the pool-store fingerprint to refuse serving a persisted pool
    /// under a different weight vector.
    pub fn content_checksum(&self) -> u64 {
        let mut h = crate::Fnv64::new();
        for &p in &self.prob {
            h.write_u64(p.to_bits());
        }
        for &a in &self.alias {
            h.write_u64(u64::from(a));
        }
        h.write_u64(self.total.to_bits());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(AliasTable::new(&[]), Err(GraphError::ZeroTotalWeight)));
        assert!(matches!(AliasTable::new(&[0.0, 0.0]), Err(GraphError::ZeroTotalWeight)));
        assert!(matches!(AliasTable::new(&[1.0, -0.5]), Err(GraphError::InvalidWeight { .. })));
        assert!(matches!(AliasTable::new(&[f64::NAN]), Err(GraphError::InvalidWeight { .. })));
    }

    #[test]
    fn single_category_always_drawn() {
        let t = AliasTable::new(&[42.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!((t.total_weight() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let draws = 400_000usize;
        let mut counts = [0u64; 4];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            let expected = weights[i] / total;
            let observed = counts[i] as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "category {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn uniform_weights_behave_uniformly() {
        let t = AliasTable::new(&[1.0; 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 100_000.0;
            assert!((p - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn extreme_skew_still_samples_tail() {
        let mut w = vec![1e-9; 100];
        w[0] = 1e9;
        let t = AliasTable::new(&w).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut zero = 0;
        for _ in 0..1000 {
            if t.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        assert!(zero >= 999); // overwhelming mass at index 0
    }
}
