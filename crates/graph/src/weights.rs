//! Edge-weight assignment conventions from the IM literature.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::NodeId;

/// How edge weights `w(u, v) ∈ [0, 1]` are assigned when a
/// [`crate::GraphBuilder`] is materialized.
///
/// The paper (§7.1) uses the *weighted cascade* convention
/// `w(u,v) = 1/din(v)`, following Tang et al. and Chen et al.; the other
/// models are standard alternatives the baselines are commonly evaluated
/// with and are used by the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// Keep the weights passed to [`crate::GraphBuilder::add_edge`].
    /// Edges added without a weight (via `add_arc`) are rejected.
    Provided,
    /// `w(u, v) = 1 / din(v)` — the paper's setting. Guarantees the LT
    /// constraint `Σ_u w(u,v) = 1` holds for every node with in-edges.
    WeightedCascade,
    /// Every edge gets the same probability `p` (the classic IC setting,
    /// e.g. `p = 0.01` or `p = 0.1` in Kempe et al.).
    Constant(f32),
    /// Each weight drawn uniformly at random from `{0.1, 0.01, 0.001}`
    /// (the "trivalency" model of Chen et al., KDD'10). Deterministic for a
    /// given seed.
    Trivalency {
        /// RNG seed so graph construction stays reproducible.
        seed: u64,
    },
    /// Each weight drawn uniformly from `[lo, hi]`. Deterministic for a
    /// given seed.
    UniformRandom {
        /// Inclusive lower bound, must satisfy `0 ≤ lo ≤ hi`.
        lo: f32,
        /// Inclusive upper bound, must satisfy `hi ≤ 1`.
        hi: f32,
        /// RNG seed.
        seed: u64,
    },
}

impl WeightModel {
    /// Assigns weights for the (deduplicated, sorted-by-source) edge list.
    ///
    /// `in_degree[v]` must hold the in-degree of each node in the final
    /// edge list. Weights for `Provided` are passed through unchanged (the
    /// builder has already validated them).
    pub(crate) fn assign(&self, edges: &mut [(NodeId, NodeId, f32)], in_degree: &[u32]) {
        match *self {
            WeightModel::Provided => {}
            WeightModel::WeightedCascade => {
                for e in edges.iter_mut() {
                    let d = in_degree[e.1 as usize];
                    debug_assert!(d > 0, "edge target must have in-degree >= 1");
                    e.2 = 1.0 / d as f32;
                }
            }
            WeightModel::Constant(p) => {
                for e in edges.iter_mut() {
                    e.2 = p;
                }
            }
            WeightModel::Trivalency { seed } => {
                const LEVELS: [f32; 3] = [0.1, 0.01, 0.001];
                let mut rng = StdRng::seed_from_u64(seed);
                let die = Uniform::new(0usize, 3);
                for e in edges.iter_mut() {
                    e.2 = LEVELS[die.sample(&mut rng)];
                }
            }
            WeightModel::UniformRandom { lo, hi, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let dist = Uniform::new_inclusive(lo, hi);
                for e in edges.iter_mut() {
                    e.2 = dist.sample(&mut rng);
                }
            }
        }
    }

    /// Whether this model requires weights supplied at `add_edge` time.
    pub fn requires_provided_weights(&self) -> bool {
        matches!(self, WeightModel::Provided)
    }

    /// Whether the produced graph is guaranteed to satisfy the LT
    /// constraint `Σ_u w(u,v) ≤ 1` regardless of topology.
    pub fn guarantees_lt(&self) -> bool {
        matches!(self, WeightModel::WeightedCascade)
    }
}

#[cfg(test)]
mod tests {

    use crate::{GraphBuilder, WeightModel};

    #[test]
    fn weighted_cascade_normalizes_in_weights() {
        let mut b = GraphBuilder::new();
        for u in 0..4 {
            b.add_arc(u, 4);
        }
        b.add_arc(4, 0);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        assert!((g.in_weight_sum(4) - 1.0).abs() < 1e-6);
        for (_, w) in g.in_edges(4) {
            assert!((w - 0.25).abs() < 1e-7);
        }
        assert!(g.lt_compatible());
    }

    #[test]
    fn constant_assigns_everywhere() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        let g = b.build(WeightModel::Constant(0.3)).unwrap();
        for (_, _, w) in g.arcs() {
            assert!((w - 0.3).abs() < 1e-7);
        }
    }

    #[test]
    fn trivalency_uses_only_three_levels_and_is_deterministic() {
        let build = || {
            let mut b = GraphBuilder::new();
            for i in 0..50u32 {
                b.add_arc(i, (i + 1) % 50);
            }
            b.build(WeightModel::Trivalency { seed: 9 }).unwrap()
        };
        let g1 = build();
        let g2 = build();
        let w1: Vec<f32> = g1.arcs().map(|(_, _, w)| w).collect();
        let w2: Vec<f32> = g2.arcs().map(|(_, _, w)| w).collect();
        assert_eq!(w1, w2);
        for w in w1 {
            assert!([0.1f32, 0.01, 0.001].iter().any(|&l| (l - w).abs() < 1e-9));
        }
    }

    #[test]
    fn uniform_random_within_bounds() {
        let mut b = GraphBuilder::new();
        for i in 0..100u32 {
            b.add_arc(i, (i + 7) % 100);
        }
        let g = b.build(WeightModel::UniformRandom { lo: 0.2, hi: 0.4, seed: 3 }).unwrap();
        for (_, _, w) in g.arcs() {
            assert!((0.2..=0.4).contains(&w));
        }
    }
}
