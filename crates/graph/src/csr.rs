//! Immutable CSR (compressed sparse row) graph representation.
//!
//! Both adjacency directions are materialized:
//!
//! * forward (out-edges) — walked by the IC/LT *forward* cascade
//!   simulators;
//! * reverse (in-edges) — walked by the RIS samplers, which grow a reverse
//!   reachable set from a random root.
//!
//! For the LT reverse walk ("pick one in-neighbor `u` of `v` with
//! probability `w(u,v)`, or stop with probability `1 − Σ w`") the in-edge
//! weights of every node are additionally stored as a prefix-sum array so a
//! single uniform draw resolves to a neighbor with one binary search.

use crate::NodeId;

/// An immutable directed, weighted graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`]; all arrays are laid out once and
/// never mutated, so a `Graph` is `Send + Sync` and can be shared freely
/// across sampling threads.
#[derive(Clone)]
pub struct Graph {
    n: u32,
    /// Forward CSR: out-edges of node `v` live at
    /// `out_targets[out_offsets[v] .. out_offsets[v+1]]`.
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f32>,
    /// Reverse CSR: in-edges of node `v` live at
    /// `in_sources[in_offsets[v] .. in_offsets[v+1]]`.
    in_offsets: Vec<u64>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<f32>,
    /// Per-segment inclusive prefix sums of `in_weights`, used by
    /// [`Graph::sample_in_neighbor_lt`]. `in_cum[e]` is the sum of the
    /// weights of the node's in-edges up to and including position `e`.
    in_cum: Vec<f32>,
    /// Cached `Σ_u w(u, v)` per node (the last prefix sum of the segment).
    in_weight_sum: Vec<f32>,
    /// Lazily computed [`Graph::content_hash`] digest. The CSR arrays
    /// never mutate after construction, so the first hash is the hash.
    pub(crate) content_digest: std::sync::OnceLock<u64>,
}

impl Graph {
    /// Assembles a graph from already-sorted CSR arrays.
    ///
    /// Invariants (checked with `debug_assert`s, guaranteed by the builder):
    /// offsets are monotone with `offsets[0] == 0`, `offsets[n]` equals the
    /// respective array length, and all node ids are `< n`.
    pub(crate) fn from_csr(
        n: u32,
        out_offsets: Vec<u64>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f32>,
        in_offsets: Vec<u64>,
        in_sources: Vec<NodeId>,
        in_weights: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n as usize + 1);
        debug_assert_eq!(in_offsets.len(), n as usize + 1);
        debug_assert_eq!(*out_offsets.last().unwrap() as usize, out_targets.len());
        debug_assert_eq!(*in_offsets.last().unwrap() as usize, in_sources.len());
        debug_assert_eq!(out_targets.len(), out_weights.len());
        debug_assert_eq!(in_sources.len(), in_weights.len());

        let mut in_cum = vec![0.0f32; in_weights.len()];
        let mut in_weight_sum = vec![0.0f32; n as usize];
        for v in 0..n as usize {
            let (s, e) = (in_offsets[v] as usize, in_offsets[v + 1] as usize);
            // f64 accumulator: a node can have millions of in-edges and the
            // LT stop-probability depends on the exact tail 1 − Σw.
            let mut acc = 0.0f64;
            for i in s..e {
                acc += f64::from(in_weights[i]);
                in_cum[i] = acc as f32;
            }
            in_weight_sum[v] = acc as f32;
        }

        Graph {
            n,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            in_cum,
            in_weight_sum,
            content_digest: std::sync::OnceLock::new(),
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.n
    }

    /// Number of directed arcs `m`.
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.out_targets.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> u32 {
        let v = v as usize;
        (self.out_offsets[v + 1] - self.out_offsets[v]) as u32
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> u32 {
        let v = v as usize;
        (self.in_offsets[v + 1] - self.in_offsets[v]) as u32
    }

    /// Targets of the out-edges of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v] as usize..self.out_offsets[v + 1] as usize]
    }

    /// Weights of the out-edges of `v`, aligned with
    /// [`Graph::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.out_weights[self.out_offsets[v] as usize..self.out_offsets[v + 1] as usize]
    }

    /// Sources of the in-edges of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v] as usize..self.in_offsets[v + 1] as usize]
    }

    /// Weights of the in-edges of `v`, aligned with
    /// [`Graph::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.in_weights[self.in_offsets[v] as usize..self.in_offsets[v + 1] as usize]
    }

    /// Iterator over `(target, weight)` pairs of the out-edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> OutEdgeIter<'_> {
        OutEdgeIter { targets: self.out_neighbors(v).iter(), weights: self.out_weights(v).iter() }
    }

    /// Iterator over `(source, weight)` pairs of the in-edges of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> InEdgeIter<'_> {
        InEdgeIter { sources: self.in_neighbors(v).iter(), weights: self.in_weights(v).iter() }
    }

    /// Total incoming weight `Σ_u w(u, v)` of node `v`.
    ///
    /// Under the LT model this is the probability that the reverse random
    /// walk continues past `v` (it stops with probability `1 − Σ w`).
    #[inline]
    pub fn in_weight_sum(&self, v: NodeId) -> f32 {
        self.in_weight_sum[v as usize]
    }

    /// LT reverse-walk step: maps a uniform draw `r ∈ [0, 1)` to the
    /// in-neighbor `u` of `v` selected with probability `w(u, v)`, or
    /// `None` (walk stops) with the residual probability `1 − Σ_u w(u, v)`.
    ///
    /// Resolution is a binary search over the node's in-weight prefix sums,
    /// i.e. `O(log din(v))`.
    #[inline]
    pub fn sample_in_neighbor_lt(&self, v: NodeId, r: f32) -> Option<NodeId> {
        let vi = v as usize;
        let (s, e) = (self.in_offsets[vi] as usize, self.in_offsets[vi + 1] as usize);
        if s == e || r >= self.in_weight_sum[vi] {
            return None;
        }
        let seg = &self.in_cum[s..e];
        // First prefix sum strictly greater than r.
        let idx = seg.partition_point(|&c| c <= r);
        if idx >= seg.len() {
            // Float edge case: r < in_weight_sum but ≥ final prefix due to
            // rounding in the cached sum. Treat as the last neighbor.
            return Some(self.in_sources[e - 1]);
        }
        Some(self.in_sources[s + idx])
    }

    /// Whether every node satisfies the LT constraint `Σ_u w(u,v) ≤ 1`
    /// (with a small tolerance for f32 accumulation error).
    pub fn lt_compatible(&self) -> bool {
        self.in_weight_sum.iter().all(|&s| s <= 1.0 + 1e-4)
    }

    /// Sum of in-degrees of the given nodes: the number of arcs in `G`
    /// pointing *into* the set. This is the "width" `w(R)` of an RR set
    /// used by TIM's KPT estimation (Tang et al., SIGMOD'14).
    pub fn width_of(&self, nodes: &[NodeId]) -> u64 {
        nodes.iter().map(|&v| u64::from(self.in_degree(v))).sum()
    }

    /// Approximate resident size of the graph's arrays, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        ((self.out_offsets.len() + self.in_offsets.len()) * size_of::<u64>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<NodeId>()
            + (self.out_weights.len() + self.in_weights.len() + self.in_cum.len())
                * size_of::<f32>()
            + self.in_weight_sum.len() * size_of::<f32>()) as u64
    }

    /// Iterator over all arcs as `(from, to, weight)`, in CSR (source)
    /// order. Intended for export and tests, not hot paths.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n).flat_map(move |u| self.out_edges(u).map(move |(v, w)| (u, v, w)))
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph").field("nodes", &self.n).field("arcs", &self.num_arcs()).finish()
    }
}

/// Iterator over the `(target, weight)` pairs of a node's out-edges.
pub struct OutEdgeIter<'a> {
    targets: std::slice::Iter<'a, NodeId>,
    weights: std::slice::Iter<'a, f32>,
}

impl<'a> Iterator for OutEdgeIter<'a> {
    type Item = (NodeId, f32);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        Some((*self.targets.next()?, *self.weights.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.targets.size_hint()
    }
}

impl ExactSizeIterator for OutEdgeIter<'_> {}

/// Iterator over the `(source, weight)` pairs of a node's in-edges.
pub struct InEdgeIter<'a> {
    sources: std::slice::Iter<'a, NodeId>,
    weights: std::slice::Iter<'a, f32>,
}

impl<'a> Iterator for InEdgeIter<'a> {
    type Item = (NodeId, f32);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        Some((*self.sources.next()?, *self.weights.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.sources.size_hint()
    }
}

impl ExactSizeIterator for InEdgeIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, WeightModel};

    fn triangle() -> crate::Graph {
        // 0 -> 1 (0.5), 1 -> 2 (0.25), 0 -> 2 (0.25)
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.25);
        b.add_edge(0, 2, 0.25);
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
    }

    #[test]
    fn edge_iterators_pair_weights() {
        let g = triangle();
        let out: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out, vec![(1, 0.5), (2, 0.25)]);
        let inc: Vec<_> = g.in_edges(2).collect();
        assert_eq!(inc, vec![(0, 0.25), (1, 0.25)]);
        assert_eq!(g.out_edges(0).len(), 2);
    }

    #[test]
    fn in_weight_sums() {
        let g = triangle();
        assert!((g.in_weight_sum(1) - 0.5).abs() < 1e-7);
        assert!((g.in_weight_sum(2) - 0.5).abs() < 1e-7);
        assert_eq!(g.in_weight_sum(0), 0.0);
        assert!(g.lt_compatible());
    }

    #[test]
    fn lt_sampling_maps_intervals_to_neighbors() {
        let g = triangle();
        // node 2: in-edges (0, 0.25), (1, 0.25); cum = [0.25, 0.5]
        assert_eq!(g.sample_in_neighbor_lt(2, 0.0), Some(0));
        assert_eq!(g.sample_in_neighbor_lt(2, 0.2499), Some(0));
        assert_eq!(g.sample_in_neighbor_lt(2, 0.25), Some(1));
        assert_eq!(g.sample_in_neighbor_lt(2, 0.4999), Some(1));
        assert_eq!(g.sample_in_neighbor_lt(2, 0.5), None);
        assert_eq!(g.sample_in_neighbor_lt(2, 0.99), None);
        // node with no in-edges never yields a neighbor
        assert_eq!(g.sample_in_neighbor_lt(0, 0.0), None);
    }

    #[test]
    fn width_counts_incoming_arcs() {
        let g = triangle();
        assert_eq!(g.width_of(&[2]), 2);
        assert_eq!(g.width_of(&[0]), 0);
        assert_eq!(g.width_of(&[0, 1, 2]), 3);
    }

    #[test]
    fn arcs_roundtrip() {
        let g = triangle();
        let mut arcs: Vec<_> = g.arcs().collect();
        arcs.sort_by_key(|&(u, v, _)| (u, v));
        assert_eq!(arcs.len(), 3);
        assert_eq!(arcs[0].0, 0);
        assert_eq!(arcs[0].1, 1);
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
    }
}
