//! Content hashing for graphs and on-disk artifacts.
//!
//! The persistent pool store (`sns-rrset`'s `store` module) needs two
//! things from a hash: a *fingerprint* tying a saved RR pool to the
//! exact graph it was sampled from, and a fast *checksum* detecting
//! bit rot in multi-megabyte segment files. Both are served by
//! [`Fnv64`], a word-wise variant of FNV-1a: input is consumed in
//! 8-byte little-endian words (the tail word is zero-padded and the
//! total byte length is folded in at [`Fnv64::finish`], so truncations
//! and padding collisions change the digest). Word-wise folding keeps
//! the mix of FNV-1a — every xor'd difference is diffused by an odd
//! multiplier, so any single-bit flip changes the digest — at roughly
//! 8× the throughput of the byte-at-a-time original, which matters on
//! the load path where the entire pool is re-verified.
//!
//! This is an integrity check against accidental corruption (torn
//! writes, truncation, bit rot), **not** a cryptographic MAC: an
//! adversary who can write the files can forge the digests.

use crate::Graph;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming word-wise FNV-1a hasher (see the module docs).
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
    /// Partial input word, filled little-endian.
    pending: u64,
    /// Bytes currently buffered in `pending` (0..8).
    pending_len: u32,
    /// Total bytes consumed, folded in at `finish`.
    len: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET, pending: 0, pending_len: 0, len: 0 }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state ^= word;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Consumes `bytes`. Digests depend only on the concatenated byte
    /// stream, not on how it was chunked across calls.
    pub fn write(&mut self, bytes: &[u8]) {
        self.len += bytes.len() as u64;
        let mut rest = bytes;
        // Top up a partial word first so chunk boundaries don't matter.
        while self.pending_len != 0 && !rest.is_empty() {
            self.pending |= u64::from(rest[0]) << (8 * self.pending_len);
            self.pending_len += 1;
            rest = &rest[1..];
            if self.pending_len == 8 {
                let w = self.pending;
                self.mix(w);
                self.pending = 0;
                self.pending_len = 0;
            }
        }
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let w = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.mix(w);
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.pending |= u64::from(b) << (8 * i);
            self.pending_len = i as u32 + 1;
        }
    }

    /// Convenience for hashing one `u64` (written little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Convenience for hashing one `u32` (written little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Final digest: flushes the zero-padded tail word and folds in the
    /// total byte length.
    pub fn finish(&self) -> u64 {
        let mut h = self.clone();
        if h.pending_len > 0 {
            let w = h.pending;
            h.mix(w);
        }
        let len = h.len;
        h.mix(len);
        h.state
    }
}

/// One-shot digest of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

impl Graph {
    /// A deterministic digest of the graph's full content — node count,
    /// arc count, and every `(from, to, weight-bits)` triple in storage
    /// order. Two graphs hash equal iff their CSR content is identical,
    /// so the digest fingerprints *exactly* what RR sampling consumes;
    /// the persistent pool store records it to refuse serving a pool
    /// against a different graph.
    ///
    /// Computed once and cached: the CSR arrays are immutable after
    /// construction, so repeated fingerprint checks (every
    /// `PoolStore` load, every engine save) cost a field read.
    pub fn content_hash(&self) -> u64 {
        *self.content_digest.get_or_init(|| {
            let mut h = Fnv64::new();
            h.write_u32(self.num_nodes());
            h.write_u64(self.num_arcs());
            for (u, v, w) in self.arcs() {
                h.write_u32(u);
                h.write_u32(v);
                h.write_u32(w.to_bits());
            }
            h.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, WeightModel};

    #[test]
    fn chunking_does_not_change_the_digest() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = fnv64(&data);
        for split in [1usize, 3, 7, 8, 9, 64, 999] {
            let mut h = Fnv64::new();
            for chunk in data.chunks(split) {
                h.write(chunk);
            }
            assert_eq!(h.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = fnv64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(fnv64(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn truncation_and_zero_padding_change_the_digest() {
        let data = vec![0xAAu8; 24];
        assert_ne!(fnv64(&data[..23]), fnv64(&data));
        // trailing zeros are not absorbed by the padded tail word
        let mut padded = data.clone();
        padded.push(0);
        assert_ne!(fnv64(&padded), fnv64(&data));
        assert_ne!(fnv64(&[]), fnv64(&[0]));
    }

    #[test]
    fn graph_hash_tracks_content() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.25);
        let g = b.clone().build(WeightModel::Provided).unwrap();
        let same = b.clone().build(WeightModel::Provided).unwrap();
        assert_eq!(g.content_hash(), same.content_hash());

        // a changed weight changes the hash
        let mut b2 = GraphBuilder::new();
        b2.add_edge(0, 1, 0.5);
        b2.add_edge(1, 2, 0.125);
        let g2 = b2.build(WeightModel::Provided).unwrap();
        assert_ne!(g.content_hash(), g2.content_hash());

        // extra isolated nodes change the hash (n is part of the content)
        b.set_num_nodes(10);
        let g3 = b.build(WeightModel::Provided).unwrap();
        assert_ne!(g.content_hash(), g3.content_hash());
    }
}
