//! `bench_diff` — sample-count regression check (CI).
//!
//! Timing numbers drift with hardware, but the `"counters"` fields of
//! the `BENCH_*.json` snapshots (algorithm RR-set totals on fixed
//! fixtures, under both stopping rules, plus the serving front end's
//! `traffic_sim_*` admission/planner counters) are deterministic:
//! seeded RNG streams, thread-invariant pools, virtual-clock admission.
//! This binary recomputes them from scratch
//! ([`sns_bench::sample_counts::counters`]) and diffs them — and
//! any counters found in checked-in `BENCH_*.json` snapshots — against
//! the baseline file `results/bench_baselines/sample_counts.json`.
//! Counters named `*_speedup` (e.g. the pool-store load-vs-resample
//! ratio) are timing-derived **floors**: they pass at or above their
//! baselined minimum, fail loudly below it, and `--write` carries the
//! floor over instead of overwriting it with a local measurement.
//! Wall-clock serving figures (the `"serving"` object of
//! `BENCH_query_engine.json` — p50/p99 latency, queries/sec) are
//! deliberately **outside** the `"counters"` section and never diffed:
//! the CI container has one CPU and latency there means nothing.
//!
//! Any mismatch prints a GitHub-annotation warning, lands in the
//! workflow's step summary as an expected-vs-realized table
//! (`$GITHUB_STEP_SUMMARY`), and makes the process **exit nonzero** so
//! drift is visible in the checks UI. The CI step still runs with
//! `continue-on-error: true` — drift flags loudly but never blocks a
//! merge; the right response is a human judgement plus
//! `bench_diff --write`. This is the guard that would have caught the
//! Λ-dropped D-SSA stopping rule (~4× over-sampling at identical
//! wall-time per sample) mechanically.
//!
//! ```sh
//! cargo run --release -p sns-bench --bin bench_diff          # check
//! cargo run --release -p sns-bench --bin bench_diff -- --write  # rebaseline
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const BASELINE: &str = "results/bench_baselines/sample_counts.json";

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Extracts the `"name": integer` pairs of a top-level `"counters"`
/// object from our fixed-layout snapshot JSON (one pair per line — the
/// format `write_bench_json_with_counters` and `--write` emit).
fn parse_counters(json: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(start) = json.find("\"counters\"") else { return out };
    for line in json[start..].lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with('}') {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().trim_matches('"');
            if let Ok(value) = value.trim().parse::<u64>() {
                out.insert(name.to_string(), value);
            }
        }
    }
    out
}

/// Counters named `*_speedup` are timing-derived **floors**: the
/// realized value passes at or above the baseline, fails below it,
/// and `--write` preserves the baselined floor instead of overwriting
/// it with whatever this machine happened to measure. They are only
/// computed by the real bench runs, so the recomputed pass neither
/// produces nor orphan-checks them.
fn is_floor(name: &str) -> bool {
    name.ends_with("_speedup")
}

fn write_baseline(path: &Path, counters: &[(String, u64)]) {
    let mut out = String::from("{\n  \"counters\": {\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        let sep = if i + 1 == counters.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value}{sep}\n"));
    }
    out.push_str("  }\n}\n");
    std::fs::create_dir_all(path.parent().expect("baseline path has a parent"))
        .expect("create baseline dir");
    std::fs::write(path, out).expect("write baseline");
    println!("wrote {}", path.display());
}

/// One row of the expected-vs-realized report.
struct Row {
    source: String,
    name: String,
    expected: Option<u64>,
    realized: Option<u64>,
}

impl Row {
    fn is_drift(&self) -> bool {
        match (self.expected, self.realized) {
            (Some(e), Some(r)) if is_floor(&self.name) => r < e,
            (e, r) => e != r,
        }
    }

    fn status(&self) -> String {
        match (self.expected, self.realized) {
            (Some(e), Some(r)) if is_floor(&self.name) => {
                if r >= e {
                    "ok (>= floor)".into()
                } else {
                    format!("below floor ({:.2}x)", r as f64 / e as f64)
                }
            }
            (Some(e), Some(r)) if e == r => "ok".into(),
            (Some(e), Some(r)) => format!("drift ({:.2}x)", r as f64 / e as f64),
            (None, Some(_)) => "no baseline".into(),
            (Some(_), None) => "orphaned baseline".into(),
            (None, None) => unreachable!("a row always has one side"),
        }
    }
}

/// Diffs `got` against `baseline`, printing warn-only annotations and
/// accumulating report rows. Returns the number of mismatches.
fn diff(
    source: &str,
    got: &BTreeMap<String, u64>,
    baseline: &BTreeMap<String, u64>,
    rows: &mut Vec<Row>,
) -> usize {
    let mut mismatches = 0;
    for (name, &value) in got {
        let expected = baseline.get(name).copied();
        rows.push(Row {
            source: source.into(),
            name: name.clone(),
            expected,
            realized: Some(value),
        });
        match expected {
            None => println!(
                "::warning::{source}: counter {name} = {value} has no baseline — \
                 rebaseline with `bench_diff --write`"
            ),
            Some(floor) if is_floor(name) => {
                if value >= floor {
                    println!("{source}: {name} = {value} meets its floor of {floor}");
                } else {
                    mismatches += 1;
                    println!(
                        "::warning::{source}: counter {name} = {value} fell below its \
                         baselined floor {floor} — a performance regression, not noise; \
                         investigate before rebaselining"
                    );
                }
            }
            Some(want) if want != value => {
                mismatches += 1;
                let ratio = value as f64 / want as f64;
                println!(
                    "::warning::{source}: counter {name} = {value}, baseline {want} \
                     ({ratio:.2}x) — sample-count behavior changed; if intended, \
                     rebaseline with `bench_diff --write`"
                );
            }
            Some(_) => println!("{source}: {name} = {value} matches baseline"),
        }
    }
    mismatches
}

/// Renders the expected-vs-realized table into the GitHub step summary
/// (`$GITHUB_STEP_SUMMARY`), if CI provides one. Drifting rows sort
/// first so the signal is at the top of the checks UI.
fn write_step_summary(rows: &[Row], mismatches: usize) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    let mut md = String::from("## bench_diff — deterministic sample counters\n\n");
    let unbaselined = rows.iter().filter(|r| r.expected.is_none()).count();
    if mismatches == 0 && unbaselined == 0 {
        let _ = writeln!(md, "All {} counters match their baselines.\n", rows.len());
    } else {
        if mismatches > 0 {
            let _ = writeln!(
                md,
                "**{mismatches} counter mismatch(es)** — sample-count behavior changed; \
                 if intended, rebaseline with `bench_diff --write`.\n"
            );
        }
        if unbaselined > 0 {
            let _ = writeln!(
                md,
                "**{unbaselined} counter(s) without a baseline** — record them with \
                 `bench_diff --write`.\n"
            );
        }
    }
    md.push_str("| source | counter | expected | realized | status |\n");
    md.push_str("|---|---|---:|---:|---|\n");
    let fmt = |v: Option<u64>| v.map_or_else(|| "—".into(), |v| v.to_string());
    let (drifted, clean): (Vec<_>, Vec<_>) = rows.iter().partition(|r| r.is_drift());
    for r in drifted.iter().chain(&clean) {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} |",
            r.source,
            r.name,
            fmt(r.expected),
            fmt(r.realized),
            r.status()
        );
    }
    md.push('\n');
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()));
    if let Err(e) = appended {
        println!("::warning::could not write step summary to {path}: {e}");
    }
}

fn main() {
    let root = workspace_root();
    let baseline_path = root.join(BASELINE);
    println!("recomputing deterministic sample counters (seconds)...");
    let fresh = sns_bench::sample_counts::counters();

    if std::env::args().any(|a| a == "--write") {
        let mut all: Vec<(String, u64)> = fresh.iter().map(|&(n, v)| (n.to_string(), v)).collect();
        // Floors are hand-set policy, not measurements: carry them over
        // verbatim from the previous baseline.
        if let Ok(old) = std::fs::read_to_string(&baseline_path) {
            for (name, value) in parse_counters(&old) {
                if is_floor(&name) && !all.iter().any(|(n, _)| *n == name) {
                    all.push((name, value));
                }
            }
        }
        write_baseline(&baseline_path, &all);
        return;
    }

    let Ok(baseline_json) = std::fs::read_to_string(&baseline_path) else {
        println!("::warning::no baseline at {BASELINE} — create one with `bench_diff --write`");
        std::process::exit(1);
    };
    let baseline = parse_counters(&baseline_json);
    let fresh_map: BTreeMap<String, u64> = fresh.iter().map(|&(n, v)| (n.to_string(), v)).collect();
    let mut rows = Vec::new();
    let mut mismatches = diff("recomputed", &fresh_map, &baseline, &mut rows);
    // Orphaned baseline entries matter too: a renamed or deleted counter
    // must not silently shrink what the guard guards. Floor counters are
    // exempt — they live only in the bench-run snapshots, never in the
    // recomputed set.
    for name in baseline.keys().filter(|n| !fresh_map.contains_key(*n) && !is_floor(n)) {
        mismatches += 1;
        rows.push(Row {
            source: "recomputed".into(),
            name: name.clone(),
            expected: baseline.get(name).copied(),
            realized: None,
        });
        println!(
            "::warning::baseline counter {name} is no longer computed — if the fixture was \
             renamed or removed on purpose, rebaseline with `bench_diff --write`"
        );
    }

    // Also diff the counters embedded in checked-in BENCH_*.json
    // snapshots (stale snapshots after a behavior change are worth a
    // nudge, even though the recomputed pass above is authoritative).
    if let Ok(entries) = std::fs::read_dir(&root) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
                continue;
            }
            let Ok(json) = std::fs::read_to_string(entry.path()) else { continue };
            let counters = parse_counters(&json);
            if !counters.is_empty() {
                mismatches += diff(&name, &counters, &baseline, &mut rows);
            }
        }
    }

    write_step_summary(&rows, mismatches);
    if mismatches == 0 {
        println!("bench_diff: all sample counters match their baselines");
    } else {
        println!(
            "bench_diff: {mismatches} counter mismatch(es) — exiting nonzero (the CI step is \
             continue-on-error, so this flags in the checks UI without blocking)"
        );
        std::process::exit(1);
    }
}
