//! `repro` — regenerate the Stop-and-Stare paper's tables and figures.
//!
//! ```text
//! repro table2                 # Table 2
//! repro fig2 --quick           # Figure 2 (LT influence), quick mode
//! repro figures --model IC     # Figures 3/5/7 in one grid run
//! repro table3                 # Table 3
//! repro fig8                   # Figure 8 (TVM)
//! repro all --quick            # everything
//! ```

use sns_bench::config::{usage, Config};
use sns_bench::experiments;

fn main() {
    let args = std::env::args().skip(1);
    match Config::from_args(args) {
        Ok(cfg) => experiments::run(&cfg),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
