//! Table rendering and CSV output.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A rectangular results table: header row plus data rows, printed
/// aligned to stdout and mirrored to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (also the CSV file stem).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch in {}", self.title);
        self.rows.push(row);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout and writes `<out_dir>/<slug>.csv`.
    pub fn emit(&self, out_dir: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(out_dir) {
            eprintln!("warning: could not write CSV for {}: {e}", self.title);
        }
    }

    /// Writes the CSV mirror; the file name is the slugified title.
    pub fn write_csv(&self, out_dir: &str) -> std::io::Result<()> {
        fs::create_dir_all(out_dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let path = Path::new(out_dir).join(format!("{slug}.csv"));
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", csv_row(&self.header))?;
        for row in &self.rows {
            writeln!(f, "{}", csv_row(row))?;
        }
        Ok(())
    }
}

fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats seconds compactly (`ms` below 1s, two decimals up to 100s,
/// integer seconds beyond, hours past 3600).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.0} ms", secs * 1e3)
    } else if secs < 100.0 {
        format!("{secs:.2} s")
    } else if secs < 3600.0 {
        format!("{secs:.0} s")
    } else {
        format!("{:.2} h", secs / 3600.0)
    }
}

/// Formats a count with K/M/G suffixes, like the paper's Table 3.
pub fn fmt_count(x: u64) -> String {
    let xf = x as f64;
    if xf >= 1e9 {
        format!("{:.1} G", xf / 1e9)
    } else if xf >= 1e6 {
        format!("{:.1} M", xf / 1e6)
    } else if xf >= 1e3 {
        format!("{:.0} K", xf / 1e3)
    } else {
        format!("{x}")
    }
}

/// Formats bytes as MB (the Figures 6–7 axis).
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.1} MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "long-header"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_row(&["a,b".to_string(), "c\"d".to_string()]), "\"a,b\",\"c\"\"d\"");
        assert_eq!(csv_row(&["plain".to_string()]), "plain");
    }

    #[test]
    fn csv_file_written() {
        let dir = std::env::temp_dir().join("sns_bench_csv_test");
        let dir = dir.to_str().unwrap();
        let mut t = Table::new("Fig 9 (test)", &["x"]);
        t.push_row(vec!["1".into()]);
        t.write_csv(dir).unwrap();
        let content = std::fs::read_to_string(format!("{dir}/fig_9__test_.csv")).unwrap();
        assert!(content.starts_with("x\n"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.5), "500 ms");
        assert_eq!(fmt_secs(1.234), "1.23 s");
        assert_eq!(fmt_secs(250.0), "250 s");
        assert_eq!(fmt_secs(7200.0), "2.00 h");
        assert_eq!(fmt_count(950), "950");
        assert_eq!(fmt_count(24_000), "24 K");
        assert_eq!(fmt_count(3_300_000), "3.3 M");
        assert_eq!(fmt_count(1_800_000_000), "1.8 G");
        assert_eq!(fmt_mb(2 * 1024 * 1024), "2.0 MB");
    }
}
