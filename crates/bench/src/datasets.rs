//! Dataset preparation for the harness: which stand-ins each experiment
//! uses and at what scale.

use sns_graph::gen::datasets::{self, DatasetSpec};
use sns_graph::Graph;

use crate::config::Config;

/// A generated stand-in ready to run on.
pub struct PreparedDataset {
    /// The Table 2 spec this stands in for.
    pub spec: &'static DatasetSpec,
    /// Effective scale used (spec default × config multiplier × quick
    /// reduction).
    pub scale: f64,
    /// The generated graph (weighted cascade weights, §7.1).
    pub graph: Graph,
}

impl PreparedDataset {
    /// Human-readable label, e.g. `NetHEPT` or `Orkut@1/64`.
    pub fn label(&self) -> String {
        if (self.scale - 1.0).abs() < 1e-12 {
            self.spec.name.to_string()
        } else {
            format!("{}@{:.5}", self.spec.name, self.scale)
        }
    }
}

/// Effective scale for a spec under this config.
fn effective_scale(spec: &DatasetSpec, cfg: &Config) -> f64 {
    let quick_factor = if cfg.quick { 0.25 } else { 1.0 };
    // The figure-grid datasets DBLP and Twitter get an extra reduction in
    // full mode so the complete grid stays laptop-sized; Table 3's giants
    // already carry default scales (DESIGN.md §4).
    (spec.default_scale * cfg.scale * quick_factor).min(1.0)
}

/// Generates one stand-in.
pub fn prepare(spec: &'static DatasetSpec, cfg: &Config) -> PreparedDataset {
    let scale = effective_scale(spec, cfg);
    let graph =
        spec.generate(scale, cfg.seed).expect("dataset generation cannot fail for valid scales");
    PreparedDataset { spec, scale, graph }
}

/// The four networks of the Figures 2–7 grid (NetHEPT, NetPHY, DBLP,
/// Twitter). DBLP runs at quarter scale in full mode — the only
/// deviation, keeping the complete 8-point grid under an hour; shapes
/// are unaffected (see EXPERIMENTS.md).
pub fn figure_grid(cfg: &Config) -> Vec<PreparedDataset> {
    let mut sets = vec![prepare(&datasets::NETHEPT, cfg), prepare(&datasets::NETPHY, cfg)];
    let mut dblp_cfg = cfg.clone();
    dblp_cfg.scale = cfg.scale * 0.25;
    sets.push(prepare(&datasets::DBLP, &dblp_cfg));
    sets.push(prepare(&datasets::TWITTER, cfg));
    sets
}

/// The four networks of Table 3 (Enron, Epinions, Orkut, Friendster).
pub fn table3_datasets(cfg: &Config) -> Vec<PreparedDataset> {
    vec![
        prepare(&datasets::ENRON, cfg),
        prepare(&datasets::EPINIONS, cfg),
        prepare(&datasets::ORKUT, cfg),
        prepare(&datasets::FRIENDSTER, cfg),
    ]
}

/// The Twitter stand-in used by the TVM experiments (Table 4, Figure 8).
pub fn tvm_dataset(cfg: &Config) -> PreparedDataset {
    prepare(&datasets::TWITTER, cfg)
}

/// The k grid of the figure experiments (paper: 1 … 20000).
pub fn k_grid(cfg: &Config, n: u32) -> Vec<usize> {
    let full: &[usize] =
        if cfg.quick { &[1, 100, 1000] } else { &[1, 100, 500, 1000, 2000, 5000, 10_000, 20_000] };
    full.iter().copied().filter(|&k| k < n as usize).collect()
}

/// The k grid of the TVM experiments (paper: 1 … 1000).
pub fn tvm_k_grid(cfg: &Config) -> Vec<usize> {
    if cfg.quick {
        vec![1, 100, 500]
    } else {
        vec![1, 100, 250, 500, 750, 1000]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, Experiment};

    fn quick_cfg() -> Config {
        let mut c = Config::new(Experiment::Table2);
        c.quick = true;
        c.scale = 0.05;
        c
    }

    #[test]
    fn prepare_respects_scales() {
        let cfg = quick_cfg();
        let d = prepare(&datasets::NETHEPT, &cfg);
        // default 1.0 × 0.05 × 0.25 quick
        assert!((d.scale - 0.0125).abs() < 1e-12);
        assert_eq!(d.graph.num_nodes(), datasets::NETHEPT.scaled_nodes(d.scale));
        assert!(d.label().starts_with("NetHEPT@"));
    }

    #[test]
    fn grids_filter_by_n() {
        let mut cfg = quick_cfg();
        assert_eq!(k_grid(&cfg, 500), vec![1, 100]);
        cfg.quick = false;
        assert_eq!(k_grid(&cfg, 600).last(), Some(&500));
        assert_eq!(tvm_k_grid(&cfg).len(), 6);
    }

    #[test]
    fn figure_grid_has_four_networks() {
        let cfg = quick_cfg();
        let sets = figure_grid(&cfg);
        assert_eq!(sets.len(), 4);
        assert_eq!(sets[0].spec.name, "NetHEPT");
        assert_eq!(sets[3].spec.name, "Twitter");
    }
}
