//! Uniform dispatch over every algorithm the paper compares.

use sns_baselines::{CelfPlusPlus, Imm, Tim};
use sns_core::{Dssa, Params, RunResult, SamplingContext, Ssa};

/// The algorithms of §7.1, in the paper's plotting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// D-SSA (this paper).
    Dssa,
    /// SSA (this paper).
    Ssa,
    /// IMM (Tang et al., SIGMOD'15).
    Imm,
    /// TIM+ (Tang et al., SIGMOD'14).
    TimPlus,
    /// TIM (Tang et al., SIGMOD'14).
    Tim,
    /// CELF++ (Goyal et al., WWW'11) — simulation greedy; only feasible
    /// on small inputs, exactly as in the paper.
    CelfPlusPlus,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Dssa => "D-SSA",
            Algo::Ssa => "SSA",
            Algo::Imm => "IMM",
            Algo::TimPlus => "TIM+",
            Algo::Tim => "TIM",
            Algo::CelfPlusPlus => "CELF++",
        }
    }

    /// The RIS algorithm line-up of the figure grids.
    pub const RIS_LINEUP: [Algo; 5] = [Algo::Dssa, Algo::Ssa, Algo::Imm, Algo::TimPlus, Algo::Tim];

    /// The Table 3 line-up.
    pub const TABLE3_LINEUP: [Algo; 3] = [Algo::Dssa, Algo::Ssa, Algo::Imm];

    /// Runs the algorithm under `params` on `ctx`.
    ///
    /// `celf_simulations` configures the Monte Carlo oracle of CELF++
    /// (ignored by RIS algorithms).
    pub fn run(
        &self,
        ctx: &SamplingContext<'_>,
        params: Params,
        celf_simulations: u64,
    ) -> RunResult {
        match self {
            Algo::Dssa => Dssa::new(params).run(ctx),
            Algo::Ssa => Ssa::new(params).run(ctx),
            Algo::Imm => Imm::new(params).run(ctx),
            Algo::TimPlus => Tim::plus(params).run(ctx),
            Algo::Tim => Tim::new(params).run(ctx),
            Algo::CelfPlusPlus => {
                CelfPlusPlus::new(params.k).with_simulations(celf_simulations).run(ctx)
            }
        }
        .expect("algorithm run failed on validated inputs")
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::Model;
    use sns_graph::{gen, WeightModel};

    #[test]
    fn lineups_and_names() {
        assert_eq!(Algo::RIS_LINEUP.len(), 5);
        assert_eq!(Algo::TABLE3_LINEUP[0].name(), "D-SSA");
        assert_eq!(Algo::CelfPlusPlus.to_string(), "CELF++");
    }

    #[test]
    fn dispatch_runs_everything() {
        let g = gen::erdos_renyi(80, 400, 2).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
        let params = Params::new(2, 0.3, 0.2).unwrap();
        for algo in [Algo::Dssa, Algo::Ssa, Algo::Imm, Algo::TimPlus, Algo::Tim, Algo::CelfPlusPlus]
        {
            let r = algo.run(&ctx, params, 100);
            assert_eq!(r.seeds.len(), 2, "{algo}");
        }
    }
}
