//! Table 3 — running time and number of RR sets for D-SSA / SSA / IMM on
//! Enron, Epinions, Orkut and Friendster under LT, k ∈ {1, 500, 1000}.

use sns_core::{Params, SamplingContext};
use sns_diffusion::Model;

use crate::algorithms::Algo;
use crate::config::Config;
use crate::datasets::table3_datasets;
use crate::report::{fmt_count, fmt_secs, Table};

/// Prints Table 3 (two blocks: running time, then #RR sets), matching
/// the paper's layout `k ∈ {1, 500, 1000} × {D-SSA, SSA, IMM}`.
pub fn run_table3(cfg: &Config) {
    let ks: &[usize] = if cfg.quick { &[1, 500] } else { &[1, 500, 1000] };
    let algos = Algo::TABLE3_LINEUP;

    let mut header: Vec<String> = vec!["Data".into()];
    for &k in ks {
        for algo in algos {
            header.push(format!("{algo} k={k}"));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut time_table = Table::new("Table 3a: running time under LT model", &header_refs);
    let mut sets_table = Table::new("Table 3b: number of RR sets under LT model", &header_refs);

    for dataset in table3_datasets(cfg) {
        let n = dataset.graph.num_nodes();
        let mut time_row = vec![dataset.label()];
        let mut sets_row = vec![dataset.label()];
        for &k in ks {
            let params = Params::with_paper_delta(k.min(n as usize - 1), cfg.epsilon, u64::from(n))
                .expect("harness parameters are valid");
            let ctx = SamplingContext::new(&dataset.graph, Model::LinearThreshold)
                .with_seed(cfg.seed)
                .with_threads(cfg.threads);
            for algo in algos {
                eprintln!("[table3] {} {} k={k} ...", dataset.label(), algo);
                let r = algo.run(&ctx, params, cfg.simulations);
                time_row.push(fmt_secs(r.wall_time.as_secs_f64()));
                sets_row.push(fmt_count(r.rr_sets_total()));
            }
        }
        time_table.push_row(time_row);
        sets_table.push_row(sets_row);
    }
    time_table.emit(&cfg.out_dir);
    sets_table.emit(&cfg.out_dir);
}
