//! The §1 anecdote: "We also run CELF++ … and observe that D-SSA is
//! 2·10⁹ times faster."
//!
//! CELF++ needs `Ω(n)` Monte Carlo spread estimates just to initialize
//! its queue, each costing `Ω(simulations · cascade size)` — that is why
//! the paper could only run it on NetHEPT and extrapolates the Twitter
//! number. This experiment measures both algorithms on a small NetHEPT
//! stand-in, reports the measured speedup, and extrapolates CELF++'s
//! initialization cost to the paper's Twitter setting from the measured
//! per-estimate cost, labelled as the extrapolation it is.

use std::time::Duration;

use sns_baselines::CelfPlusPlus;
use sns_core::{Dssa, Params, SamplingContext};
use sns_graph::gen::datasets::{NETHEPT, TWITTER};

use crate::config::Config;
use crate::datasets::prepare;
use crate::report::{fmt_secs, Table};

/// Runs the CELF++ vs D-SSA comparison and the Twitter-scale
/// extrapolation.
pub fn run_celf_anecdote(cfg: &Config) {
    // Small stand-in: CELF++'s initialization alone is Θ(n·sims·spread).
    let mut small_cfg = cfg.clone();
    small_cfg.scale = cfg.scale * if cfg.quick { 0.05 } else { 0.1 };
    let dataset = prepare(&NETHEPT, &small_cfg);
    let n = dataset.graph.num_nodes();
    let k = 10usize.min(n as usize / 2);
    let sims = if cfg.quick { 500 } else { 2000 };

    let params = Params::with_paper_delta(k, cfg.epsilon, u64::from(n))
        .expect("harness parameters are valid");
    let ctx = SamplingContext::new(&dataset.graph, cfg.model)
        .with_seed(cfg.seed)
        .with_threads(cfg.threads);

    eprintln!("[celf] D-SSA on {} (n = {n}, k = {k}) ...", dataset.label());
    let dssa = Dssa::new(params).run(&ctx).expect("D-SSA run failed");
    eprintln!("[celf] CELF++ on {} ({sims} sims/estimate) ...", dataset.label());
    let celf = CelfPlusPlus::new(k)
        .with_simulations(sims)
        .with_timeout(Duration::from_secs(if cfg.quick { 120 } else { 600 }))
        .run(&ctx)
        .expect("CELF++ run failed");

    let speedup = celf.wall_time.as_secs_f64() / dssa.wall_time.as_secs_f64().max(1e-9);
    let mut table = Table::new(
        "CELF++ vs D-SSA (the paper's 2e9x anecdote, measured at feasible scale)",
        &["algorithm", "time", "simulations / RR sets", "timed out"],
    );
    table.push_row(vec![
        "D-SSA".into(),
        fmt_secs(dssa.wall_time.as_secs_f64()),
        format!("{} RR sets", dssa.rr_sets_total()),
        "no".into(),
    ]);
    table.push_row(vec![
        "CELF++".into(),
        fmt_secs(celf.wall_time.as_secs_f64()),
        format!("{} forward simulations", celf.total_edges_examined),
        if celf.hit_cap { "YES (padded result)".into() } else { "no".into() },
    ]);
    table.emit(&cfg.out_dir);
    println!("measured speedup of D-SSA over CELF++ at n = {n}: {speedup:.0}x");

    // Extrapolation to the paper's Twitter anecdote (n = 41.7M, k = 1000,
    // 10 000 simulations/estimate): CELF++ initialization alone needs n
    // estimates. Per-estimate cost scales with simulations and with the
    // average cascade size, which grows with network size; we keep the
    // measured per-sim cascade cost as a *lower bound*.
    let per_sim = celf.wall_time.as_secs_f64() / celf.total_edges_examined.max(1) as f64;
    let twitter_init_evals = TWITTER.nodes as f64;
    let projected = per_sim * 10_000.0 * twitter_init_evals;
    let dssa_twitter_guess = 3.5; // the paper's measured D-SSA seconds at k = 500
    println!(
        "extrapolated CELF++ initialization on Twitter (41.7M nodes, 10k sims/estimate): \
         >= {} — vs D-SSA's ~{}s => >= {:.1e}x, consistent with the paper's 2e9 claim\n",
        fmt_secs(projected),
        dssa_twitter_guess,
        projected / dssa_twitter_guess,
    );
}
