//! Table 2 — dataset statistics, paper-reported vs generated stand-in.

use sns_graph::gen::datasets;
use sns_graph::GraphStats;

use crate::config::Config;
use crate::datasets::prepare;
use crate::report::{fmt_count, Table};

/// Prints Table 2: for each dataset the paper's reported size and the
/// stand-in actually generated at the configured scale.
pub fn run_table2(cfg: &Config) {
    let mut table = Table::new(
        "Table 2: Datasets' Statistics (paper vs stand-in)",
        &[
            "Dataset",
            "paper #Nodes",
            "paper #Edges",
            "paper Avg.deg",
            "scale",
            "standin #Nodes",
            "standin #Arcs",
            "standin Avg.deg",
            "max in-deg",
        ],
    );
    for spec in datasets::ALL {
        let prepared = prepare(spec, cfg);
        let stats = GraphStats::compute(&prepared.graph);
        table.push_row(vec![
            spec.name.to_string(),
            fmt_count(spec.nodes),
            fmt_count(spec.edges),
            format!("{:.1}", spec.avg_degree),
            format!("{:.5}", prepared.scale),
            fmt_count(u64::from(stats.nodes)),
            fmt_count(stats.arcs),
            format!("{:.1}", stats.avg_out_degree),
            stats.max_in_degree.to_string(),
        ]);
    }
    table.emit(&cfg.out_dir);
}
