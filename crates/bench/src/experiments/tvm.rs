//! Table 4 and Figure 8 — the Targeted Viral Marketing experiments.

use sns_core::Params;
use sns_diffusion::Model;
use sns_tvm::{DssaTvm, KbTim, SsaTvm, TargetWeights, TOPIC_1, TOPIC_2};

use crate::config::Config;
use crate::datasets::{tvm_dataset, tvm_k_grid};
use crate::report::{fmt_count, fmt_secs, Table};

/// Prints Table 4: the two topics, their keywords, and the target-group
/// size both as mined in the paper and as synthesized on the stand-in.
pub fn run_table4(cfg: &Config) {
    let dataset = tvm_dataset(cfg);
    let mut table = Table::new(
        "Table 4: Topics, related keywords (synthetic target groups)",
        &["Topic", "Keywords", "paper #Users", "standin #Users", "standin Gamma"],
    );
    for (i, topic) in [TOPIC_1, TOPIC_2].iter().enumerate() {
        let weights = TargetWeights::from_topic(&dataset.graph, topic, cfg.seed + i as u64)
            .expect("topic synthesis cannot fail on non-empty graphs");
        table.push_row(vec![
            topic.name.to_string(),
            topic.keywords.join(", "),
            fmt_count(topic.users),
            fmt_count(u64::from(weights.num_targeted())),
            format!("{:.1}", weights.gamma()),
        ]);
    }
    println!("(target groups synthesized on {} — DESIGN.md §4)\n", dataset.label());
    table.emit(&cfg.out_dir);
}

/// Prints Figure 8: TVM running time vs k for D-SSA, SSA and KB-TIM on
/// the Twitter stand-in under LT, one table per topic.
pub fn run_fig8(cfg: &Config) {
    let dataset = tvm_dataset(cfg);
    let n = dataset.graph.num_nodes();
    let ks = tvm_k_grid(cfg);
    for (i, topic) in [TOPIC_1, TOPIC_2].iter().enumerate() {
        let weights = TargetWeights::from_topic(&dataset.graph, topic, cfg.seed + i as u64)
            .expect("topic synthesis cannot fail on non-empty graphs");
        let mut table = Table::new(
            format!(
                "Fig 8{} : TVM running time, {} on {}",
                (b'a' + i as u8) as char,
                topic.name,
                dataset.label()
            ),
            &["k", "D-SSA", "SSA", "KB-TIM", "D-SSA #RR", "SSA #RR", "KB-TIM #RR"],
        );
        for &k in &ks {
            let params = Params::with_paper_delta(k, cfg.epsilon, u64::from(n))
                .expect("harness parameters are valid");
            eprintln!("[fig8] {} k={k} ...", topic.name);
            let d = DssaTvm::new(params)
                .run(&dataset.graph, Model::LinearThreshold, &weights, cfg.seed, cfg.threads)
                .expect("D-SSA-TVM run failed");
            let s = SsaTvm::new(params)
                .run(&dataset.graph, Model::LinearThreshold, &weights, cfg.seed, cfg.threads)
                .expect("SSA-TVM run failed");
            let kb = KbTim::new(params)
                .run(&dataset.graph, Model::LinearThreshold, &weights, cfg.seed, cfg.threads)
                .expect("KB-TIM run failed");
            table.push_row(vec![
                k.to_string(),
                fmt_secs(d.wall_time.as_secs_f64()),
                fmt_secs(s.wall_time.as_secs_f64()),
                fmt_secs(kb.wall_time.as_secs_f64()),
                fmt_count(d.rr_sets_total()),
                fmt_count(s.rr_sets_total()),
                fmt_count(kb.rr_sets_total()),
            ]);
        }
        table.emit(&cfg.out_dir);
    }
    let _ = topic_sanity(&dataset.graph, cfg);
}

/// Cross-check printed under Figure 8: the TVM seeds of topic 1 must
/// score higher *targeted* influence than generic IM seeds of the same
/// budget (otherwise targeting is not doing anything).
fn topic_sanity(graph: &sns_graph::Graph, cfg: &Config) -> Option<()> {
    use sns_core::SamplingContext;
    let n = graph.num_nodes();
    let weights = TargetWeights::from_topic(graph, &TOPIC_1, cfg.seed).ok()?;
    let k = 20.min(n as usize / 2);
    let params = Params::with_paper_delta(k, cfg.epsilon.max(0.2), u64::from(n)).ok()?;
    let tvm = DssaTvm::new(params)
        .run(graph, Model::LinearThreshold, &weights, cfg.seed, cfg.threads)
        .ok()?;
    let im = sns_core::Dssa::new(params)
        .run(
            &SamplingContext::new(graph, Model::LinearThreshold)
                .with_seed(cfg.seed)
                .with_threads(cfg.threads),
        )
        .ok()?;
    let est = sns_tvm::TargetedSpreadEstimator::new(graph, Model::LinearThreshold, &weights)
        .with_threads(cfg.threads);
    let tvm_score = est.estimate(&tvm.seeds, cfg.simulations.min(2000), cfg.seed ^ 0xF168);
    let im_score = est.estimate(&im.seeds, cfg.simulations.min(2000), cfg.seed ^ 0xF168);
    println!(
        "sanity: targeted influence of TVM seeds = {tvm_score:.1} vs IM seeds = {im_score:.1} (k = {k}) — targeting {}\n",
        if tvm_score >= im_score { "wins, as expected" } else { "UNEXPECTEDLY loses" }
    );
    Some(())
}
