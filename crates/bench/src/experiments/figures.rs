//! Figures 2–7 — the (dataset × k × algorithm) grid.
//!
//! One grid run produces all three metric families the paper plots:
//! expected influence (Figs. 2–3), running time (Figs. 4–5) and memory
//! (Figs. 6–7). The LT/IC split is the `--model` flag (even-numbered
//! figures are LT, odd are IC).

use sns_core::{Params, SamplingContext};
use sns_diffusion::SpreadEstimator;

use crate::algorithms::Algo;
use crate::config::Config;
use crate::datasets::{figure_grid, k_grid, PreparedDataset};
use crate::report::{fmt_mb, fmt_secs, Table};

/// Which metric(s) to print from the grid run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureMetric {
    /// Figures 2–3: expected influence of the returned seed set,
    /// measured by forward Monte Carlo simulation.
    Influence,
    /// Figures 4–5: wall-clock running time.
    Runtime,
    /// Figures 6–7: peak RR-pool memory.
    Memory,
}

impl FigureMetric {
    fn figure_name(&self, cfg: &Config) -> String {
        use sns_diffusion::Model;
        let lt = cfg.model == Model::LinearThreshold;
        match self {
            FigureMetric::Influence => {
                format!("Fig {} : Expected Influence under {}", if lt { 2 } else { 3 }, cfg.model)
            }
            FigureMetric::Runtime => {
                format!("Fig {} : Running time under {}", if lt { 4 } else { 5 }, cfg.model)
            }
            FigureMetric::Memory => {
                format!("Fig {} : Memory usage under {}", if lt { 6 } else { 7 }, cfg.model)
            }
        }
    }
}

struct Cell {
    k: usize,
    values: Vec<(FigureMetric, String)>,
}

/// Runs the grid and emits one table per (dataset, metric).
pub fn run_figures(cfg: &Config, metrics: &[FigureMetric]) {
    let want_influence = metrics.contains(&FigureMetric::Influence);
    for dataset in figure_grid(cfg) {
        let ks = k_grid(cfg, dataset.graph.num_nodes());
        let mut per_algo: Vec<(Algo, Vec<Cell>)> = Vec::new();
        for algo in Algo::RIS_LINEUP {
            let mut cells = Vec::new();
            for &k in &ks {
                let cell = run_cell(cfg, &dataset, algo, k, want_influence, metrics);
                cells.push(cell);
            }
            per_algo.push((algo, cells));
        }
        for &metric in metrics {
            emit_metric_table(cfg, &dataset, metric, &ks, &per_algo);
        }
    }
}

fn run_cell(
    cfg: &Config,
    dataset: &PreparedDataset,
    algo: Algo,
    k: usize,
    want_influence: bool,
    metrics: &[FigureMetric],
) -> Cell {
    let n = dataset.graph.num_nodes();
    let params = Params::with_paper_delta(k, cfg.epsilon, u64::from(n))
        .expect("harness parameters are valid");
    let ctx = SamplingContext::new(&dataset.graph, cfg.model)
        .with_seed(cfg.seed)
        .with_threads(cfg.threads);
    eprintln!("[figures] {} {} k={k} ...", dataset.label(), algo);
    let result = algo.run(&ctx, params, cfg.simulations);

    let mut values = Vec::new();
    for &metric in metrics {
        let rendered = match metric {
            FigureMetric::Influence => {
                if want_influence {
                    let spread = SpreadEstimator::new(&dataset.graph, cfg.model)
                        .with_threads(cfg.threads)
                        .estimate(&result.seeds, cfg.simulations, cfg.seed ^ 0x5EED);
                    format!("{spread:.0}")
                } else {
                    String::new()
                }
            }
            FigureMetric::Runtime => fmt_secs(result.wall_time.as_secs_f64()),
            FigureMetric::Memory => fmt_mb(result.peak_pool_bytes),
        };
        values.push((metric, rendered));
    }
    Cell { k, values }
}

fn emit_metric_table(
    cfg: &Config,
    dataset: &PreparedDataset,
    metric: FigureMetric,
    ks: &[usize],
    per_algo: &[(Algo, Vec<Cell>)],
) {
    let title = format!("{} : {}", metric.figure_name(cfg), dataset.label());
    let mut header: Vec<String> = vec!["k".to_string()];
    header.extend(per_algo.iter().map(|(a, _)| a.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(title, &header_refs);
    for (row_idx, &k) in ks.iter().enumerate() {
        let mut row = vec![k.to_string()];
        for (_, cells) in per_algo {
            let cell = &cells[row_idx];
            debug_assert_eq!(cell.k, k);
            let value = cell
                .values
                .iter()
                .find(|(m, _)| *m == metric)
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            row.push(value);
        }
        table.push_row(row);
    }
    table.emit(&cfg.out_dir);
}
