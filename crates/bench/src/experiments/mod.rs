//! The experiment implementations, one module per paper artifact.

mod celf_anecdote;
mod figures;
mod table2;
mod table3;
mod thresholds;
mod tvm;

pub use celf_anecdote::run_celf_anecdote;
pub use figures::{run_figures, FigureMetric};
pub use table2::run_table2;
pub use table3::run_table3;
pub use thresholds::run_thresholds;
pub use tvm::{run_fig8, run_table4};

use crate::config::{Config, Experiment};

/// Runs the configured experiment(s).
pub fn run(cfg: &Config) {
    banner(cfg);
    match cfg.experiment {
        Experiment::Table2 => run_table2(cfg),
        Experiment::FigInfluence => run_figures(cfg, &[FigureMetric::Influence]),
        Experiment::FigRuntime => run_figures(cfg, &[FigureMetric::Runtime]),
        Experiment::FigMemory => run_figures(cfg, &[FigureMetric::Memory]),
        Experiment::Figures => run_figures(
            cfg,
            &[FigureMetric::Influence, FigureMetric::Runtime, FigureMetric::Memory],
        ),
        Experiment::Table3 => run_table3(cfg),
        Experiment::Table4 => run_table4(cfg),
        Experiment::Fig8 => run_fig8(cfg),
        Experiment::CelfAnecdote => run_celf_anecdote(cfg),
        Experiment::Thresholds => run_thresholds(cfg),
        Experiment::All => {
            run_table2(cfg);
            run_figures(
                cfg,
                &[FigureMetric::Influence, FigureMetric::Runtime, FigureMetric::Memory],
            );
            run_table3(cfg);
            run_table4(cfg);
            run_fig8(cfg);
            run_celf_anecdote(cfg);
            run_thresholds(cfg);
        }
    }
}

fn banner(cfg: &Config) {
    println!(
        "# Stop-and-Stare reproduction | model {} | eps {} | seed {} | threads {} | {}{}",
        cfg.model,
        cfg.epsilon,
        cfg.seed,
        cfg.threads,
        if cfg.quick { "quick mode" } else { "full mode" },
        if (cfg.scale - 1.0).abs() > 1e-12 {
            format!(" | extra scale {}", cfg.scale)
        } else {
            String::new()
        },
    );
    println!(
        "# datasets are R-MAT stand-ins (DESIGN.md §4); compare shapes, not absolute values\n"
    );
}
