//! The §3 theory table: prior RIS thresholds (computed with each run's
//! own OPT estimate) against the sample counts SSA and D-SSA actually
//! realized.
//!
//! This is the quantitative version of the paper's Figure-free claim
//! that SSA/D-SSA "meet the minimum thresholds without explicitly
//! computing them": the realized counts sit orders of magnitude below
//! the thresholds TIM (Eq. 12) and IMM (Eq. 13) must budget for.

use sns_core::bounds::prior_thresholds;
use sns_core::{Dssa, Params, SamplingContext, Ssa};
use sns_graph::gen::datasets::NETHEPT;

use crate::config::Config;
use crate::datasets::prepare;
use crate::report::{fmt_count, Table};

/// Prints the thresholds-vs-realized table on the NetHEPT stand-in.
pub fn run_thresholds(cfg: &Config) {
    let dataset = prepare(&NETHEPT, cfg);
    let n = dataset.graph.num_nodes();
    let mut table = Table::new(
        "RIS thresholds (Eqs. 12-14, at the measured OPT) vs realized sample counts",
        &["k", "TIM threshold", "IMM threshold", "SSA used", "D-SSA used", "D-SSA/IMM-threshold"],
    );
    let ks: &[usize] = if cfg.quick { &[1, 100] } else { &[1, 100, 1000] };
    for &k in ks {
        let k = k.min(n as usize - 1);
        let params = Params::with_paper_delta(k, cfg.epsilon, u64::from(n))
            .expect("harness parameters are valid");
        let ctx = SamplingContext::new(&dataset.graph, cfg.model)
            .with_seed(cfg.seed)
            .with_threads(cfg.threads);
        eprintln!("[thresholds] k={k} ...");
        let dssa = Dssa::new(params).run(&ctx).expect("D-SSA run failed");
        let ssa = Ssa::new(params).run(&ctx).expect("SSA run failed");
        // Î ≥ (1 − 1/e − ε)OPT, so this *underestimates* OPT and hence
        // overestimates neither threshold unfairly.
        let opt_proxy = dssa.influence_estimate.max(k as f64);
        let prior = prior_thresholds(u64::from(n), k as u64, cfg.epsilon, params.delta, opt_proxy);
        table.push_row(vec![
            k.to_string(),
            fmt_count(prior.tim as u64),
            fmt_count(prior.imm as u64),
            fmt_count(ssa.rr_sets_total()),
            fmt_count(dssa.rr_sets_total()),
            format!("{:.3}", dssa.rr_sets_total() as f64 / prior.imm),
        ]);
    }
    table.emit(&cfg.out_dir);
    println!(
        "(thresholds computed from each run's own Î as the OPT proxy; realized counts \
         include verification samples)\n"
    );
}
