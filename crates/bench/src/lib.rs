//! Reproduction harness for the Stop-and-Stare paper's evaluation (§7).
//!
//! The `repro` binary regenerates every table and figure:
//!
//! | Subcommand | Paper artifact |
//! |---|---|
//! | `repro table2` | Table 2 — dataset statistics |
//! | `repro fig2` / `repro fig3` | Figures 2–3 — expected influence vs k (LT / IC) |
//! | `repro fig4` / `repro fig5` | Figures 4–5 — running time vs k (LT / IC) |
//! | `repro fig6` / `repro fig7` | Figures 6–7 — memory vs k (LT / IC) |
//! | `repro figures --model LT\|IC` | one grid run printing influence+time+memory |
//! | `repro table3` | Table 3 — time and #RR sets across four datasets |
//! | `repro table4` | Table 4 — TVM topics and target-group sizes |
//! | `repro fig8` | Figure 8 — TVM running time, topics 1–2 |
//! | `repro celf-anecdote` | the §1 CELF++ speedup anecdote, measured + extrapolated |
//! | `repro all` | everything above |
//!
//! Real SNAP/KONECT snapshots are replaced by R-MAT stand-ins
//! (`DESIGN.md` §4); absolute numbers therefore differ from the paper,
//! but the comparisons the paper draws — who wins, by how many orders of
//! magnitude, and how the curves bend with k — are reproduced. Results
//! stream to stdout as aligned tables and to `results/*.csv`.

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

pub mod algorithms;
pub mod config;
pub mod datasets;
pub mod experiments;
pub mod oracle;
pub mod report;
pub mod sample_counts;
pub mod traffic;
