//! Exact-IP quality oracle for budgeted seed selection.
//!
//! TipTop (arXiv:1701.08462) solves influence maximization near-exactly
//! by handing the sampled RR sets to an integer-program solver; this
//! module does the same thing at test scale with a branch-and-bound
//! search instead of a MIP solver. On fixtures of ≤ 20 nodes and ≤ 128
//! RR sets the exact optimum of *maximum coverage under a knapsack
//! budget* is computable in microseconds, which turns the budgeted
//! ratio-greedy's `1 − 1/√e` guarantee (see `docs/DERIVATIONS.md`) from
//! a theorem into a regression test: `tests/budgeted_oracle.rs` asserts
//! the bound on every fixture and the `query_engine` bench records the
//! realized greedy/exact gap in `BENCH_query_engine.json`.
//!
//! The solver is deliberately independent of the production code path —
//! it never touches [`CoverageView`]'s gain tables, heaps or stamps — so
//! agreement between the two is evidence, not tautology.

use sns_diffusion::RrMeta;
use sns_rrset::{
    BudgetedCoverageResult, CoverageView, GreedyScratch, NodeCosts, RrCollection, SeedConstraints,
};

/// Per-node set-coverage bitmasks: `masks[v]` has bit `s` set iff node
/// `v` is a member of RR set `s`. Panics if more than 128 sets are given
/// (the oracle is a test-scale tool; widen the mask type before widening
/// the fixtures).
pub fn node_masks(sets: &[Vec<u32>], n: u32) -> Vec<u128> {
    assert!(sets.len() <= 128, "oracle masks hold at most 128 sets");
    let mut masks = vec![0u128; n as usize];
    for (s, members) in sets.iter().enumerate() {
        for &v in members {
            masks[v as usize] |= 1u128 << s;
        }
    }
    masks
}

/// Exact maximum number of sets coverable by any node subset whose total
/// cost fits `budget` — branch and bound over the nodes, descending by
/// individual coverage, pruning on both the remaining budget and an
/// optimistic suffix-union bound.
pub fn exact_max_coverage_under_budget(masks: &[u128], costs: &[f64], budget: f64) -> u64 {
    assert_eq!(masks.len(), costs.len(), "one cost per node");
    assert!(budget.is_finite() && budget >= 0.0, "budget must be finite and nonnegative");
    let mut order: Vec<usize> = (0..masks.len()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(masks[v].count_ones()));
    // suffix[i] = union of every mask from position i on: the most the
    // remaining nodes could still add, ignoring costs — an admissible
    // (optimistic) bound for pruning.
    let mut suffix = vec![0u128; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] | masks[order[i]];
    }
    let mut best = 0u64;
    branch(&order, masks, costs, &suffix, 0, 0, budget, &mut best);
    best
}

#[allow(clippy::too_many_arguments)]
fn branch(
    order: &[usize],
    masks: &[u128],
    costs: &[f64],
    suffix: &[u128],
    i: usize,
    covered: u128,
    remaining: f64,
    best: &mut u64,
) {
    let covered_now = u64::from(covered.count_ones());
    if covered_now > *best {
        *best = covered_now;
    }
    let Some(&v) = order.get(i) else { return };
    if u64::from((covered | suffix[i]).count_ones()) <= *best {
        return; // even covering every remaining set cannot beat the incumbent
    }
    if costs[v] <= remaining {
        branch(order, masks, costs, suffix, i + 1, covered | masks[v], remaining - costs[v], best);
    }
    branch(order, masks, costs, suffix, i + 1, covered, remaining, best);
}

/// One oracle fixture: a tiny RR-set pool, a cost regime and a budget.
/// All costs are dyadic rationals so budget arithmetic is exact in f64.
#[derive(Debug, Clone)]
pub struct OracleFixture {
    /// Human-readable regime label (appears in assertions and reports).
    pub name: &'static str,
    /// RR sets as member lists.
    pub sets: Vec<Vec<u32>>,
    /// Node-universe size (≤ 20).
    pub n: u32,
    /// Per-node costs, one per node.
    pub costs: Vec<f64>,
    /// The knapsack budget.
    pub budget: f64,
}

/// The checked fixture suite — five cost/budget regimes chosen to stress
/// different failure modes of ratio greedy: uniform costs (degeneration
/// to cardinality), cheap-hub skew (greedy's favorite terrain),
/// expensive-hub lockout (where the single-node fallback arm earns its
/// keep), a tight fractional budget over mixed dyadic costs, and an
/// overlap decoy where greedy is *provably* suboptimal — so the realized
/// gap the bench records is a real measurement, not a constant 1000‰.
pub fn fixtures() -> Vec<OracleFixture> {
    let mut out = Vec::new();

    // Regime 1: uniform costs, budget = 4 — exactly the top-4 problem.
    let sets: Vec<Vec<u32>> =
        (0..40u32).map(|s| vec![s % 11, (s * 7 + 3) % 11, (s * 5 + 1) % 11]).collect();
    out.push(OracleFixture {
        name: "uniform-costs",
        sets,
        n: 11,
        costs: vec![1.0; 11],
        budget: 4.0,
    });

    // Regime 2: cheap hubs — the high-coverage nodes are also the cheap
    // ones, so ratio greedy should land near the exact optimum.
    let sets: Vec<Vec<u32>> = (0..60u32).map(|s| vec![s % 5, 5 + (s * 3 + 1) % 13]).collect();
    let costs: Vec<f64> = (0..18u32).map(|v| if v < 5 { 0.5 } else { 2.0 }).collect();
    out.push(OracleFixture { name: "cheap-hubs", sets, n: 18, costs, budget: 3.0 });

    // Regime 3: expensive hub — one node covers almost everything but
    // eats the whole budget, while cheap decoys tempt the ratio order.
    // This is the regime the max(greedy, best-single) arm exists for.
    // Hub ratio 48/4 = 12; decoy ratio 2/0.125 = 16, so greedy takes
    // both decoys first and can no longer afford the hub.
    let mut sets: Vec<Vec<u32>> = (0..48u32).map(|s| vec![0, 1 + s % 12]).collect();
    sets.extend([vec![13], vec![13], vec![14], vec![14]]);
    let mut costs = vec![3.75; 15];
    costs[0] = 4.0;
    costs[13] = 0.125;
    costs[14] = 0.125;
    out.push(OracleFixture { name: "expensive-hub", sets, n: 15, costs, budget: 4.0 });

    // Regime 4: tight fractional budget over mixed dyadic costs — many
    // affordable combinations, none dominant, so exact search has real
    // work to do and greedy's gap is genuinely exercised.
    let sets: Vec<Vec<u32>> =
        (0..90u32).map(|s| vec![s % 20, (s * 13 + 7) % 20, (s * 3 + 11) % 20]).collect();
    let costs: Vec<f64> =
        (0..20u32).map(|v| [0.25, 0.5, 0.75, 1.25, 1.5][(v % 5) as usize]).collect();
    out.push(OracleFixture { name: "tight-fractional", sets, n: 20, costs, budget: 2.75 });

    // Regime 5: overlap decoy — a genuine greedy gap. Three disjoint
    // unit-cost nodes (0, 1, 2) cover 3 sets each; the exact optimum
    // takes all three (9 sets, cost 3). Node 3 overlaps five of their
    // sets at cost 1.5: its ratio 5/1.5 ≈ 3.33 beats everyone's 3, so
    // greedy opens with it, can then afford only one more good node and
    // strands 0.5 budget — 8 of 9 sets (889‰). The best single node (5)
    // doesn't rescue it. This pins the realized-gap counter strictly
    // below 1000‰, proving the oracle can disagree with greedy.
    let sets: Vec<Vec<u32>> = vec![
        vec![0, 3],
        vec![0, 3],
        vec![0, 3],
        vec![1, 3],
        vec![1, 3],
        vec![1],
        vec![2],
        vec![2],
        vec![2],
    ];
    let mut costs = vec![1.0; 10];
    costs[3] = 1.5;
    out.push(OracleFixture { name: "overlap-decoy", sets, n: 10, costs, budget: 3.0 });

    out
}

/// Runs the production budgeted greedy on a fixture (fresh histogram
/// path, no constraints) and returns its result.
pub fn greedy_on(fixture: &OracleFixture) -> BudgetedCoverageResult {
    let mut rc = RrCollection::new(fixture.n);
    for s in &fixture.sets {
        rc.push(s, RrMeta { root: s.first().copied().unwrap_or(0), edges_examined: 0 });
    }
    let view = CoverageView::build(&rc, 0..sns_rrset::narrow::set_count(fixture.sets.len()));
    view.select_budgeted(
        fixture.budget,
        &NodeCosts::per_node(fixture.costs.clone().into()),
        &SeedConstraints::none(),
        &mut GreedyScratch::new(),
    )
}

/// Exact optimum of a fixture via [`exact_max_coverage_under_budget`].
pub fn exact_on(fixture: &OracleFixture) -> u64 {
    let masks = node_masks(&fixture.sets, fixture.n);
    exact_max_coverage_under_budget(&masks, &fixture.costs, fixture.budget)
}

/// `(name, greedy/exact ratio in permille)` for every fixture — the
/// realized approximation quality the bench report records next to the
/// `1 − 1/√e ≈ 393‰` floor the guarantee promises.
pub fn realized_gaps_permille() -> Vec<(&'static str, u64)> {
    fixtures()
        .iter()
        .map(|f| {
            let greedy = greedy_on(f).covered;
            let exact = exact_on(f);
            assert!(exact > 0, "degenerate fixture {}", f.name);
            (f.name, greedy * 1000 / exact)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_solver_agrees_with_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        for seed in 0..12u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..10u32);
            let sets: Vec<Vec<u32>> = (0..rng.gen_range(5..30u32))
                .map(|_| {
                    let len = rng.gen_range(1..4usize);
                    (0..len).map(|_| rng.gen_range(0..n)).collect()
                })
                .collect();
            let costs: Vec<f64> =
                (0..n).map(|_| [0.5, 1.0, 1.5, 2.0][rng.gen_range(0..4usize)]).collect();
            let budget = f64::from(rng.gen_range(1..7u32)) * 0.5;
            let masks = node_masks(&sets, n);
            // brute force: every subset, filtered by cost
            let mut brute = 0u64;
            for pick in 0..(1u32 << n) {
                let mut cost = 0.0;
                let mut covered = 0u128;
                for v in 0..n {
                    if pick & (1 << v) != 0 {
                        cost += costs[v as usize];
                        covered |= masks[v as usize];
                    }
                }
                if cost <= budget {
                    brute = brute.max(u64::from(covered.count_ones()));
                }
            }
            assert_eq!(
                exact_max_coverage_under_budget(&masks, &costs, budget),
                brute,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fixtures_are_within_scale_and_nontrivial() {
        let all = fixtures();
        assert!(all.len() >= 4, "at least four cost/budget regimes");
        for f in &all {
            assert!(f.n <= 20, "{}: oracle fixtures stay exact-solvable", f.name);
            assert!(f.sets.len() <= 128, "{}", f.name);
            assert_eq!(f.costs.len(), f.n as usize, "{}", f.name);
            assert!(exact_on(f) > 0, "{}", f.name);
        }
        // the expensive-hub regime actually triggers the fallback arm
        let hub = all.iter().find(|f| f.name == "expensive-hub").unwrap();
        assert!(greedy_on(hub).single_fallback, "fallback arm untested");
        // the overlap-decoy regime realizes a genuine greedy gap: 8 of 9
        // sets against the exact optimum, with no fallback rescue
        let decoy = all.iter().find(|f| f.name == "overlap-decoy").unwrap();
        let g = greedy_on(decoy);
        assert_eq!(g.covered, 8, "decoy must bait ratio greedy: {g:?}");
        assert_eq!(exact_on(decoy), 9);
        assert!(!g.single_fallback);
    }
}
