//! Harness configuration and command-line parsing (std-only, no external
//! CLI crates).

use sns_diffusion::Model;

/// Which experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 2: dataset statistics.
    Table2,
    /// Figures 2/3: expected influence vs k.
    FigInfluence,
    /// Figures 4/5: running time vs k.
    FigRuntime,
    /// Figures 6/7: memory vs k.
    FigMemory,
    /// One grid run printing influence + runtime + memory together.
    Figures,
    /// Table 3: running time and #RR sets on Enron/Epinions/Orkut/Friendster.
    Table3,
    /// Table 4: TVM topics.
    Table4,
    /// Figure 8: TVM running time.
    Fig8,
    /// The §1 CELF++-vs-D-SSA speedup anecdote.
    CelfAnecdote,
    /// The §3 theory table: prior thresholds vs realized sample counts.
    Thresholds,
    /// Everything.
    All,
}

/// Parsed harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Selected experiment.
    pub experiment: Experiment,
    /// Diffusion model for the figure grids (Figures 2/4/6 use LT,
    /// 3/5/7 use IC).
    pub model: Model,
    /// Quick mode: smaller grids, smaller stand-ins, fewer simulations.
    pub quick: bool,
    /// Extra scale multiplier applied on top of each dataset's default.
    pub scale: f64,
    /// Master seed for dataset generation and all algorithms.
    pub seed: u64,
    /// Worker threads for RR-pool growth and spread estimation.
    pub threads: usize,
    /// Monte Carlo simulations per spread estimate (Figures 2–3).
    pub simulations: u64,
    /// Approximation accuracy ε (paper: 0.1).
    pub epsilon: f64,
    /// Directory for CSV output.
    pub out_dir: String,
}

impl Config {
    /// Default configuration for an experiment.
    pub fn new(experiment: Experiment) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        Config {
            experiment,
            model: Model::LinearThreshold,
            quick: false,
            scale: 1.0,
            seed: 42,
            threads,
            simulations: 10_000,
            epsilon: 0.1,
            out_dir: "results".to_string(),
        }
    }

    /// Parses command-line arguments (first positional = experiment).
    pub fn from_args<I: Iterator<Item = String>>(mut args: I) -> Result<Self, String> {
        let sub = args.next().ok_or_else(usage)?;
        let experiment = match sub.as_str() {
            "table2" => Experiment::Table2,
            "fig2" | "fig3" => Experiment::FigInfluence,
            "fig4" | "fig5" => Experiment::FigRuntime,
            "fig6" | "fig7" => Experiment::FigMemory,
            "figures" => Experiment::Figures,
            "table3" => Experiment::Table3,
            "table4" => Experiment::Table4,
            "fig8" => Experiment::Fig8,
            "celf-anecdote" => Experiment::CelfAnecdote,
            "thresholds" => Experiment::Thresholds,
            "all" => Experiment::All,
            other => return Err(format!("unknown experiment {other:?}\n{}", usage())),
        };
        let mut cfg = Config::new(experiment);
        // Even-numbered paper figures are LT, odd are IC.
        cfg.model = match sub.as_str() {
            "fig3" | "fig5" | "fig7" => Model::IndependentCascade,
            _ => Model::LinearThreshold,
        };
        while let Some(flag) = args.next() {
            let mut value_for =
                |flag: &str| args.next().ok_or_else(|| format!("flag {flag} needs a value"));
            match flag.as_str() {
                "--quick" => {
                    cfg.quick = true;
                    cfg.simulations = 1000;
                }
                "--model" => {
                    cfg.model = match value_for("--model")?.to_ascii_uppercase().as_str() {
                        "LT" => Model::LinearThreshold,
                        "IC" => Model::IndependentCascade,
                        other => return Err(format!("unknown model {other:?} (use LT or IC)")),
                    };
                }
                "--scale" => {
                    cfg.scale =
                        value_for("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?;
                    if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
                        return Err("--scale must be in (0, 1]".into());
                    }
                }
                "--seed" => {
                    cfg.seed = value_for("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--threads" => {
                    cfg.threads =
                        value_for("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                    cfg.threads = cfg.threads.max(1);
                }
                "--sims" => {
                    cfg.simulations =
                        value_for("--sims")?.parse().map_err(|e| format!("--sims: {e}"))?;
                }
                "--epsilon" => {
                    cfg.epsilon =
                        value_for("--epsilon")?.parse().map_err(|e| format!("--epsilon: {e}"))?;
                }
                "--out" => cfg.out_dir = value_for("--out")?,
                other => return Err(format!("unknown flag {other:?}\n{}", usage())),
            }
        }
        Ok(cfg)
    }
}

/// Usage text.
pub fn usage() -> String {
    "usage: repro <table2|fig2|fig3|fig4|fig5|fig6|fig7|figures|table3|table4|fig8|celf-anecdote|thresholds|all> \
     [--quick] [--model LT|IC] [--scale X] [--seed N] [--threads N] [--sims N] [--epsilon E] [--out DIR]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Config, String> {
        Config::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_experiments_and_models() {
        assert_eq!(parse(&["table2"]).unwrap().experiment, Experiment::Table2);
        let c = parse(&["fig3"]).unwrap();
        assert_eq!(c.experiment, Experiment::FigInfluence);
        assert_eq!(c.model, Model::IndependentCascade);
        let c = parse(&["fig2"]).unwrap();
        assert_eq!(c.model, Model::LinearThreshold);
        let c = parse(&["figures", "--model", "IC"]).unwrap();
        assert_eq!(c.model, Model::IndependentCascade);
    }

    #[test]
    fn parses_flags() {
        let c = parse(&["table3", "--quick", "--seed", "7", "--threads", "2", "--scale", "0.5"])
            .unwrap();
        assert!(c.quick);
        assert_eq!(c.seed, 7);
        assert_eq!(c.threads, 2);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.simulations, 1000);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["nope"]).is_err());
        assert!(parse(&["fig2", "--model", "XY"]).is_err());
        assert!(parse(&["fig2", "--scale", "2.0"]).is_err());
        assert!(parse(&["fig2", "--scale"]).is_err());
        assert!(parse(&["fig2", "--wat"]).is_err());
    }
}
