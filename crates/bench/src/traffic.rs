//! Deterministic traffic simulator for the serving front end.
//!
//! Production traffic from millions of users is *skewed* (a few hot
//! audience topics and pool slices absorb most queries — modeled by a
//! Zipf topic distribution), *bursty* (arrival spikes far above the
//! sustainable service rate), and *live* (the pool keeps growing via
//! [`SeedQueryEngine::extend`] while queries are in flight). This module
//! replays exactly that shape against the real serving stack — the
//! [`AdmissionQueue`] at the door, the batch
//! planner behind it
//! ([`SeedQueryEngine::answer_planned`](sns_core::SeedQueryEngine::answer_planned))
//! — from one seed, so every run of the same [`TrafficConfig`] produces
//! **byte-identical counters**: arrivals, serves, typed rejects,
//! expiries, planner group counts, snapshot resolutions saved, and the
//! virtual-clock sojourn percentiles.
//!
//! The counters deliberately exclude anything a wall clock or a thread
//! scheduler can touch: admission decisions happen on the virtual
//! cost-unit clock *before* any parallel execution, and the planner's
//! grouping is a pure function of the drained batch. That is what lets
//! CI diff them as a hard gate (`tests/traffic_sim.rs`, the `serving`
//! job) and `bench_diff` track them next to the sample-count baselines,
//! while the wall-clock side — p50/p99 service latency and queries/sec —
//! is reported separately ([`TrafficReport`]) and never gated on the
//! 1-CPU CI container.

// Sanctioned wall-clock read: report-only wall time in the simulator summary;
// admission decisions run on the simulated tick clock (see lint-allow.toml).
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sns_core::{AdmissionQueue, NodeCosts, Priority, SamplingContext, SeedQuery, SeedQueryEngine};
use sns_diffusion::Model;
use sns_graph::{gen, WeightModel};
use sns_tvm::TargetWeights;

/// A seeded traffic scenario: fixture sizes, arrival process, query
/// mix, admission limits and growth schedule. Two simulations of an
/// identical config produce identical [`TrafficReport::counters`].
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed: graph, sampling stream and traffic draws all derive
    /// from it.
    pub seed: u64,
    /// Simulation steps (one admission + drain round each).
    pub steps: u32,
    /// Arrivals per ordinary step.
    pub base_arrivals: u32,
    /// Every `burst_every`-th step is a burst (0 disables bursts).
    pub burst_every: u32,
    /// Burst steps multiply arrivals by this factor.
    pub burst_multiplier: u32,
    /// Distinct audience topics (each a reusable
    /// [`TargetWeights`] with a stable topic id).
    pub topics: usize,
    /// Zipf skew exponent over topics (higher = more skew; the head
    /// topic absorbs most weighted queries).
    pub zipf_s: f64,
    /// Fraction of queries that are topic-weighted (the rest are plain).
    pub topic_share: f64,
    /// Fraction of *plain* queries that arrive as budgeted (cost-aware)
    /// queries instead of top-k. `0.0` disables the mix **and** its RNG
    /// draws, so legacy scenarios replay their exact historical streams.
    pub budget_share: f64,
    /// Seed budgets drawn uniformly per query (the "mixed k" axis).
    pub mixed_k: Vec<usize>,
    /// Admission-queue capacity (waiting queries).
    pub queue_capacity: usize,
    /// Maximum queries drained into one planned batch per step.
    pub drain_per_step: usize,
    /// Deadline patience range, in virtual cost units past admission.
    pub patience: std::ops::Range<u64>,
    /// Fraction of queries that carry a deadline at all.
    pub deadline_share: f64,
    /// Grow the pool every `grow_every` steps (0 disables growth).
    pub grow_every: u32,
    /// Sets added per growth ([`SeedQueryEngine::extend`]).
    pub grow_sets: u64,
    /// Initial pool size (sets).
    pub pool_sets: u64,
    /// Engine worker threads (answers and counters are invariant to it).
    pub threads: usize,
    /// Cross-check every planned batch against
    /// [`SeedQueryEngine::answer_batch`] (slow; for tests).
    pub verify: bool,
}

impl TrafficConfig {
    /// The fixed CI scenario: small enough for seconds-scale runs,
    /// shaped to exercise every code path — Zipf-skewed topics, mixed
    /// budgets, 4× bursts that overflow the queue, deadlines tight
    /// enough to reject, and two pool growths mid-serving. Its counters
    /// are baselined in `results/bench_baselines/sample_counts.json`.
    pub fn ci() -> Self {
        TrafficConfig {
            seed: 17,
            steps: 30,
            base_arrivals: 6,
            burst_every: 5,
            burst_multiplier: 6,
            topics: 6,
            zipf_s: 1.1,
            topic_share: 0.4,
            budget_share: 0.0,
            mixed_k: vec![3, 8, 15],
            queue_capacity: 24,
            drain_per_step: 10,
            patience: 30..600,
            deadline_share: 0.5,
            grow_every: 10,
            grow_sets: 800,
            pool_sets: 1600,
            threads: 1,
            verify: false,
        }
    }

    /// The budgeted CI scenario: [`TrafficConfig::ci`] with a third of
    /// the plain traffic arriving as budgeted queries — half of them
    /// uniform-cost (the degeneration case, bit-identical to top-k),
    /// half with a shared per-node cost table (identity-compared, like
    /// topic weight Arcs) and a fractional budget. Its counters are
    /// baselined alongside the plain scenario's under the
    /// `traffic_budgeted_*` names.
    pub fn ci_budgeted() -> Self {
        TrafficConfig { budget_share: 0.35, ..TrafficConfig::ci() }
    }

    /// The sample-while-serving CI scenario for
    /// [`simulate_concurrent`]: the [`TrafficConfig::ci`] shape, but
    /// growth runs on a real second thread through
    /// [`SeedQueryEngine::grower`](sns_core::SeedQueryEngine::grower)
    /// while the serving loop keeps draining batches. More frequent,
    /// smaller growths maximize the serve/grow overlap window. Counters
    /// are baselined under the `traffic_concurrent_*` names and must be
    /// byte-identical across runs and engine thread counts.
    pub fn ci_concurrent() -> Self {
        TrafficConfig { threads: 2, grow_every: 6, grow_sets: 600, ..TrafficConfig::ci() }
    }
}

/// What one simulation produced: the deterministic counter set CI gates
/// on, plus wall-clock latency/throughput figures that are report-only
/// (they depend on the host; the 1-CPU container caveat of `ROADMAP.md`
/// applies).
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Deterministic `(name, value)` counters — identical across runs,
    /// hosts and engine thread counts for a fixed [`TrafficConfig`].
    pub counters: Vec<(&'static str, u64)>,
    /// Median wall-clock service latency per served query, ns.
    pub p50_service_ns: u64,
    /// 99th-percentile wall-clock service latency per served query, ns.
    pub p99_service_ns: u64,
    /// Served queries per second of engine service time.
    pub queries_per_sec: f64,
    /// Total queries served.
    pub served: u64,
}

/// Zipf(s) sampler over `0..n` via inverse CDF on precomputed cumulative
/// mass — deterministic given the caller's seeded RNG.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Draws one arrival — query (always over an explicit range), priority
/// and deadline — advancing the traffic RNG in the exact draw order the
/// baselined counter sets were recorded under. Shared by the sequential
/// and the concurrent simulator so both replay the same stream for the
/// same seed and `pool_len` sequence.
#[allow(clippy::too_many_arguments)]
fn draw_arrival(
    cfg: &TrafficConfig,
    rng: &mut StdRng,
    topics: &[TargetWeights],
    zipf: &Zipf,
    costs: &Arc<[f64]>,
    pool_len: u32,
    now: u64,
    budgeted_arrivals: &mut u64,
) -> (SeedQuery, Priority, Option<u64>) {
    let k = cfg.mixed_k[rng.gen_range(0..cfg.mixed_k.len())];
    // Skewed range mix: the full pool is hottest, halves and the
    // head quarter make up the tail — grouping-friendly, like
    // real dashboards asking the same few slices.
    let range = match rng.gen_range(0..10u32) {
        0..=4 => 0..pool_len,
        5..=6 => 0..pool_len / 2,
        7..=8 => pool_len / 2..pool_len,
        _ => 0..pool_len / 4,
    };
    let query = if rng.gen_bool(cfg.topic_share) {
        topics[zipf.sample(rng)].seed_query(k).over_range(range)
    } else if cfg.budget_share > 0.0 && rng.gen_bool(cfg.budget_share) {
        *budgeted_arrivals += 1;
        if rng.gen_range(0..2u32) == 0 {
            // uniform costs, budget = k: the degeneration case,
            // bit-identical to the top-k query it replaces
            SeedQuery::budgeted(k as f64).over_range(range)
        } else {
            SeedQuery::budgeted(k as f64 * 0.75)
                .with_costs(NodeCosts::per_node(costs.clone()))
                .over_range(range)
        }
    } else {
        SeedQuery::top_k(k).over_range(range)
    };
    let priority = match rng.gen_range(0..10u32) {
        0 => Priority::High,
        9 => Priority::Low,
        _ => Priority::Normal,
    };
    let deadline =
        rng.gen_bool(cfg.deadline_share).then(|| now + rng.gen_range(cfg.patience.clone()));
    (query, priority, deadline)
}

/// Percentile of a sorted slice (nearest-rank); 0 for empty input.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Runs the scenario — see the module docs. Deterministic counters,
/// wall-clock figures on the side.
pub fn simulate(cfg: &TrafficConfig) -> TrafficReport {
    let g = gen::erdos_renyi(500, 3000, cfg.seed).build(WeightModel::WeightedCascade).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade)
        .with_seed(cfg.seed)
        .with_threads(cfg.threads);
    let mut engine = SeedQueryEngine::sample(&ctx, cfg.pool_sets).with_threads(cfg.threads);
    let topics: Vec<TargetWeights> = (0..cfg.topics)
        .map(|t| {
            TargetWeights::synthetic_topic(&g, 0.15, 1.0, cfg.seed ^ (t as u64 + 1))
                .expect("valid synthetic topic")
        })
        .collect();
    let zipf = Zipf::new(cfg.topics.max(1), cfg.zipf_s);
    // One shared per-node cost table for every cost-aware query — Arcs
    // are identity-compared, the same sharing discipline as topic
    // weights. Deterministic (no RNG): cheapest node costs 0.5, so the
    // admission model's budget-derived effective k stays bounded.
    let costs: Arc<[f64]> = (0..g.num_nodes()).map(|v| 0.5 + f64::from(v % 4) * 0.5).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut queue = AdmissionQueue::new(cfg.queue_capacity);

    let mut now = 0u64; // virtual clock, cost units
    let mut arrivals_total = 0u64;
    let mut budgeted_arrivals = 0u64;
    let mut growths = 0u64;
    let mut sojourns: Vec<u64> = Vec::new(); // virtual, deterministic
    let mut service_ns: Vec<u64> = Vec::new(); // wall, report-only
    let mut service_total_ns = 0u128;

    for step in 0..cfg.steps {
        // Grow-while-serving: the pool extends mid-simulation; queries
        // admitted before a growth keep their (still valid) ranges,
        // queries after it see — and group over — the larger pool.
        if cfg.grow_every > 0 && step > 0 && step % cfg.grow_every == 0 {
            engine.extend(&ctx, cfg.grow_sets);
            growths += 1;
        }
        let pool_len = engine.pool().id_range().end;

        let burst = cfg.burst_every > 0 && step % cfg.burst_every == cfg.burst_every - 1;
        let arrivals = cfg.base_arrivals * if burst { cfg.burst_multiplier } else { 1 };
        for _ in 0..arrivals {
            arrivals_total += 1;
            let (query, priority, deadline) = draw_arrival(
                cfg,
                &mut rng,
                &topics,
                &zipf,
                &costs,
                pool_len,
                now,
                &mut budgeted_arrivals,
            );
            // Rejections are the queue's job; the typed reasons land in
            // its stats and are surfaced through the counters below.
            let _ = queue.admit(query, priority, deadline, now, pool_len);
        }

        let drained = queue.drain(now, cfg.drain_per_step);
        if drained.is_empty() {
            continue;
        }
        // Virtual completion: queries in a drained batch finish one
        // after another on the cost clock (the clock the deadlines were
        // admitted against), so sojourn percentiles are deterministic.
        let mut cursor = now;
        for p in &drained {
            cursor += p.cost;
            sojourns.push(cursor - p.arrived);
        }
        let batch: Vec<SeedQuery> = drained.iter().map(|p| p.query.clone()).collect();
        let start = Instant::now();
        let answers = engine.answer_planned(&batch).expect("admitted queries are valid");
        let elapsed = start.elapsed().as_nanos();
        service_total_ns += elapsed;
        let per_query = (elapsed / batch.len() as u128) as u64;
        service_ns.extend(std::iter::repeat_n(per_query, batch.len()));
        if cfg.verify {
            let unplanned = engine.answer_batch(&batch).expect("admitted queries are valid");
            assert_eq!(answers, unplanned, "planned and unplanned answers diverged");
        }
        now = cursor;
    }

    let qstats = queue.stats();
    let estats = engine.stats();
    sojourns.sort_unstable();
    service_ns.sort_unstable();
    let served = qstats.drained;
    let mut counters = vec![
        ("traffic_sim_arrivals", arrivals_total),
        ("traffic_sim_served", served),
        ("traffic_sim_rejected_queue_full", qstats.rejected_queue_full),
        ("traffic_sim_rejected_deadline", qstats.rejected_deadline),
        ("traffic_sim_expired", qstats.expired),
        ("traffic_sim_left_queued", queue.len() as u64),
        ("traffic_sim_planner_groups", estats.planner_groups),
        ("traffic_sim_builds_saved", estats.planner_builds_saved),
        ("traffic_sim_growths", growths),
        ("traffic_sim_sojourn_p50", percentile(&sojourns, 50.0)),
        ("traffic_sim_sojourn_p99", percentile(&sojourns, 99.0)),
    ];
    if cfg.budget_share > 0.0 {
        // Only budgeted scenarios report the mix size, so the legacy
        // scenarios' counter sets stay byte-identical to their baselines.
        counters.push(("traffic_sim_budgeted_arrivals", budgeted_arrivals));
    }
    let secs = service_total_ns as f64 / 1e9;
    TrafficReport {
        counters,
        p50_service_ns: percentile(&service_ns, 50.0),
        p99_service_ns: percentile(&service_ns, 99.0),
        queries_per_sec: if secs > 0.0 { served as f64 / secs } else { 0.0 },
        served,
    }
}

/// Runs the scenario with growth on a **real second thread**: a grower
/// thread owns [`SeedQueryEngine::grower`](sns_core::SeedQueryEngine::grower)
/// and extends the shared engine while this (serving) thread keeps
/// admitting and answering — the grow-while-serving contract exercised
/// end to end, wall-clock concurrently, with no reader-side lock on the
/// serving path.
///
/// Counters stay **byte-reproducible** despite the racing growth
/// because the serving side is pinned to explicit synchronization
/// points: the simulator's *known* pool length advances only when a
/// growth acknowledgment is received (at the next growth step, or at
/// drain-out after the last), every generated query carries an explicit
/// range within the known length, and the planner groups by those
/// explicit ranges alone. Whichever directory generation a drained
/// batch happens to pin, prefix determinism makes its answers — and the
/// group/sojourn counters — identical to some sealed prefix, so the
/// wall-clock race never leaks into `counters`.
///
/// With `cfg.verify` every served `(query, answer)` pair is re-checked
/// after drain-out against a reference engine sampled at the final size
/// in one shot — the bit-identity acceptance of the concurrent path.
pub fn simulate_concurrent(cfg: &TrafficConfig) -> TrafficReport {
    use std::sync::mpsc;

    let g = gen::erdos_renyi(500, 3000, cfg.seed).build(WeightModel::WeightedCascade).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade)
        .with_seed(cfg.seed)
        .with_threads(cfg.threads);
    let engine = SeedQueryEngine::sample(&ctx, cfg.pool_sets).with_threads(cfg.threads);
    let topics: Vec<TargetWeights> = (0..cfg.topics)
        .map(|t| {
            TargetWeights::synthetic_topic(&g, 0.15, 1.0, cfg.seed ^ (t as u64 + 1))
                .expect("valid synthetic topic")
        })
        .collect();
    let zipf = Zipf::new(cfg.topics.max(1), cfg.zipf_s);
    let costs: Arc<[f64]> = (0..g.num_nodes()).map(|v| 0.5 + f64::from(v % 4) * 0.5).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut queue = AdmissionQueue::new(cfg.queue_capacity);

    let mut now = 0u64;
    let mut arrivals_total = 0u64;
    let mut budgeted_arrivals = 0u64;
    let mut growth_acks = 0u64;
    let mut sojourns: Vec<u64> = Vec::new();
    let mut service_ns: Vec<u64> = Vec::new();
    let mut service_total_ns = 0u128;
    // The serving side's view of the pool: advances ONLY at ack sync
    // points, never by peeking at the (racing) live directory.
    let mut known_len = engine.pool().id_range().end;
    let mut verified: Vec<(SeedQuery, sns_core::SeedAnswer)> = Vec::new();

    let (cmd_tx, cmd_rx) = mpsc::channel::<u64>();
    let (ack_tx, ack_rx) = mpsc::channel::<(u64, u64)>();
    std::thread::scope(|s| {
        let engine_ref = &engine;
        let ctx_ref = &ctx;
        s.spawn(move || {
            // The grower thread: single writer, processes growth
            // commands in order, acknowledges each published generation.
            for additional in cmd_rx {
                let outcome = engine_ref.grower().extend(ctx_ref, additional);
                if ack_tx.send((outcome.generation(), outcome.pool_len())).is_err() {
                    break;
                }
            }
        });

        let mut pending = 0u32;
        for step in 0..cfg.steps {
            if cfg.grow_every > 0 && step > 0 && step % cfg.grow_every == 0 {
                // Sync point: absorb the previous growth (blocking —
                // in practice it finished steps ago) before commanding
                // the next, then let the grower run while the steps
                // until the next sync keep serving concurrently.
                if pending > 0 {
                    let (_generation, len) = ack_rx.recv().expect("grower thread alive");
                    known_len = u32::try_from(len).expect("pool fits the u32 id domain");
                    pending -= 1;
                    growth_acks += 1;
                }
                cmd_tx.send(cfg.grow_sets).expect("grower thread alive");
                pending += 1;
            }

            let burst = cfg.burst_every > 0 && step % cfg.burst_every == cfg.burst_every - 1;
            let arrivals = cfg.base_arrivals * if burst { cfg.burst_multiplier } else { 1 };
            for _ in 0..arrivals {
                arrivals_total += 1;
                let (query, priority, deadline) = draw_arrival(
                    cfg,
                    &mut rng,
                    &topics,
                    &zipf,
                    &costs,
                    known_len,
                    now,
                    &mut budgeted_arrivals,
                );
                let _ = queue.admit(query, priority, deadline, now, known_len);
            }

            let drained = queue.drain(now, cfg.drain_per_step);
            if drained.is_empty() {
                continue;
            }
            let mut cursor = now;
            for p in &drained {
                cursor += p.cost;
                sojourns.push(cursor - p.arrived);
            }
            let batch: Vec<SeedQuery> = drained.iter().map(|p| p.query.clone()).collect();
            let start = Instant::now();
            let answers = engine.answer_planned(&batch).expect("admitted queries are valid");
            let elapsed = start.elapsed().as_nanos();
            service_total_ns += elapsed;
            let per_query = (elapsed / batch.len() as u128) as u64;
            service_ns.extend(std::iter::repeat_n(per_query, batch.len()));
            if cfg.verify {
                verified.extend(batch.into_iter().zip(answers));
            }
            now = cursor;
        }

        // Drain-out: hang up the command channel (ends the grower loop)
        // and absorb every outstanding ack so the final length and
        // generation below are the fully-grown ones.
        drop(cmd_tx);
        while pending > 0 {
            let (_generation, len) = ack_rx.recv().expect("grower thread alive");
            known_len = u32::try_from(len).expect("pool fits the u32 id domain");
            pending -= 1;
            growth_acks += 1;
        }
    });

    if cfg.verify {
        // Bit-identity acceptance: every answer served mid-growth equals
        // the answer of an engine that sampled the final pool up front
        // (same deterministic stream, one shot).
        let reference =
            SeedQueryEngine::sample(&ctx, engine.pool().len() as u64).with_threads(cfg.threads);
        for (query, answer) in &verified {
            assert_eq!(
                &reference.answer(query).expect("served queries are valid"),
                answer,
                "concurrently served answer diverged from the one-shot reference for {query:?}"
            );
        }
    }

    let qstats = queue.stats();
    let estats = engine.stats();
    sojourns.sort_unstable();
    service_ns.sort_unstable();
    let served = qstats.drained;
    let counters = vec![
        ("traffic_concurrent_arrivals", arrivals_total),
        ("traffic_concurrent_served", served),
        ("traffic_concurrent_rejected_queue_full", qstats.rejected_queue_full),
        ("traffic_concurrent_rejected_deadline", qstats.rejected_deadline),
        ("traffic_concurrent_expired", qstats.expired),
        ("traffic_concurrent_left_queued", queue.len() as u64),
        ("traffic_concurrent_planner_groups", estats.planner_groups),
        ("traffic_concurrent_builds_saved", estats.planner_builds_saved),
        ("traffic_concurrent_growth_acks", growth_acks),
        ("traffic_concurrent_final_generation", engine.generation()),
        ("traffic_concurrent_final_pool_len", u64::from(known_len)),
        ("traffic_concurrent_sojourn_p50", percentile(&sojourns, 50.0)),
        ("traffic_concurrent_sojourn_p99", percentile(&sojourns, 99.0)),
    ];
    let secs = service_total_ns as f64 / 1e9;
    TrafficReport {
        counters,
        p50_service_ns: percentile(&service_ns, 50.0),
        p99_service_ns: percentile(&service_ns, 99.0),
        queries_per_sec: if secs > 0.0 { served as f64 / secs } else { 0.0 },
        served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(6, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 6];
        for _ in 0..3000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5] * 2, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[5], 50.0), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }
}
