//! Deterministic sample-count counters — the mechanical guard for the
//! Λ-regression bug class.
//!
//! PR 3 fixed D-SSA's stopping rule dropping the Λ factor from its
//! ε₂/ε₃ denominators (~4× over-sampling on D2-bound instances). Timing
//! benches would never have caught it — the code was *fast*, it just
//! sampled too much — but the realized RR-set totals are fully
//! deterministic (seeded RNG streams, thread-invariant pools), so they
//! can be diffed exactly against checked-in baselines. [`counters`]
//! computes the totals on the `tests/paper_claims.rs` regression
//! fixtures; the `bench_diff` binary compares them (warn-only) in CI,
//! and the `query_engine` bench embeds them in `BENCH_query_engine.json`.

use sns_core::{Dssa, Params, SamplingContext, Ssa};
use sns_diffusion::Model;
use sns_graph::{gen, WeightModel};

/// The tracked `(name, value)` counters, recomputed from scratch
/// (seconds of work; all streams seeded). Names are stable — `bench_diff`
/// treats a missing baseline entry as "new counter, record it".
pub fn counters() -> Vec<(&'static str, u64)> {
    // Fixture A: the D2-bound instance of the Λ regression test —
    // ER(400, 2400), IC, k = 80, ε = 0.1, δ = 0.1. Pre-fix: 19184.
    let er = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
    let params_a = Params::new(80, 0.1, 0.1).unwrap();
    let ctx_a = SamplingContext::new(&er, Model::IndependentCascade).with_seed(9);
    let dssa_er = Dssa::new(params_a).run(&ctx_a).unwrap();
    let ssa_er = Ssa::new(params_a).run(&ctx_a).unwrap();

    // Fixture B: the D1-bound instance — RMAT(2000, 12000), LT, k = 10,
    // ε = 0.3, δ = 0.1. The fix must leave it untouched (1200).
    let rmat = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let params_b = Params::new(10, 0.3, 0.1).unwrap();
    let ctx_b = SamplingContext::new(&rmat, Model::LinearThreshold).with_seed(5);
    let dssa_rmat = Dssa::new(params_b).run(&ctx_b).unwrap();
    let ssa_rmat = Ssa::new(params_b).run(&ctx_b).unwrap();

    vec![
        ("dssa_er_ic_k80_rr_sets_total", dssa_er.rr_sets_total()),
        ("ssa_er_ic_k80_rr_sets_total", ssa_er.rr_sets_total()),
        ("dssa_rmat_lt_k10_rr_sets_total", dssa_rmat.rr_sets_total()),
        ("ssa_rmat_lt_k10_rr_sets_total", ssa_rmat.rr_sets_total()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_deterministic() {
        let a = counters();
        let b = counters();
        assert_eq!(a, b);
        assert!(a.iter().all(|&(_, v)| v > 0));
    }
}
