//! Deterministic counters — the mechanical guard for the Λ-regression
//! bug class and, since PR 4, for the serving cache policy.
//!
//! PR 3 fixed D-SSA's stopping rule dropping the Λ factor from its
//! ε₂/ε₃ denominators (~4× over-sampling on D2-bound instances). Timing
//! benches would never have caught it — the code was *fast*, it just
//! sampled too much — but the realized RR-set totals are fully
//! deterministic (seeded RNG streams, thread-invariant pools), so they
//! can be diffed exactly against checked-in baselines. [`counters`]
//! computes the totals on the `tests/paper_claims.rs` regression
//! fixtures — under both stopping rules since PR 5, so a drift in either
//! the historical `Conservative` anchor or the erratum-anchored
//! `DssaFix` one is caught — plus the cache hit/miss/evict counters of a fixed
//! grow-while-serving query script ([`serving_counters`] — the same bug
//! class in serving clothes: a cache that silently stops hitting stays
//! exactly as *correct* and exactly as slow as no cache). The
//! `bench_diff` binary compares them (warn-only) in CI, and the
//! `query_engine` bench embeds them in `BENCH_query_engine.json`.

use sns_core::{
    Dssa, Params, QueryStats, Recovery, SamplingContext, SeedQuery, SeedQueryEngine, Ssa,
    StoppingRule,
};
use sns_diffusion::Model;
use sns_graph::{gen, WeightModel};
use sns_tvm::TargetWeights;

/// Cache counters of a fixed grow-while-serving script: sample 2000
/// sets, then three rounds of (repeated full-pool queries + a ranged
/// query + two same-topic weighted queries + a 1000-set extension).
/// Deterministic: seeded streams, sequential answering, no
/// criterion-iteration influence.
pub fn serving_counters() -> Vec<(&'static str, u64)> {
    let g = gen::erdos_renyi(500, 3000, 11).build(WeightModel::WeightedCascade).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(11);
    let mut engine = SeedQueryEngine::sample(&ctx, 2000);
    let topic = TargetWeights::synthetic_topic(&g, 0.1, 1.0, 7).expect("valid topic");
    for _ in 0..3 {
        engine.answer(&SeedQuery::top_k(20)).expect("valid query");
        engine.answer(&SeedQuery::top_k(20)).expect("valid query");
        engine.answer(&SeedQuery::top_k(10).over_range(0..1000)).expect("valid query");
        engine.answer(&topic.seed_query(10)).expect("valid query");
        engine.answer(&topic.seed_query(10)).expect("valid query");
        engine.extend(&ctx, 1000);
    }
    let QueryStats {
        snapshot_hits,
        snapshot_misses,
        weighted_hits,
        weighted_misses,
        evictions,
        epochs_frozen,
        merges,
        ..
    } = engine.stats();
    vec![
        ("query_engine_grow_snapshot_hits", snapshot_hits),
        ("query_engine_grow_snapshot_misses", snapshot_misses),
        ("query_engine_grow_weighted_hits", weighted_hits),
        ("query_engine_grow_weighted_misses", weighted_misses),
        ("query_engine_grow_evictions", evictions),
        ("query_engine_grow_epochs_frozen", epochs_frozen),
        ("query_engine_grow_merges", merges),
    ]
}

/// Store-robustness counters of a fixed crash-recovery script: bake a
/// 4-epoch pool (4 × 250 sets, ER(300, 1800), IC, seed 13), flip one
/// payload bit in the newest segment on disk, and count what the
/// recovering loader keeps and loses. Fully deterministic — no timing
/// is involved, only the recovery *outcome*; a regression that makes
/// recovery keep fewer (or claim more) epochs than the damage warrants
/// shows up as an exact counter drift.
pub fn store_counters() -> Vec<(&'static str, u64)> {
    let g = gen::erdos_renyi(300, 1800, 13).build(WeightModel::WeightedCascade).unwrap();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(13);
    let mut engine = SeedQueryEngine::sample(&ctx, 250);
    for _ in 0..3 {
        engine.extend(&ctx, 250);
    }
    let dir = std::env::temp_dir().join(format!("sns-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    engine.save(&dir).expect("store save succeeds");

    let segment = dir.join("epoch-00003.rr");
    let mut bytes = std::fs::read(&segment).expect("newest segment exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&segment, &bytes).expect("rewrite damaged segment");

    let (recovered, recovery) =
        SeedQueryEngine::from_store_recovering(&dir, &ctx).expect("valid prefix recovers");
    let lost = match recovery {
        Recovery::Recovered { epochs_lost, .. } => u64::from(epochs_lost),
        Recovery::Intact => 0,
    };
    let _ = std::fs::remove_dir_all(&dir);
    vec![
        ("store_recovered_epochs", recovered.pool().epoch_boundaries().len() as u64),
        ("store_lost_epochs", lost),
    ]
}

/// Serving-front-end counters of the fixed CI traffic scenario
/// ([`crate::traffic::TrafficConfig::ci`]): arrivals, serves, typed
/// rejects, expiries, planner groups, snapshot resolutions saved and
/// virtual-clock sojourn percentiles. Deterministic by construction —
/// admission and planning run on the virtual cost clock before any
/// parallel execution — so `bench_diff` can track them exactly while
/// wall-clock latency stays report-only.
pub fn traffic_counters() -> Vec<(&'static str, u64)> {
    crate::traffic::simulate(&crate::traffic::TrafficConfig::ci()).counters
}

/// Counters of the budgeted CI traffic scenario
/// ([`crate::traffic::TrafficConfig::ci_budgeted`]) — the plain scenario
/// with a budgeted (cost-aware) query mix — renamed `traffic_budgeted_*`
/// so both scenarios' counters coexist in one baseline file.
pub fn traffic_budgeted_counters() -> Vec<(&'static str, u64)> {
    crate::traffic::simulate(&crate::traffic::TrafficConfig::ci_budgeted())
        .counters
        .iter()
        .map(|&(name, v)| (budgeted_counter_name(name), v))
        .collect()
}

/// Stable rename of the simulator's counter names for the budgeted
/// scenario. Names must be `&'static str`, so the mapping is a literal
/// match rather than a formatted prefix.
fn budgeted_counter_name(name: &'static str) -> &'static str {
    match name {
        "traffic_sim_arrivals" => "traffic_budgeted_arrivals",
        "traffic_sim_served" => "traffic_budgeted_served",
        "traffic_sim_rejected_queue_full" => "traffic_budgeted_rejected_queue_full",
        "traffic_sim_rejected_deadline" => "traffic_budgeted_rejected_deadline",
        "traffic_sim_expired" => "traffic_budgeted_expired",
        "traffic_sim_left_queued" => "traffic_budgeted_left_queued",
        "traffic_sim_planner_groups" => "traffic_budgeted_planner_groups",
        "traffic_sim_builds_saved" => "traffic_budgeted_builds_saved",
        "traffic_sim_growths" => "traffic_budgeted_growths",
        "traffic_sim_sojourn_p50" => "traffic_budgeted_sojourn_p50",
        "traffic_sim_sojourn_p99" => "traffic_budgeted_sojourn_p99",
        "traffic_sim_budgeted_arrivals" => "traffic_budgeted_mix_size",
        other => other,
    }
}

/// Counters of the concurrent sample-while-serving scenario
/// ([`crate::traffic::TrafficConfig::ci_concurrent`], run through
/// [`crate::traffic::simulate_concurrent`]): the pool grows on a real
/// second thread while the serving loop keeps draining. Byte-reproducible
/// despite the wall-clock race because the serving side advances its
/// known pool length only at growth-acknowledgment sync points and every
/// query carries an explicit range — see `simulate_concurrent`'s docs.
/// The names are `traffic_concurrent_*` natively; no rename map needed.
pub fn traffic_concurrent_counters() -> Vec<(&'static str, u64)> {
    crate::traffic::simulate_concurrent(&crate::traffic::TrafficConfig::ci_concurrent()).counters
}

/// Realized budgeted-greedy / exact-IP coverage ratios, in permille, on
/// the oracle fixtures ([`crate::oracle`]) — deterministic *quality*
/// counters: both sides are pure functions of the fixtures, so a greedy
/// regression that stays above the `1 − 1/√e` floor (≈ 393‰, asserted
/// by `tests/budgeted_oracle.rs`) still shows up as an exact drift here.
pub fn oracle_gap_counters() -> Vec<(&'static str, u64)> {
    crate::oracle::realized_gaps_permille()
        .iter()
        .map(|&(name, permille)| (oracle_counter_name(name), permille))
        .collect()
}

/// Stable counter names for the oracle fixtures (names must be
/// `&'static str`, so the mapping is a literal match).
fn oracle_counter_name(name: &'static str) -> &'static str {
    match name {
        "uniform-costs" => "budgeted_oracle_uniform_costs_permille",
        "cheap-hubs" => "budgeted_oracle_cheap_hubs_permille",
        "expensive-hub" => "budgeted_oracle_expensive_hub_permille",
        "tight-fractional" => "budgeted_oracle_tight_fractional_permille",
        "overlap-decoy" => "budgeted_oracle_overlap_decoy_permille",
        other => other,
    }
}

/// The tracked `(name, value)` counters, recomputed from scratch
/// (seconds of work; all streams seeded). Names are stable — `bench_diff`
/// treats a missing baseline entry as "new counter, record it".
pub fn counters() -> Vec<(&'static str, u64)> {
    // Fixture A: the D2-bound instance of the Λ regression test —
    // ER(400, 2400), IC, k = 80, ε = 0.1, δ = 0.1. Pre-fix: 19184.
    let er = gen::erdos_renyi(400, 2400, 3).build(WeightModel::WeightedCascade).unwrap();
    let params_a = Params::new(80, 0.1, 0.1).unwrap();
    let ctx_a = SamplingContext::new(&er, Model::IndependentCascade).with_seed(9);
    let dssa_er = Dssa::new(params_a).run(&ctx_a).unwrap();
    let ssa_er = Ssa::new(params_a).run(&ctx_a).unwrap();
    // The same fixture under the erratum-anchored rule (PR 5): the
    // re-anchoring is tracked exactly like the PR-3 fix was. On this
    // D2-bound instance DssaFix recovers the pre-PR-3 total (19184).
    let dssa_er_fix =
        Dssa::new(params_a.with_stopping_rule(StoppingRule::DssaFix)).run(&ctx_a).unwrap();

    // Fixture B: the D1-bound instance — RMAT(2000, 12000), LT, k = 10,
    // ε = 0.3, δ = 0.1. The fix must leave it untouched (1200) — and so
    // must the DssaFix rule (coverage, not precision, is binding).
    let rmat = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let params_b = Params::new(10, 0.3, 0.1).unwrap();
    let ctx_b = SamplingContext::new(&rmat, Model::LinearThreshold).with_seed(5);
    let dssa_rmat = Dssa::new(params_b).run(&ctx_b).unwrap();
    let ssa_rmat = Ssa::new(params_b).run(&ctx_b).unwrap();
    let dssa_rmat_fix =
        Dssa::new(params_b.with_stopping_rule(StoppingRule::DssaFix)).run(&ctx_b).unwrap();

    let mut out = vec![
        ("dssa_er_ic_k80_rr_sets_total", dssa_er.rr_sets_total()),
        ("dssa_er_ic_k80_rr_sets_total_dssafix", dssa_er_fix.rr_sets_total()),
        ("ssa_er_ic_k80_rr_sets_total", ssa_er.rr_sets_total()),
        ("dssa_rmat_lt_k10_rr_sets_total", dssa_rmat.rr_sets_total()),
        ("dssa_rmat_lt_k10_rr_sets_total_dssafix", dssa_rmat_fix.rr_sets_total()),
        ("ssa_rmat_lt_k10_rr_sets_total", ssa_rmat.rr_sets_total()),
    ];
    out.extend(serving_counters());
    out.extend(store_counters());
    out.extend(traffic_counters());
    out.extend(traffic_budgeted_counters());
    out.extend(traffic_concurrent_counters());
    out.extend(oracle_gap_counters());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_deterministic() {
        let a = counters();
        let b = counters();
        assert_eq!(a, b);
        // sample totals are necessarily positive; cache counters may
        // legitimately be zero (the script provokes no evictions)
        assert!(a.iter().filter(|(name, _)| name.ends_with("rr_sets_total")).all(|&(_, v)| v > 0));
        assert!(a.iter().any(|(name, v)| name.starts_with("query_engine_grow") && *v > 0));
        assert!(a.iter().any(|(name, v)| name.starts_with("traffic_sim") && *v > 0));
        assert!(a.iter().any(|(name, v)| name.starts_with("traffic_concurrent") && *v > 0));
        // one bit flipped in the last of 4 epochs: 3 kept, 1 lost
        assert!(a.contains(&("store_recovered_epochs", 3)));
        assert!(a.contains(&("store_lost_epochs", 1)));
        // timing-derived floor counters (`*_speedup`) are bench-side
        // only — they must never enter the deterministic set
        assert!(a.iter().all(|(name, _)| !name.ends_with("_speedup")));
    }
}
