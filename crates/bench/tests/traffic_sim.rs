//! Determinism gates for the serving traffic simulator — the tests the
//! CI `serving` job runs twice in release mode and diffs. Everything
//! asserted here must hold on any host at any thread count: the gated
//! counters are pure functions of the [`TrafficConfig`], never of the
//! wall clock or the scheduler.

use sns_bench::traffic::{simulate, TrafficConfig};

#[test]
fn ci_scenario_counters_are_reproducible_across_runs() {
    let cfg = TrafficConfig::ci();
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert_eq!(a.counters, b.counters, "same config must replay byte-identically");

    let get = |name: &str| {
        a.counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    // The CI scenario must actually exercise the front end: queries are
    // served, bursts overflow the queue, deadlines reject, the planner
    // shares snapshot resolutions and the pool grows mid-serving.
    assert!(get("traffic_sim_served") > 0);
    assert!(get("traffic_sim_rejected_queue_full") > 0, "{:?}", a.counters);
    assert!(get("traffic_sim_rejected_deadline") > 0, "{:?}", a.counters);
    assert!(get("traffic_sim_builds_saved") > 0, "{:?}", a.counters);
    assert!(get("traffic_sim_planner_groups") > 0);
    assert_eq!(get("traffic_sim_growths"), 2);
    // Conservation: every arrival is served, rejected, expired or still
    // queued at the end — nothing is lost or double-counted.
    assert_eq!(
        get("traffic_sim_arrivals"),
        get("traffic_sim_served")
            + get("traffic_sim_rejected_queue_full")
            + get("traffic_sim_rejected_deadline")
            + get("traffic_sim_expired")
            + get("traffic_sim_left_queued"),
        "{:?}",
        a.counters
    );
}

#[test]
fn counters_are_invariant_to_engine_thread_count() {
    let single = simulate(&TrafficConfig::ci());
    let four = simulate(&TrafficConfig { threads: 4, ..TrafficConfig::ci() });
    assert_eq!(single.counters, four.counters, "gated counters must not depend on threads");
}

#[test]
fn budgeted_scenario_counters_are_reproducible_and_thread_invariant() {
    let cfg = TrafficConfig::ci_budgeted();
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert_eq!(a.counters, b.counters, "budgeted scenario must replay byte-identically");
    let four = simulate(&TrafficConfig { threads: 4, ..TrafficConfig::ci_budgeted() });
    assert_eq!(a.counters, four.counters, "budgeted counters must not depend on threads");

    let get = |name: &str| {
        a.counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    // The budgeted mix must actually flow: cost-aware queries arrive,
    // get admitted against the budget-derived cost model and get served.
    assert!(get("traffic_sim_budgeted_arrivals") > 0, "{:?}", a.counters);
    assert!(get("traffic_sim_served") > 0);
    assert_eq!(get("traffic_sim_growths"), 2);
    // Conservation holds in the budgeted mix too.
    assert_eq!(
        get("traffic_sim_arrivals"),
        get("traffic_sim_served")
            + get("traffic_sim_rejected_queue_full")
            + get("traffic_sim_rejected_deadline")
            + get("traffic_sim_expired")
            + get("traffic_sim_left_queued"),
        "{:?}",
        a.counters
    );
}

#[test]
fn budgeted_share_does_not_disturb_the_legacy_scenario() {
    // ci_budgeted() differs from ci() only in the budgeted mix; the
    // legacy scenario's counters — and therefore its checked-in
    // baselines — must be exactly what they were before the mix existed.
    let legacy = simulate(&TrafficConfig::ci());
    assert_eq!(legacy.counters.len(), 11, "{:?}", legacy.counters);
    assert!(legacy.counters.iter().all(|(n, _)| *n != "traffic_sim_budgeted_arrivals"));
}

#[test]
fn planned_budgeted_answers_match_unplanned_under_traffic() {
    let cfg = TrafficConfig { steps: 12, verify: true, ..TrafficConfig::ci_budgeted() };
    let report = simulate(&cfg);
    assert!(report.served > 0);
}

#[test]
fn planned_answers_match_unplanned_under_traffic() {
    // verify: true cross-checks every planned batch against
    // answer_batch inside simulate(); a divergence panics there.
    let cfg = TrafficConfig { steps: 12, verify: true, ..TrafficConfig::ci() };
    let report = simulate(&cfg);
    assert!(report.served > 0);
}

#[test]
fn concurrent_scenario_counters_are_reproducible_and_thread_invariant() {
    use sns_bench::traffic::simulate_concurrent;
    // The hard concurrency gate: growth races serving on a real second
    // thread, and the counters must still replay byte-identically —
    // across runs AND across engine thread counts (the CI `concurrency`
    // step runs this at 1, 2 and 8 worker threads via the override).
    let threads = std::env::var("SNS_TRAFFIC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2);
    let cfg = TrafficConfig { threads, ..TrafficConfig::ci_concurrent() };
    let a = simulate_concurrent(&cfg);
    let b = simulate_concurrent(&cfg);
    assert_eq!(a.counters, b.counters, "concurrent scenario must replay byte-identically");
    let other = simulate_concurrent(&TrafficConfig {
        threads: if threads == 1 { 4 } else { 1 },
        ..TrafficConfig::ci_concurrent()
    });
    assert_eq!(a.counters, other.counters, "gated counters must not depend on threads");

    let get = |name: &str| {
        a.counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    // The scenario must actually overlap growth with serving: four
    // growth commands are issued (steps 6, 12, 18, 24), all acknowledged
    // by drain-out, each publishing one directory generation.
    assert_eq!(get("traffic_concurrent_growth_acks"), 4, "{:?}", a.counters);
    assert_eq!(get("traffic_concurrent_final_generation"), 4, "{:?}", a.counters);
    assert_eq!(get("traffic_concurrent_final_pool_len"), 1600 + 4 * 600, "{:?}", a.counters);
    assert!(get("traffic_concurrent_served") > 0);
    assert!(get("traffic_concurrent_planner_groups") > 0);
    assert!(get("traffic_concurrent_builds_saved") > 0, "{:?}", a.counters);
    // Conservation holds under concurrent growth too.
    assert_eq!(
        get("traffic_concurrent_arrivals"),
        get("traffic_concurrent_served")
            + get("traffic_concurrent_rejected_queue_full")
            + get("traffic_concurrent_rejected_deadline")
            + get("traffic_concurrent_expired")
            + get("traffic_concurrent_left_queued"),
        "{:?}",
        a.counters
    );
}

#[test]
fn concurrently_served_answers_match_the_one_shot_reference() {
    use sns_bench::traffic::simulate_concurrent;
    // verify: true re-checks every (query, answer) pair served while
    // growth raced the serving loop against an engine that sampled the
    // final pool size up front — the linearizability acceptance for the
    // traffic path. A divergence panics inside simulate_concurrent.
    let cfg = TrafficConfig { steps: 14, verify: true, ..TrafficConfig::ci_concurrent() };
    let report = simulate_concurrent(&cfg);
    assert!(report.served > 0);
}
