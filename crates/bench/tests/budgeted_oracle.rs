//! The exact-IP quality oracle for budgeted selection — the headline
//! test of the budgeted serving PR. An independent branch-and-bound
//! solver (`sns_bench::oracle`) computes the *exact* optimum of maximum
//! coverage under a knapsack budget on ≤20-node fixtures, and the
//! production ratio greedy must achieve at least the `1 − 1/√e`
//! fraction its guarantee promises (derived in `docs/DERIVATIONS.md`
//! §"Budgeted selection") on every cost/budget regime.

use sns_bench::oracle::{exact_on, fixtures, greedy_on, realized_gaps_permille};

/// `1 − 1/√e`: the approximation floor of max(ratio-greedy, best single
/// affordable node) for coverage under a knapsack constraint.
const GUARANTEE: f64 = 1.0 - 0.606_530_659_712_633_4; // 1/√e

#[test]
fn budgeted_greedy_meets_the_guarantee_on_every_regime() {
    let all = fixtures();
    assert!(all.len() >= 4, "at least four cost/budget regimes");
    for f in &all {
        let greedy = greedy_on(f);
        let exact = exact_on(f);
        assert!(exact > 0, "{}: degenerate fixture", f.name);
        assert!(greedy.covered <= exact, "{}: greedy cannot beat the exact optimum", f.name);
        let ratio = greedy.covered as f64 / exact as f64;
        assert!(
            ratio >= GUARANTEE,
            "{}: greedy covered {} of exact {} — ratio {ratio:.4} below the 1 − 1/√e floor",
            f.name,
            greedy.covered,
            exact
        );
        assert!(greedy.spent <= f.budget, "{}: budget overrun ({})", f.name, greedy.spent);
        // Realized gap, recorded so a quality regression that stays
        // above the floor is still visible in the test log.
        println!(
            "oracle {}: greedy {} / exact {} = {:.1}% (floor {:.1}%), fallback: {}",
            f.name,
            greedy.covered,
            exact,
            ratio * 100.0,
            GUARANTEE * 100.0,
            greedy.single_fallback
        );
    }
}

#[test]
fn realized_gaps_are_deterministic_and_above_the_floor() {
    let gaps = realized_gaps_permille();
    assert_eq!(gaps, realized_gaps_permille(), "oracle gaps must replay identically");
    let floor_permille = (GUARANTEE * 1000.0) as u64;
    for (name, permille) in &gaps {
        assert!(*permille >= floor_permille, "{name}: {permille}‰ below floor");
        assert!(*permille <= 1000, "{name}: greedy above exact?");
    }
    // On these fixtures greedy is near-optimal on at least one friendly
    // regime — a sanity check that the fixtures aren't all adversarial —
    // and strictly suboptimal on at least one adversarial regime, so
    // oracle/greedy agreement elsewhere is evidence, not tautology.
    assert!(gaps.iter().any(|(_, p)| *p == 1000), "{gaps:?}");
    assert!(gaps.iter().any(|(_, p)| *p < 1000), "{gaps:?}");
}

#[test]
fn exact_oracle_degenerates_to_top_k_under_uniform_costs() {
    // On the uniform-costs regime the knapsack is a cardinality bound:
    // the production engine's budgeted answer, the plain top-k answer
    // and the exact IP must agree on the covered count's bound.
    let f = fixtures().into_iter().find(|f| f.name == "uniform-costs").unwrap();
    let greedy = greedy_on(&f);
    let exact = exact_on(&f);
    assert_eq!(greedy.seeds.len(), f.budget as usize, "uniform costs spend 1.0 per seed");
    assert!(greedy.covered <= exact);
    assert!(!greedy.single_fallback);
}
