//! RR-set generation throughput — the dominant cost of every RIS
//! algorithm (IC reverse BFS vs LT reverse walk, by graph family).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sns_diffusion::{Model, RrSampler};
use sns_graph::{gen, Graph, WeightModel};

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "rmat-10k",
            gen::rmat(10_000, 60_000, gen::RmatParams::GRAPH500, 7)
                .build(WeightModel::WeightedCascade)
                .unwrap(),
        ),
        (
            "er-10k",
            gen::erdos_renyi(10_000, 60_000, 7).build(WeightModel::WeightedCascade).unwrap(),
        ),
        (
            "ba-10k",
            gen::barabasi_albert(10_000, 6, gen::Orientation::RandomSingle, 7)
                .build(WeightModel::WeightedCascade)
                .unwrap(),
        ),
    ]
}

fn bench_rr_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rr_sampling_1k_sets");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for (name, g) in graphs() {
        for model in [Model::LinearThreshold, Model::IndependentCascade] {
            group.bench_with_input(BenchmarkId::new(model.short_name(), name), &g, |b, g| {
                let mut sampler = RrSampler::new(g, model);
                let mut rr = Vec::new();
                let mut index = 0u64;
                b.iter(|| {
                    let mut total = 0usize;
                    for _ in 0..1000 {
                        sampler.sample(index, &mut rr);
                        index += 1;
                        total += rr.len();
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rr_sampling);
criterion_main!(benches);
