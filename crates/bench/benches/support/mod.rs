//! Helpers shared by the hand-rolled bench mains (`rr_index`,
//! `greedy_coverage`): the common 100k-node Barabási–Albert workload and
//! the machine-readable JSON snapshot writer. Kept as a bench-side
//! module (each bench target compiles it in via `#[path]`) because the
//! `sns-bench` lib cannot depend on the dev-only criterion shim.
#![allow(dead_code)] // each bench uses its own subset of these helpers

use criterion::Criterion;
use sns_diffusion::{Model, RootDist, RrSampler};
use sns_graph::{gen, Graph, WeightModel};
use sns_rrset::RrCollection;

/// Nodes of the shared Barabási–Albert benchmark graph.
pub const NODES: u32 = 100_000;
/// RR sets sampled into the shared benchmark pool.
pub const SETS: u64 = 60_000;

/// The shared benchmark graph: 100k-node BA, m = 4, weighted cascade.
pub fn ba_graph() -> Graph {
    gen::barabasi_albert(NODES, 4, gen::Orientation::RandomSingle, 7)
        .build(WeightModel::WeightedCascade)
        .unwrap()
}

/// The shared deterministic IC sampler over `g`.
pub fn ic_sampler(g: &Graph) -> RrSampler<'_> {
    RrSampler::with_config(g, Model::IndependentCascade, RootDist::Uniform, 3)
}

/// The shared benchmark pool: [`SETS`] sets of [`ic_sampler`] over
/// [`ba_graph`] (bit-identical regardless of worker count).
pub fn ba_pool() -> RrCollection {
    let g = ba_graph();
    let sampler = ic_sampler(&g);
    let mut pool = RrCollection::new(NODES);
    pool.extend_parallel(&sampler, 0, SETS, 8);
    pool
}

/// Writes the recorded measurements as machine-readable JSON to
/// `file_name` in the workspace root (schema: `{"benchmarks": [{"name",
/// "mean_ns", "min_ns", "max_ns", "iters"}], "host_cores"}` — shared by
/// every `BENCH_*.json` snapshot).
pub fn write_bench_json(c: &Criterion, file_name: &str) {
    write_bench_json_with_counters(c, file_name, &[]);
}

/// First-class serving figures of one traffic-simulator run, written as
/// the `"serving"` object of a `BENCH_*.json` snapshot: wall-clock
/// p50/p99 service latency and throughput. Host-dependent by nature —
/// `bench_diff` never gates them (the deterministic half of the
/// simulator's output lives in `"counters"` as `traffic_sim_*`).
pub struct ServingSummary {
    /// Median wall-clock service latency per served query, ns.
    pub p50_service_ns: u64,
    /// 99th-percentile wall-clock service latency per served query, ns.
    pub p99_service_ns: u64,
    /// Served queries per second of engine service time.
    pub queries_per_sec: f64,
    /// Total queries served by the simulated front end.
    pub served: u64,
}

/// [`write_bench_json`] with an extra `"counters"` object of named
/// deterministic integers (e.g. algorithm sample counts) appended after
/// the timing entries. Unlike the nanosecond fields, counters are
/// machine-independent, so `bench_diff` (the warn-only CI check) can
/// compare them exactly against the checked-in baselines under
/// `results/bench_baselines/`.
pub fn write_bench_json_with_counters(c: &Criterion, file_name: &str, counters: &[(&str, u64)]) {
    write_bench_json_full(c, file_name, counters, None);
}

/// [`write_bench_json_with_counters`] plus an optional `"serving"`
/// object ([`ServingSummary`]). The serving object is written *after*
/// `"counters"` — `bench_diff` parses counters line-by-line up to the
/// first closing brace, so report-only latency fields must never appear
/// inside that section.
pub fn write_bench_json_full(
    c: &Criterion,
    file_name: &str,
    counters: &[(&str, u64)],
    serving: Option<&ServingSummary>,
) {
    let manifest = env!("CARGO_MANIFEST_DIR");
    let path = std::path::Path::new(manifest)
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join(file_name);
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in c.results.iter().enumerate() {
        let sep = if i + 1 == c.results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}, \"iters\": {}}}{}\n",
            r.name, r.mean_ns, r.min_ns, r.max_ns, r.iters, sep
        ));
    }
    out.push_str("  ],\n");
    if !counters.is_empty() {
        out.push_str("  \"counters\": {\n");
        for (i, (name, value)) in counters.iter().enumerate() {
            let sep = if i + 1 == counters.len() { "" } else { "," };
            out.push_str(&format!("    \"{name}\": {value}{sep}\n"));
        }
        out.push_str("  },\n");
    }
    if let Some(s) = serving {
        out.push_str("  \"serving\": {\n");
        out.push_str(&format!("    \"p50_service_ns\": {},\n", s.p50_service_ns));
        out.push_str(&format!("    \"p99_service_ns\": {},\n", s.p99_service_ns));
        out.push_str(&format!("    \"queries_per_sec\": {:.1},\n", s.queries_per_sec));
        out.push_str(&format!("    \"served\": {}\n", s.served));
        out.push_str("  },\n");
    }
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    out.push_str(&format!("  \"host_cores\": {cores}\n}}\n"));
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {file_name}: {e}"));
    println!("wrote {}", path.display());
}
