//! Inverted-index ablation: two-tier (sealed CSR + pending chains) vs the
//! pre-refactor per-node `Vec<Vec<u32>>` layout.
//!
//! Measures (a) index **build** throughput — the parallel counting-sort
//! seal at 1/2/4 worker threads against the per-node push loop the old
//! merge path used — and (b) `sets_containing_in` **lookup** latency over
//! a fully sealed pool, a mixed sealed+pending pool, and the old layout.
//! Both tiers of the new index are exercised.
//!
//! Besides the human-readable criterion output, results are written as
//! machine-readable JSON to `BENCH_rr_index.json` in the workspace root
//! (schema: `{"benchmarks": [{"name", "mean_ns", "min_ns", "max_ns",
//! "iters"}]}`).

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use sns_graph::NodeId;
use sns_rrset::RrCollection;

#[path = "support/mod.rs"]
mod support;

use support::{NODES, SETS};

/// Sets appended after the bulk load to populate the pending tier in the
/// "mixed" lookup scenario (kept under the compaction threshold).
const PENDING_SETS: u64 = 2_000;

/// The pre-refactor layout, rebuilt here as the ablation baseline.
fn build_per_node_vecs(pool: &RrCollection) -> Vec<Vec<u32>> {
    let mut node_to_sets: Vec<Vec<u32>> = vec![Vec::new(); pool.num_nodes() as usize];
    for id in 0..pool.len() {
        for &v in pool.set(id) {
            node_to_sets[v as usize].push(id as u32);
        }
    }
    node_to_sets
}

fn bench_index_build(c: &mut Criterion, pool: &RrCollection) {
    let mut group = c.benchmark_group("rr_index_build_60k_sets");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("two-tier-seal", threads), &threads, |b, &t| {
            let mut p = pool.clone();
            b.iter(|| {
                let _ = p.seal_parallel(t);
                p.sealed_sets()
            })
        });
    }
    group.bench_with_input(BenchmarkId::new("per-node-vecs", 1), pool, |b, pool| {
        b.iter(|| build_per_node_vecs(pool).len())
    });
    group.finish();
}

/// One deterministic pseudo-random lookup workload: `sets_containing_in`
/// over a sliding id window for a stride of nodes, summing list lengths.
fn lookup_workload(pool: &RrCollection) -> u64 {
    let total = pool.len() as u32;
    let mut acc = 0u64;
    let mut v: NodeId = 1;
    for i in 0..10_000u32 {
        let lo = (i.wrapping_mul(2654435761)) % total.saturating_sub(1).max(1);
        let hi = (lo + total / 4).min(total);
        acc += pool.sets_containing_in(v, lo..hi).len() as u64;
        v = (v.wrapping_mul(48271)) % NODES;
    }
    acc
}

fn lookup_workload_old(index: &[Vec<u32>], total: u32) -> u64 {
    let mut acc = 0u64;
    let mut v: NodeId = 1;
    for i in 0..10_000u32 {
        let lo = (i.wrapping_mul(2654435761)) % total.saturating_sub(1).max(1);
        let hi = (lo + total / 4).min(total);
        let list = &index[v as usize];
        let a = list.partition_point(|&id| id < lo);
        let b = list.partition_point(|&id| id < hi);
        acc += (b - a) as u64;
        v = (v.wrapping_mul(48271)) % NODES;
    }
    acc
}

fn bench_lookup(c: &mut Criterion, pool: &RrCollection) {
    // Fully sealed pool.
    let sealed = pool.clone();
    assert_eq!(sealed.pending_sets(), 0);

    // Mixed pool: same sets plus a pending chain tail.
    let g = support::ba_graph();
    let sampler = support::ic_sampler(&g);
    let mut mixed = pool.clone();
    {
        let mut s = sampler.clone();
        let mut rr = Vec::new();
        for i in 0..PENDING_SETS {
            let meta = s.sample(SETS + i, &mut rr);
            mixed.push(&rr, meta);
        }
    }
    assert!(mixed.pending_sets() > 0, "mixed scenario must exercise the pending tier");

    let old = build_per_node_vecs(&sealed);

    let mut group = c.benchmark_group("rr_index_lookup_10k_queries");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::from_parameter("two-tier-sealed"), &sealed, |b, p| {
        b.iter(|| lookup_workload(p))
    });
    group.bench_with_input(BenchmarkId::from_parameter("two-tier-mixed"), &mixed, |b, p| {
        b.iter(|| lookup_workload(p))
    });
    group.bench_with_input(BenchmarkId::from_parameter("per-node-vecs"), &old, |b, old| {
        b.iter(|| lookup_workload_old(old, SETS as u32))
    });
    group.finish();

    // Memory footprint comparison is deterministic — report it once.
    let old_bytes: u64 = old
        .iter()
        .map(|v| {
            (v.capacity() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>()) as u64
        })
        .sum();
    println!(
        "index memory: two-tier {} B vs per-node-vecs {} B ({:.2}x)",
        sealed.index_memory_bytes(),
        old_bytes,
        old_bytes as f64 / sealed.index_memory_bytes() as f64
    );
}

fn main() {
    // `cargo bench -p sns-bench -- --test` (the CI bench-smoke job):
    // pool build and one iteration of every routine still execute,
    // unmeasured; only the measurement loop and the JSON snapshot are
    // skipped.
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        println!("rr_index: --test run, one unmeasured iteration per bench");
    }
    let mut c = Criterion::default().test_mode(test_mode);
    let pool = support::ba_pool();
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "host cores: {cores} (multi-thread seal variants only help beyond 1 core; \
         each worker streams the whole arena, so expect ~linear overhead otherwise)"
    );
    println!(
        "pool: {} sets, {} entries, sealed {} / pending {}, index {} B",
        pool.len(),
        pool.total_nodes(),
        pool.sealed_sets(),
        pool.pending_sets(),
        pool.index_memory_bytes()
    );
    bench_index_build(&mut c, &pool);
    bench_lookup(&mut c, &pool);
    if !test_mode {
        support::write_bench_json(&c, "BENCH_rr_index.json");
    }
}
