//! Frozen-pool seed-query engine vs per-call histogram rebuilds.
//!
//! The regime the engine exists for: one sealed 60k-set pool answering
//! query after query. Measures, on the shared 100k-node Barabási–Albert
//! pool, (a) repeated `k = 50` selection through the engine (frozen
//! [`GainSnapshot`], memcpy'd gains) vs `max_coverage_with` (per-call
//! histogram + heap-seed rebuild) — full pool and a D-SSA-style half
//! range; (b) the one-off snapshot build cost the fast path amortizes;
//! (c) a heterogeneous 16-query batch at 1 and 4 worker threads; and
//! (d) a weighted (TVM root weights) query, which has no frozen-gain
//! shortcut and bounds what the snapshot saves.
//!
//! Results land in `BENCH_query_engine.json` (shared `BENCH_*.json`
//! schema) together with the deterministic sample-count `counters` the
//! warn-only `bench_diff` CI step tracks — see
//! `sns_bench::sample_counts`.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use sns_core::{SeedQuery, SeedQueryEngine};
use sns_rrset::{max_coverage_with, CoverageView, GainSnapshot, GreedyScratch};

#[path = "support/mod.rs"]
mod support;

const K: usize = 50;

fn bench_queries(c: &mut Criterion, engine: &SeedQueryEngine, threaded: &SeedQueryEngine) {
    let pool = engine.pool();
    let total = pool.len() as u32;
    let mut group = c.benchmark_group("query_engine_k50");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    for (label, range) in [("full", 0..total), ("half", 0..total / 2)] {
        // The engine's contract: bit-identical to the per-call path.
        let engine_answer =
            engine.answer(&SeedQuery::top_k(K).over_range(range.clone())).expect("valid query");
        let direct = max_coverage_with(pool, K, range.clone(), &mut GreedyScratch::new());
        assert_eq!(engine_answer.seeds, direct.seeds, "engine and direct greedy disagree");

        let query = SeedQuery::top_k(K).over_range(range.clone());
        group.bench_with_input(BenchmarkId::new("engine-frozen-gains", label), &query, |b, q| {
            b.iter(|| engine.answer(q).expect("valid query").covered)
        });
        let mut scratch = GreedyScratch::new();
        group.bench_with_input(BenchmarkId::new("per-call-histogram", label), pool, |b, pool| {
            b.iter(|| max_coverage_with(pool, K, range.clone(), &mut scratch).covered)
        });
        group.bench_with_input(BenchmarkId::new("snapshot-build-only", label), pool, |b, pool| {
            b.iter(|| GainSnapshot::build(&CoverageView::build(pool, range.clone())).range().end)
        });
    }

    // Heterogeneous batch: budgets 1..=16 alternating full/half ranges.
    let batch: Vec<SeedQuery> = (1..=16usize)
        .map(|k| {
            let q = SeedQuery::top_k(3 * k);
            if k % 2 == 0 {
                q.over_range(0..total / 2)
            } else {
                q
            }
        })
        .collect();
    assert_eq!(
        engine.answer_batch(&batch).expect("valid batch"),
        threaded.answer_batch(&batch).expect("valid batch"),
        "batch answers must not depend on worker threads"
    );
    group.bench_with_input(BenchmarkId::new("batch-16", "1-thread"), &batch, |b, batch| {
        b.iter(|| engine.answer_batch(batch).expect("valid batch").len())
    });
    group.bench_with_input(BenchmarkId::new("batch-16", "4-threads"), &batch, |b, batch| {
        b.iter(|| threaded.answer_batch(batch).expect("valid batch").len())
    });

    // Weighted query: per-query gains, no snapshot to amortize.
    let weights: Vec<f64> =
        (0..pool.num_nodes()).map(|v| if v % 10 == 0 { 1.0 } else { 0.0 }).collect();
    let weighted = SeedQuery::top_k(K).with_root_weights(weights);
    group.bench_with_input(BenchmarkId::new("weighted-query", "full"), &weighted, |b, q| {
        b.iter(|| engine.answer(q).expect("valid query").covered)
    });
    group.finish();
}

fn main() {
    // `cargo bench -p sns-bench -- --test` (the CI bench-smoke job):
    // pool build, bit-identity asserts and one iteration of every
    // routine still execute, unmeasured; only the measurement loop and
    // the JSON snapshot are skipped.
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        println!("query_engine: --test run, one unmeasured iteration per bench");
    }
    let mut c = Criterion::default().test_mode(test_mode);
    let pool = support::ba_pool();
    println!(
        "pool: {} sets, {} entries, sealed {} / pending {}",
        pool.len(),
        pool.total_nodes(),
        pool.sealed_sets(),
        pool.pending_sets()
    );
    let gamma = f64::from(pool.num_nodes());
    let engine = SeedQueryEngine::from_pool(pool.clone(), gamma);
    let threaded = SeedQueryEngine::from_pool(pool, gamma).with_threads(4);
    bench_queries(&mut c, &engine, &threaded);
    if !test_mode {
        let counters = sns_bench::sample_counts::counters();
        support::write_bench_json_with_counters(&c, "BENCH_query_engine.json", &counters);
    }
}
