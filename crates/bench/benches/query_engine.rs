//! Frozen-pool seed-query engine vs per-call histogram rebuilds.
//!
//! The regime the engine exists for: one sealed 60k-set pool answering
//! query after query. Measures, on the shared 100k-node Barabási–Albert
//! pool, (a) repeated `k = 50` selection through the engine (frozen
//! [`GainSnapshot`], memcpy'd gains) vs `max_coverage_with` (per-call
//! histogram + heap-seed rebuild) — full pool and a D-SSA-style half
//! range; (b) the one-off snapshot build cost the fast path amortizes;
//! (c) a heterogeneous 16-query batch at 1 and 4 worker threads — raw
//! `answer_batch` fan-out vs the batch planner (`answer_planned`, which
//! groups the 16 queries into 2 shared snapshot resolutions); and
//! (d) a weighted (TVM root weights) query through the topic-keyed
//! frozen-gain cache vs the per-call weighted init pass.
//!
//! The `query_engine_grow` group covers grow-while-serving: an engine
//! whose pool was extended epoch by epoch, measuring the steady-state
//! multi-epoch query (cached merge, zero rebase), the one-off
//! epoch-merge build it amortizes, and the per-call histogram rebuild a
//! snapshot-less server would pay on the same grown pool.
//!
//! Results land in `BENCH_query_engine.json` (shared `BENCH_*.json`
//! schema) together with deterministic `counters` the warn-only
//! `bench_diff` CI step tracks: the algorithm sample counts
//! (`sns_bench::sample_counts`), the cache hit/miss/evict counters
//! of a fixed grow-while-serving query script, and the traffic
//! simulator's admission/planner counters (criterion iteration counts
//! never touch these — each script runs exactly once). The simulator's
//! wall-clock side — p50/p99 service latency, queries/sec — is written
//! as the first-class `"serving"` object, report-only.

// Benchmarks measure wall time by definition.
#![allow(clippy::disallowed_methods)]

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use std::sync::Arc;

use sns_core::{NodeCosts, SamplingContext, SeedQuery, SeedQueryEngine};
use sns_diffusion::Model;
use sns_rrset::{max_coverage_with, CoverageView, GainSnapshot, GreedyScratch};

#[path = "support/mod.rs"]
mod support;

const K: usize = 50;

fn bench_queries(c: &mut Criterion, engine: &SeedQueryEngine, threaded: &SeedQueryEngine) {
    let pool = engine.pool();
    let pool = &*pool;
    let total = pool.len() as u32;
    let mut group = c.benchmark_group("query_engine_k50");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    for (label, range) in [("full", 0..total), ("half", 0..total / 2)] {
        // The engine's contract: bit-identical to the per-call path.
        let engine_answer =
            engine.answer(&SeedQuery::top_k(K).over_range(range.clone())).expect("valid query");
        let direct = max_coverage_with(pool, K, range.clone(), &mut GreedyScratch::new());
        assert_eq!(engine_answer.seeds, direct.seeds, "engine and direct greedy disagree");

        let query = SeedQuery::top_k(K).over_range(range.clone());
        group.bench_with_input(BenchmarkId::new("engine-frozen-gains", label), &query, |b, q| {
            b.iter(|| engine.answer(q).expect("valid query").covered)
        });
        let mut scratch = GreedyScratch::new();
        group.bench_with_input(BenchmarkId::new("per-call-histogram", label), pool, |b, pool| {
            b.iter(|| max_coverage_with(pool, K, range.clone(), &mut scratch).covered)
        });
        group.bench_with_input(BenchmarkId::new("snapshot-build-only", label), pool, |b, pool| {
            b.iter(|| GainSnapshot::build(&CoverageView::build(pool, range.clone())).range().end)
        });
    }

    // Heterogeneous batch: budgets 1..=16 alternating full/half ranges.
    let batch: Vec<SeedQuery> = (1..=16usize)
        .map(|k| {
            let q = SeedQuery::top_k(3 * k);
            if k % 2 == 0 {
                q.over_range(0..total / 2)
            } else {
                q
            }
        })
        .collect();
    assert_eq!(
        engine.answer_batch(&batch).expect("valid batch"),
        threaded.answer_batch(&batch).expect("valid batch"),
        "batch answers must not depend on worker threads"
    );
    group.bench_with_input(BenchmarkId::new("batch-16", "1-thread"), &batch, |b, batch| {
        b.iter(|| engine.answer_batch(batch).expect("valid batch").len())
    });
    group.bench_with_input(BenchmarkId::new("batch-16", "4-threads"), &batch, |b, batch| {
        b.iter(|| threaded.answer_batch(batch).expect("valid batch").len())
    });

    // The same heterogeneous batch through the planner: 16 queries over
    // 2 distinct ranges collapse to 2 snapshot resolutions instead of
    // up to 16. Bit-identity to the unplanned path is the contract.
    assert_eq!(
        engine.answer_planned(&batch).expect("valid batch"),
        engine.answer_batch(&batch).expect("valid batch"),
        "planned answers must be bit-identical to answer_batch"
    );
    group.bench_with_input(BenchmarkId::new("planned-16", "1-thread"), &batch, |b, batch| {
        b.iter(|| engine.answer_planned(batch).expect("valid batch").len())
    });
    group.bench_with_input(BenchmarkId::new("planned-16", "4-threads"), &batch, |b, batch| {
        b.iter(|| threaded.answer_planned(batch).expect("valid batch").len())
    });

    // Budgeted batch: 16 cost-aware queries — uniform-cost degeneration
    // twins of the heterogeneous batch on even slots, a shared per-node
    // cost table (identity-compared Arc) with fractional budgets on odd
    // slots. Budgeted queries ride the same plain snapshot groups, so
    // the planner collapses the batch to 2 resolutions here too.
    let costs: Arc<[f64]> = (0..pool.num_nodes()).map(|v| 0.5 + f64::from(v % 4) * 0.25).collect();
    let budgeted_batch: Vec<SeedQuery> = (1..=16usize)
        .map(|k| {
            if k % 2 == 0 {
                SeedQuery::budgeted((3 * k) as f64).over_range(0..total / 2)
            } else {
                SeedQuery::budgeted((3 * k) as f64 * 0.75)
                    .with_costs(NodeCosts::per_node(costs.clone()))
            }
        })
        .collect();
    // Bit-identity contract: the even slots are the uniform-cost
    // degeneration — byte-for-byte equal to their top-k twins in
    // `batch` — and planned/unplanned/threaded all agree.
    let budgeted_answers = engine.answer_batch(&budgeted_batch).expect("valid budgeted batch");
    let plain_answers = engine.answer_batch(&batch).expect("valid batch");
    for k in (2..=16usize).step_by(2) {
        assert_eq!(
            budgeted_answers[k - 1],
            plain_answers[k - 1],
            "uniform-cost budget {} must degenerate to top-{}",
            3 * k,
            3 * k
        );
    }
    assert_eq!(
        engine.answer_planned(&budgeted_batch).expect("valid budgeted batch"),
        budgeted_answers,
        "planned budgeted answers must be bit-identical to answer_batch"
    );
    assert_eq!(
        threaded.answer_batch(&budgeted_batch).expect("valid budgeted batch"),
        budgeted_answers,
        "budgeted answers must not depend on worker threads"
    );
    group.bench_with_input(
        BenchmarkId::new("budgeted-16", "1-thread"),
        &budgeted_batch,
        |b, batch| b.iter(|| engine.answer_planned(batch).expect("valid batch").len()),
    );
    group.bench_with_input(
        BenchmarkId::new("budgeted-16", "4-threads"),
        &budgeted_batch,
        |b, batch| b.iter(|| threaded.answer_planned(batch).expect("valid batch").len()),
    );

    // Weighted query, uncached: per-query gain pass, no snapshot.
    let weights: Vec<f64> =
        (0..pool.num_nodes()).map(|v| if v % 10 == 0 { 1.0 } else { 0.0 }).collect();
    let weighted = SeedQuery::top_k(K).with_root_weights(weights.clone());
    group.bench_with_input(BenchmarkId::new("weighted-query", "full"), &weighted, |b, q| {
        b.iter(|| engine.answer(q).expect("valid query").covered)
    });
    // Same query through the topic-keyed frozen-gain cache (the
    // repeated-TVM serving path; first call builds, the rest memcpy).
    let topic = SeedQuery::top_k(K).with_root_weights(weights).with_topic(1);
    assert_eq!(
        engine.answer(&topic).expect("valid query").seeds,
        engine.answer(&weighted).expect("valid query").seeds,
        "frozen and per-call weighted selection disagree"
    );
    group.bench_with_input(
        BenchmarkId::new("weighted-query-topic-cached", "full"),
        &topic,
        |b, q| b.iter(|| engine.answer(q).expect("valid query").covered),
    );
    group.finish();
}

/// Grow-while-serving: pool extended in epochs while the engine keeps
/// answering. Steady state (cached merge, frozen offsets) vs the one-off
/// merge build vs per-call histogram rebuilds on the same grown pool.
fn bench_grow_while_serving(c: &mut Criterion) {
    let g = support::ba_graph();
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(3).with_threads(8);
    // Same 60k-set total as the frozen benches, reached in 4 epochs.
    let mut engine = SeedQueryEngine::sample(&ctx, support::SETS / 2).with_threads(8);
    for _ in 0..3 {
        engine.extend(&ctx, support::SETS / 6);
        engine.answer(&SeedQuery::top_k(K)).expect("valid query");
    }
    let grown = engine.pool();
    let pool_len = grown.len() as u32;
    let epochs = grown.epoch_boundaries().len();
    println!("grown pool: {} sets in {} epochs", pool_len, epochs);
    assert!(epochs >= 4, "growth must have sealed one epoch per extend");
    let full = SeedQuery::top_k(K);
    assert_eq!(
        engine.answer(&full).expect("valid query").seeds,
        max_coverage_with(&grown, K, 0..pool_len, &mut GreedyScratch::new()).seeds,
        "grown engine and direct greedy disagree"
    );

    let mut group = c.benchmark_group("query_engine_grow");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    // Steady state: the merged snapshot is cached, the query is memcpy +
    // selection, zero histogram and zero offset-rebase work.
    group.bench_with_input(BenchmarkId::new("steady-state-merged", "full"), &full, |b, q| {
        b.iter(|| engine.answer(q).expect("valid query").covered)
    });
    // The one-off cost a pool extension adds to the *next* full-range
    // query: merging the per-epoch snapshots (histograms sum, heap seed
    // rebuilt) — what replaces a from-scratch histogram pass.
    let parts: Vec<GainSnapshot> =
        grown.epochs().map(|e| GainSnapshot::build(&CoverageView::build(&grown, e))).collect();
    group.bench_with_input(BenchmarkId::new("epoch-merge-build", "full"), &parts, |b, parts| {
        b.iter(|| {
            let refs: Vec<&GainSnapshot> = parts.iter().collect();
            GainSnapshot::merge(&refs).range().end
        })
    });
    // What a snapshot-less server pays per query on the same grown pool.
    let mut scratch = GreedyScratch::new();
    group.bench_with_input(BenchmarkId::new("per-call-histogram", "full"), &*grown, |b, pool| {
        b.iter(|| max_coverage_with(pool, K, 0..pool_len, &mut scratch).covered)
    });
    group.finish();
}

/// Bake-then-serve: loading a saved 100k-set pool (every epoch
/// checksum-verified, fingerprint checked) vs resampling it from
/// scratch. Returns the realized load-vs-resample speedup, tracked in
/// the JSON `counters` as `store_load_vs_resample_speedup` — a *floor*
/// counter: `bench_diff` fails loudly if it falls below the baselined
/// minimum (100×), and `--write` never raises the floor automatically.
fn bench_store(c: &mut Criterion) -> u64 {
    use std::time::Instant;

    // Dense ER fixture (4k nodes, 4M arcs, WeightedCascade): the
    // paper's serving regime where baking is expensive and the baked
    // artifact is small. A WC random RR walk examines every in-edge of
    // each node it visits, so per-stored-entry sampling cost scales
    // with average in-degree (~1000 edge examinations per entry here)
    // while RR-set *size* — and hence segment bytes, checksum work and
    // index-compact work on the load path — stays degree-independent.
    // That asymmetry is exactly what the store exists to exploit.
    let g = sns_graph::gen::erdos_renyi(4_000, 4_000_000, 7)
        .build(sns_graph::WeightModel::WeightedCascade)
        .expect("fixture graph builds");
    let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(3).with_threads(8);
    const STORE_SETS: u64 = 100_000;

    let resample_start = Instant::now();
    let engine = SeedQueryEngine::sample(&ctx, STORE_SETS).with_threads(8);
    let resample = resample_start.elapsed();

    let dir = std::env::temp_dir().join(format!("sns-bench-pool-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let stats = engine.save(&dir).expect("save commits");

    // Best of three full loads (each one re-verifies every checksum):
    // the first load after the multi-gigabyte BA benches above pays
    // one-off allocator/page-cache noise that the serving regime —
    // load once, answer queries forever — never sees steady-state.
    let mut load = Duration::MAX;
    for _ in 0..3 {
        let load_start = Instant::now();
        let loaded = SeedQueryEngine::from_store(&dir, &ctx).expect("load verifies");
        load = load.min(load_start.elapsed());
        assert_eq!(loaded.pool().len(), engine.pool().len(), "load must restore every set");
    }

    let speedup = (resample.as_nanos() / load.as_nanos().max(1)) as u64;
    println!(
        "store: resampled {STORE_SETS} sets in {resample:.0?}; saved {} KiB; \
         loaded + verified in {load:.0?} ({speedup}x)",
        stats.bytes_written / 1024
    );

    let mut group = c.benchmark_group("pool_store");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("load-verified", "100k-sets"), &dir, |b, dir| {
        b.iter(|| SeedQueryEngine::from_store(dir, &ctx).expect("load verifies").pool().len())
    });
    let rewrite_dir =
        std::env::temp_dir().join(format!("sns-bench-pool-store-w-{}", std::process::id()));
    group.bench_with_input(BenchmarkId::new("save-full-rewrite", "100k-sets"), &engine, |b, e| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&rewrite_dir);
            e.save(&rewrite_dir).expect("save commits").bytes_written
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&rewrite_dir);
    speedup
}

fn main() {
    // `cargo bench -p sns-bench -- --test` (the CI bench-smoke job):
    // pool build, bit-identity asserts and one iteration of every
    // routine still execute, unmeasured; only the measurement loop and
    // the JSON snapshot are skipped.
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        println!("query_engine: --test run, one unmeasured iteration per bench");
    }
    let mut c = Criterion::default().test_mode(test_mode);
    let pool = support::ba_pool();
    println!(
        "pool: {} sets, {} entries, sealed {} / pending {}",
        pool.len(),
        pool.total_nodes(),
        pool.sealed_sets(),
        pool.pending_sets()
    );
    let gamma = f64::from(pool.num_nodes());
    let engine = SeedQueryEngine::from_pool(pool.clone(), gamma);
    let threaded = SeedQueryEngine::from_pool(pool, gamma).with_threads(4);
    bench_queries(&mut c, &engine, &threaded);
    bench_grow_while_serving(&mut c);
    let speedup = bench_store(&mut c);
    if !test_mode {
        // The serving front end under deterministic skewed/bursty
        // traffic: p50/p99 service latency and queries/sec become
        // first-class (report-only) fields of the JSON snapshot, while
        // the simulator's deterministic counters travel inside
        // "counters" (as traffic_sim_*, via sample_counts::counters)
        // where bench_diff gates them exactly.
        let traffic = sns_bench::traffic::simulate(&sns_bench::traffic::TrafficConfig::ci());
        println!(
            "serving: {} queries served, p50 {} ns, p99 {} ns, {:.0} queries/sec",
            traffic.served, traffic.p50_service_ns, traffic.p99_service_ns, traffic.queries_per_sec
        );
        let serving = support::ServingSummary {
            p50_service_ns: traffic.p50_service_ns,
            p99_service_ns: traffic.p99_service_ns,
            queries_per_sec: traffic.queries_per_sec,
            served: traffic.served,
        };
        // counters() includes the grow-while-serving cache script, the
        // deterministic store-recovery outcome and the traffic-simulator
        // counters — see sns_bench::sample_counts. The load-vs-resample
        // speedup is appended here (it needs the 100k-set pool this
        // bench bakes) and diffed by bench_diff as a floor, not an
        // exact value.
        let mut counters = sns_bench::sample_counts::counters();
        counters.push(("store_load_vs_resample_speedup", speedup));
        support::write_bench_json_full(&c, "BENCH_query_engine.json", &counters, Some(&serving));
    }
}
