//! Ablations called out in DESIGN.md §7: SSA ε-preset sensitivity
//! (§4.2 of the paper), uniform vs weighted (alias-table) root sampling,
//! and sequential vs multi-threaded pool growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sns_core::{Params, SamplingContext, Ssa, SsaEpsilons};
use sns_diffusion::{Model, RootDist, RrSampler};
use sns_graph::{gen, WeightModel};
use sns_rrset::RrCollection;

/// SSA with different ε splits: the paper's recommended setting vs an
/// "equal split" vs a verification-heavy split (large ε₁).
fn bench_ssa_epsilon_presets(c: &mut Criterion) {
    let g = gen::rmat(5_000, 30_000, gen::RmatParams::GRAPH500, 11)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let eps = 0.2;
    let params = Params::new(50, eps, 1.0 / 5000.0).unwrap();
    let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);

    let presets: Vec<(&str, SsaEpsilons)> = vec![
        ("recommended", SsaEpsilons::recommended(eps)),
        // all three errors equal (solving Eq. 18 with e1 = e2 = e3)
        ("equal-split", SsaEpsilons { e1: 0.105, e2: 0.105, e3: 0.105 }),
        // verification-tolerant: large e1, tight e2/e3 (the paper's
        // "large networks" regime)
        ("large-e1", SsaEpsilons { e1: 0.24, e2: 0.055, e3: 0.055 }),
    ];
    let mut group = c.benchmark_group("ssa_epsilon_presets");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for (name, split) in presets {
        split.validate(eps).expect("preset must satisfy Eq. 18");
        let ssa = Ssa::with_epsilons(params, split).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &ctx, |b, ctx| {
            b.iter(|| ssa.run(ctx).unwrap().rr_sets_total())
        });
    }
    group.finish();
}

/// Root sampling: uniform `gen_range` vs alias-table draws (the WRIS
/// overhead TVM pays per sample).
fn bench_root_sampling(c: &mut Criterion) {
    let g = gen::rmat(20_000, 120_000, gen::RmatParams::GRAPH500, 3)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let weights: Vec<f64> = (0..20_000).map(|v| 1.0 + f64::from(v % 7)).collect();
    let mut group = c.benchmark_group("root_sampling_1k_sets");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(20);
    for (name, roots) in
        [("uniform", RootDist::Uniform), ("alias", RootDist::weighted(&weights).unwrap())]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &roots, |b, roots| {
            let mut sampler = RrSampler::with_config(&g, Model::LinearThreshold, roots.clone(), 9);
            let mut rr = Vec::new();
            let mut index = 0u64;
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..1000 {
                    sampler.sample(index, &mut rr);
                    index += 1;
                    total += rr.len();
                }
                total
            });
        });
    }
    group.finish();
}

/// Pool growth: sequential vs scoped-thread generation (identical
/// output; the paper is single-threaded, parallelism is this library's
/// extension).
fn bench_parallel_growth(c: &mut Criterion) {
    let g = gen::rmat(20_000, 120_000, gen::RmatParams::GRAPH500, 3)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let sampler = RrSampler::new(&g, Model::IndependentCascade);
    let mut group = c.benchmark_group("pool_growth_20k_sets");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mut pool = RrCollection::new(g.num_nodes());
                pool.extend_parallel(&sampler, 0, 20_000, t);
                pool.total_nodes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssa_epsilon_presets, bench_root_sampling, bench_parallel_growth);
criterion_main!(benches);
