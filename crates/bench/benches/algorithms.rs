//! End-to-end algorithm comparison on one fixed network — the
//! micro-scale version of Figures 4–5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sns_bench::algorithms::Algo;
use sns_core::{Params, SamplingContext};
use sns_diffusion::Model;
use sns_graph::{gen, WeightModel};

fn bench_algorithms(c: &mut Criterion) {
    let g = gen::rmat(5_000, 30_000, gen::RmatParams::GRAPH500, 11)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let params = Params::new(50, 0.2, 1.0 / 5000.0).unwrap();

    let mut group = c.benchmark_group("im_algorithms_k50");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for model in [Model::LinearThreshold, Model::IndependentCascade] {
        let ctx = SamplingContext::new(&g, model).with_seed(5);
        for algo in [Algo::Dssa, Algo::Ssa, Algo::Imm, Algo::TimPlus] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), model.short_name()),
                &ctx,
                |b, ctx| b.iter(|| algo.run(ctx, params, 0).seeds.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
