//! Forward Monte Carlo spread estimation — the oracle CELF++ pays for on
//! every queue update, and the measurement backend of Figures 2–3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sns_diffusion::{Model, SpreadEstimator};
use sns_graph::{gen, WeightModel};

fn bench_spread(c: &mut Criterion) {
    let g = gen::rmat(10_000, 60_000, gen::RmatParams::GRAPH500, 13)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let seeds: Vec<u32> = (0..10).collect();

    let mut group = c.benchmark_group("spread_1k_sims_k10");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for model in [Model::LinearThreshold, Model::IndependentCascade] {
        group.bench_with_input(BenchmarkId::new("seq", model.short_name()), &model, |b, &m| {
            let est = SpreadEstimator::new(&g, m).with_threads(1);
            b.iter(|| est.estimate(&seeds, 1000, 7))
        });
        group.bench_with_input(BenchmarkId::new("par", model.short_name()), &model, |b, &m| {
            let est = SpreadEstimator::new(&g, m);
            b.iter(|| est.estimate(&seeds, 1000, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spread);
criterion_main!(benches);
