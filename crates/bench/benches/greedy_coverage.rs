//! Greedy Max-Coverage ablation: the CSR-transposed coverage view
//! (`CoverageView` + `GreedyScratch`) vs the pre-refactor lazy heap that
//! walked the pool's two-tier inverted index and `u64` arena offsets per
//! newly covered set.
//!
//! Measures, on a 100k-node Barabási–Albert pool, (a) end-to-end
//! selection (`max_coverage_with`, which builds the view and selects)
//! against the pre-refactor implementation, over the full pool and over a
//! D-SSA-style half range; (b) the view **build** cost alone (offset
//! rebase only — member data is borrowed zero-copy); and (c)
//! repeated selection on one prebuilt view — the regime where the
//! coverage subsystem amortizes its snapshot.
//!
//! Besides the human-readable criterion output, results are written as
//! machine-readable JSON to `BENCH_greedy.json` in the workspace root
//! (schema: `{"benchmarks": [{"name", "mean_ns", "min_ns", "max_ns",
//! "iters"}]}`), mirroring `BENCH_rr_index.json`.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};

use sns_rrset::{
    max_coverage_pre_refactor, max_coverage_with, CoverageView, GreedyScratch, RrCollection,
};

#[path = "support/mod.rs"]
mod support;

const K: usize = 50;

fn bench_selection(c: &mut Criterion, pool: &RrCollection) {
    let total = pool.len() as u32;
    let mut group = c.benchmark_group("greedy_coverage_k50");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for (label, range) in [("full", 0..total), ("half", 0..total / 2)] {
        // Seed sets must agree — the refactor's contract is bit-identity.
        assert_eq!(
            max_coverage_with(pool, K, range.clone(), &mut GreedyScratch::new()),
            max_coverage_pre_refactor(pool, K, range.clone()),
            "view and pre-refactor greedy disagree on {label}"
        );
        let mut scratch = GreedyScratch::new();
        group.bench_with_input(BenchmarkId::new("view", label), pool, |b, pool| {
            b.iter(|| max_coverage_with(pool, K, range.clone(), &mut scratch).covered)
        });
        group.bench_with_input(BenchmarkId::new("pre-refactor", label), pool, |b, pool| {
            b.iter(|| max_coverage_pre_refactor(pool, K, range.clone()).covered)
        });
        group.bench_with_input(BenchmarkId::new("view-build-only", label), pool, |b, pool| {
            b.iter(|| CoverageView::build(pool, range.clone()).len())
        });
    }
    // Repeated selection on one prebuilt snapshot (frozen-pool regime).
    let view = CoverageView::build(pool, 0..total);
    let mut scratch = GreedyScratch::new();
    group.bench_with_input(BenchmarkId::new("select-on-prebuilt-view", "full"), &view, |b, v| {
        b.iter(|| v.select(K, &mut scratch).covered)
    });
    group.finish();

    println!(
        "view memory (full range): {} B for {} entries ({} sets); pool index {} B",
        view.memory_bytes(),
        pool.total_nodes(),
        pool.len(),
        pool.index_memory_bytes()
    );
}

fn main() {
    // `cargo bench -p sns-bench -- --test` (the CI bench-smoke job):
    // everything below — pool build, bit-identity asserts, one iteration
    // of every routine — still executes, unmeasured, so panicking setup
    // or bit-rotted bench code fails the job; only the measurement loop
    // and the JSON snapshot are skipped.
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        println!("greedy_coverage: --test run, one unmeasured iteration per bench");
    }
    let mut c = Criterion::default().test_mode(test_mode);
    let pool = support::ba_pool();
    println!(
        "pool: {} sets, {} entries, sealed {} / pending {}",
        pool.len(),
        pool.total_nodes(),
        pool.sealed_sets(),
        pool.pending_sets()
    );
    bench_selection(&mut c, &pool);
    if !test_mode {
        support::write_bench_json(&c, "BENCH_greedy.json");
    }
}
