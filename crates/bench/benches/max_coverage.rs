//! Max-Coverage (Algorithm 2) — lazy-heap greedy vs the textbook rescan,
//! the DESIGN.md §7 ablation for the selection step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sns_diffusion::{Model, RrSampler};
use sns_graph::{gen, WeightModel};
use sns_rrset::{max_coverage, max_coverage_bucket, max_coverage_naive, RrCollection};

fn build_pool(sets: u64) -> RrCollection {
    let g = gen::rmat(20_000, 120_000, gen::RmatParams::GRAPH500, 3)
        .build(WeightModel::WeightedCascade)
        .unwrap();
    let mut pool = RrCollection::new(g.num_nodes());
    let mut sampler = RrSampler::new(&g, Model::LinearThreshold);
    pool.extend_sequential(&mut sampler, 0, sets);
    pool
}

fn bench_max_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_coverage_k50");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for sets in [10_000u64, 50_000] {
        let pool = build_pool(sets);
        group.bench_with_input(BenchmarkId::new("lazy", sets), &pool, |b, pool| {
            b.iter(|| max_coverage(pool, 50).covered)
        });
        group.bench_with_input(BenchmarkId::new("bucket", sets), &pool, |b, pool| {
            b.iter(|| max_coverage_bucket(pool, 50).covered)
        });
        group.bench_with_input(BenchmarkId::new("naive", sets), &pool, |b, pool| {
            b.iter(|| max_coverage_naive(pool, 50).covered)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_coverage);
criterion_main!(benches);
