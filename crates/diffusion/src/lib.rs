//! Diffusion models and sampling for the Stop-and-Stare library.
//!
//! Implements the two propagation models of the paper (§2.1) and both
//! directions of sampling built on them:
//!
//! * **Forward**: [`CascadeSimulator`] runs one IC or LT cascade from a
//!   seed set; [`SpreadEstimator`] averages many cascades into a Monte
//!   Carlo estimate of the influence spread `I(S)` — the oracle behind the
//!   greedy baselines (CELF++) and the "Expected Influence" axis of
//!   Figures 2–3.
//! * **Reverse**: [`RrSampler`] draws random Reverse Reachable (RR) sets
//!   (Definition 2 of the paper) — a uniform (or, for TVM, weighted) root
//!   plus everything that can reach it in a random sample graph. RR sets
//!   are the currency of every RIS algorithm (SSA, D-SSA, IMM, TIM/TIM+).
//!
//! All randomness flows through [`rng::Xoshiro256pp`] seeded per logical
//! sample index, so results are bit-reproducible regardless of thread
//! count.
//!
//! # Example
//!
//! ```
//! use sns_graph::{gen::erdos_renyi, WeightModel};
//! use sns_diffusion::{Model, RrSampler, SpreadEstimator};
//!
//! let g = erdos_renyi(200, 1000, 7).build(WeightModel::WeightedCascade).unwrap();
//!
//! // Draw one RR set under the LT model.
//! let mut sampler = RrSampler::new(&g, Model::LinearThreshold);
//! let mut rr = Vec::new();
//! let meta = sampler.sample(42, &mut rr);
//! assert!(rr.contains(&meta.root));
//!
//! // Estimate the spread of a seed set with 1000 forward simulations.
//! let spread = SpreadEstimator::new(&g, Model::LinearThreshold)
//!     .estimate(&[0, 1], 1000, 99);
//! assert!(spread >= 2.0); // seeds are always active
//! ```

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

pub mod forward;
pub mod rng;
pub mod rr;
pub mod trace;

mod model;
mod root;
mod spread;

pub use forward::{CascadeBuffers, CascadeSimulator};
pub use model::Model;
pub use root::{BenefitTable, RootDist};
pub use rr::{RrMeta, RrSampler};
pub use spread::SpreadEstimator;
pub use trace::{trace_cascade, Activation, CascadeTrace};
