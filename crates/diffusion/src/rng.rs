//! Randomness utilities.
//!
//! Every logical sample (one RR set, one forward cascade) gets its own RNG
//! seeded from `(master seed, sample index)`. This makes every estimate in
//! the library **bit-reproducible independent of thread count and
//! scheduling**: sample `i` sees the same stream whether it runs on one
//! thread or sixteen.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), chosen over
//! `rand::StdRng` (ChaCha12) because RR sampling creates one generator per
//! sample and xoshiro's 4-word state seeds in a handful of cycles while
//! passing BigCrush.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step — the recommended seeder for xoshiro state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed for logical sample `index` from a master seed.
///
/// Mixes both words through SplitMix64 so consecutive indices produce
/// decorrelated generators.
#[inline]
pub fn seed_for(master: u64, index: u64) -> u64 {
    let mut s = master ^ index.wrapping_mul(0xA24BAED4963EE407);
    splitmix64(&mut s)
}

/// xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator for logical sample `index` under `master`.
    #[inline]
    pub fn for_sample(master: u64, index: u64) -> Self {
        Self::seed_from_u64(seed_for(master, index))
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        // All-zero state is a fixed point; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        Xoshiro256pp { s }
    }

    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Xoshiro256pp { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_samples_decorrelated() {
        let mut a = Xoshiro256pp::for_sample(1, 0);
        let mut b = Xoshiro256pp::for_sample(1, 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn reference_vector() {
        // xoshiro256++ with state seeded by splitmix64(0): first outputs
        // must be stable across releases (guards against accidental
        // algorithm changes that would silently re-randomize every
        // recorded experiment).
        let mut r = Xoshiro256pp::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = Xoshiro256pp::seed_from_u64(0);
        let again: Vec<u64> = (0..3).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} suspicious");
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_escapes_fixed_point() {
        let r = Xoshiro256pp::from_seed([0u8; 32]);
        let mut r = r;
        assert_ne!(r.next_u64(), 0);
    }
}
