//! Cascade tracing: who activated whom, in which round.
//!
//! The counting simulators in [`crate::forward`] are the hot path; this
//! module is the observability path — it replays a cascade while
//! recording the activation forest, which applications use to visualize
//! campaigns, attribute conversions to seeds, or audit outbreak chains.

use rand::{Rng, RngCore};

use sns_graph::{Graph, NodeId};

use crate::Model;

/// One activation event in a traced cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// The node that became active.
    pub node: NodeId,
    /// The already-active node whose edge triggered the activation
    /// (`None` for seeds; for LT this is the in-neighbor whose
    /// contribution crossed the threshold).
    pub activated_by: Option<NodeId>,
    /// Diffusion round (seeds are round 0).
    pub round: u32,
}

/// A fully recorded cascade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeTrace {
    /// Activation events in activation order (seeds first).
    pub activations: Vec<Activation>,
    /// Number of rounds until quiescence (0 if nothing spread).
    pub rounds: u32,
}

impl CascadeTrace {
    /// Total number of activated nodes (seeds included).
    pub fn size(&self) -> usize {
        self.activations.len()
    }

    /// The seeds' share of the activations attributed to each seed: the
    /// number of nodes in each seed's activation subtree (the seed
    /// itself included). The attribution of a node is the seed at the
    /// root of its activation chain.
    pub fn attribution(&self) -> Vec<(NodeId, u64)> {
        use std::collections::BTreeMap;
        // BTreeMaps, not HashMaps: `counts` is iterated into the result,
        // and iteration order must not depend on hasher seeds. The
        // ordered map also makes the output sorted by construction.
        let mut root_of: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut counts: BTreeMap<NodeId, u64> = BTreeMap::new();
        for a in &self.activations {
            let root = match a.activated_by {
                // Parents always activate before children, so the lookup
                // succeeds; an (impossible) orphan attributes to itself.
                None => a.node,
                Some(parent) => root_of.get(&parent).copied().unwrap_or(a.node),
            };
            root_of.insert(a.node, root);
            *counts.entry(root).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// Runs one traced cascade from `seeds` under `model`.
///
/// Uses the same live-edge semantics as the counting simulators, but is
/// not RNG-stream-compatible with them (tracing orders decisions round
/// by round). Duplicate seeds are recorded once.
pub fn trace_cascade<R: RngCore>(
    graph: &Graph,
    model: Model,
    seeds: &[NodeId],
    rng: &mut R,
) -> CascadeTrace {
    let n = graph.num_nodes() as usize;
    let mut active = vec![false; n];
    let mut activations = Vec::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            activations.push(Activation { node: s, activated_by: None, round: 0 });
            frontier.push(s);
        }
    }

    // LT state: lazily drawn thresholds and accumulated in-weight.
    let mut threshold = vec![f32::NAN; n];
    let mut incoming = vec![0.0f32; n];

    let mut rounds = 0u32;
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        rounds += 1;
        next.clear();
        for &u in &frontier {
            for (v, w) in graph.out_edges(u) {
                if active[v as usize] {
                    continue;
                }
                let fired = match model {
                    Model::IndependentCascade => rng.gen::<f32>() < w,
                    Model::LinearThreshold => {
                        let vi = v as usize;
                        if threshold[vi].is_nan() {
                            threshold[vi] = rng.gen::<f32>();
                        }
                        incoming[vi] += w;
                        incoming[vi] >= threshold[vi]
                    }
                };
                if fired {
                    active[v as usize] = true;
                    activations.push(Activation { node: v, activated_by: Some(u), round: rounds });
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    // quiescence round (the last swap leaves an empty frontier): rounds
    // counts rounds in which something *could* fire; subtract the final
    // empty sweep when any seed existed
    let rounds = rounds.saturating_sub(1);
    CascadeTrace { activations, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::SeedableRng;
    use sns_graph::{GraphBuilder, WeightModel};

    fn line() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn deterministic_line_trace() {
        let g = line();
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            let t = trace_cascade(&g, model, &[0], &mut rng);
            assert_eq!(t.size(), 4, "{model}");
            assert_eq!(t.rounds, 3, "{model}");
            assert_eq!(t.activations[0], Activation { node: 0, activated_by: None, round: 0 });
            assert_eq!(t.activations[1], Activation { node: 1, activated_by: Some(0), round: 1 });
            assert_eq!(t.activations[3].round, 3);
        }
    }

    #[test]
    fn seeds_only_when_nothing_spreads() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.0);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let t = trace_cascade(&g, Model::IndependentCascade, &[0, 0], &mut rng);
        assert_eq!(t.size(), 1); // duplicate seed recorded once
        assert_eq!(t.rounds, 0);
    }

    #[test]
    fn attribution_partitions_the_cascade() {
        // two disjoint deterministic stars
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(1, 4, 1.0);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let t = trace_cascade(&g, Model::IndependentCascade, &[0, 1], &mut rng);
        assert_eq!(t.attribution(), vec![(0, 3), (1, 2)]);
        let total: u64 = t.attribution().iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, t.size());
    }

    #[test]
    fn traced_mean_matches_counting_simulator() {
        // statistical agreement between trace and the hot-path simulator
        let mut b = GraphBuilder::new();
        for v in 1..=30 {
            b.add_edge(0, v, 0.5);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let runs = 20_000;
        let mut total = 0u64;
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..runs {
            total += trace_cascade(&g, Model::IndependentCascade, &[0], &mut rng).size() as u64;
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 16.0).abs() < 0.3, "traced mean {mean}, expected 16");
    }
}
