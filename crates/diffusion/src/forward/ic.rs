//! Forward Independent Cascade simulation.

use rand::{Rng, RngCore};

use sns_graph::{Graph, NodeId};

use super::CascadeBuffers;

/// Runs one IC cascade, returning the number of activated nodes.
///
/// Standard BFS over live edges: when `u` activates it flips one coin per
/// out-edge `(u, v)` with success probability `w(u, v)`. The coin order is
/// the CSR edge order, so a given RNG stream reproduces the exact cascade.
pub(super) fn simulate<R: RngCore>(
    graph: &Graph,
    seeds: &[NodeId],
    rng: &mut R,
    buf: &mut CascadeBuffers,
) -> u64 {
    let mut activated = 0u64;
    for &s in seeds {
        if !buf.is_active(s) {
            buf.activate(s);
            buf.queue.push(s);
            activated += 1;
        }
    }
    let mut head = 0usize;
    while head < buf.queue.len() {
        let u = buf.queue[head];
        head += 1;
        for (v, w) in graph.out_edges(u) {
            if !buf.is_active(v) && rng.gen::<f32>() < w {
                buf.activate(v);
                buf.queue.push(v);
                activated += 1;
            }
        }
    }
    activated
}

/// Like [`simulate`], also appending every activated node to `out`.
pub(super) fn simulate_collect<R: RngCore>(
    graph: &Graph,
    seeds: &[NodeId],
    rng: &mut R,
    buf: &mut CascadeBuffers,
    out: &mut Vec<NodeId>,
) {
    simulate(graph, seeds, rng, buf);
    out.extend_from_slice(&buf.queue);
}

#[cfg(test)]
mod tests {
    use crate::rng::Xoshiro256pp;
    use crate::{CascadeSimulator, Model};
    use rand::SeedableRng;
    use sns_graph::{GraphBuilder, WeightModel};

    /// Fan-out graph: seed 0 points at 1..=100 with p = 0.5. The expected
    /// spread is 1 + 100·0.5 = 51; the Monte Carlo mean over many runs
    /// must converge to it.
    #[test]
    fn fanout_mean_matches_closed_form() {
        let mut b = GraphBuilder::new();
        for v in 1..=100 {
            b.add_edge(0, v, 0.5);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::IndependentCascade);
        let runs = 20_000u64;
        let total: u64 = (0..runs).map(|i| sim.run(&[0], 11, i)).sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 51.0).abs() < 0.5, "mean {mean}, expected ~51");
    }

    /// Two-hop path with p = 0.5 each: P(reach node 2) = 0.25, so
    /// E[spread] = 1 + 0.5 + 0.25 = 1.75.
    #[test]
    fn path_mean_matches_closed_form() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.5);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::IndependentCascade);
        let runs = 40_000u64;
        let total: u64 = (0..runs).map(|i| sim.run(&[0], 5, i)).sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 1.75).abs() < 0.03, "mean {mean}, expected ~1.75");
    }

    /// Activation is monotone in the seed set.
    #[test]
    fn monotone_in_seeds() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 0.3);
        b.add_edge(2, 3, 0.3);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::IndependentCascade);
        let mut rng_a = Xoshiro256pp::seed_from_u64(1);
        let mut rng_b = Xoshiro256pp::seed_from_u64(1);
        // same RNG stream: adding a disconnected seed adds exactly 1..=2
        let a = sim.run_with_rng(&[0], &mut rng_a);
        let b2 = sim.run_with_rng(&[0, 2], &mut rng_b);
        assert!(b2 > a);
    }
}
