//! Forward Linear Threshold simulation.

use rand::{Rng, RngCore};

use sns_graph::{Graph, NodeId};

use super::CascadeBuffers;

/// Runs one LT cascade, returning the number of activated nodes.
///
/// Thresholds `λ_v` are drawn lazily the first time a node receives active
/// in-weight, which is equivalent to drawing all thresholds upfront but
/// touches only the cascade's neighborhood. A node activates when its
/// accumulated active in-weight reaches `λ_v`; because weights sum to at
/// most 1 per node, each in-neighbor contributes once.
pub(super) fn simulate<R: RngCore>(
    graph: &Graph,
    seeds: &[NodeId],
    rng: &mut R,
    buf: &mut CascadeBuffers,
) -> u64 {
    let mut activated = 0u64;
    for &s in seeds {
        if !buf.is_active(s) {
            buf.activate(s);
            buf.queue.push(s);
            activated += 1;
        }
    }
    let mut head = 0usize;
    while head < buf.queue.len() {
        let u = buf.queue[head];
        head += 1;
        for (v, w) in graph.out_edges(u) {
            if buf.is_active(v) {
                continue;
            }
            let vi = v as usize;
            if buf.touched[vi] != buf.epoch {
                buf.touched[vi] = buf.epoch;
                buf.incoming[vi] = 0.0;
                // Draw in [0, 1); a threshold of exactly 0 would activate
                // nodes with no incoming weight, gen::<f32>() excludes 1.0
                // which is measure-zero anyway.
                buf.threshold[vi] = rng.gen::<f32>();
            }
            buf.incoming[vi] += w;
            if buf.incoming[vi] >= buf.threshold[vi] {
                buf.activate(v);
                buf.queue.push(v);
                activated += 1;
            }
        }
    }
    activated
}

/// Like [`simulate`], also appending every activated node to `out`.
pub(super) fn simulate_collect<R: RngCore>(
    graph: &Graph,
    seeds: &[NodeId],
    rng: &mut R,
    buf: &mut CascadeBuffers,
    out: &mut Vec<NodeId>,
) {
    simulate(graph, seeds, rng, buf);
    out.extend_from_slice(&buf.queue);
}

#[cfg(test)]
mod tests {
    use crate::{CascadeSimulator, Model};
    use sns_graph::{GraphBuilder, WeightModel};

    /// Single edge with weight w: under LT, P(activate) = P(λ ≤ w) = w,
    /// so E[spread from {0}] = 1 + w.
    #[test]
    fn single_edge_activation_probability() {
        let w = 0.3f32;
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, w);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::LinearThreshold);
        let runs = 40_000u64;
        let total: u64 = (0..runs).map(|i| sim.run(&[0], 21, i)).sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 1.3).abs() < 0.02, "mean {mean}, expected ~1.3");
    }

    /// Under weighted cascade (all in-weights sum to 1), seeding *all*
    /// in-neighbors of v guarantees v activates.
    #[test]
    fn full_in_neighborhood_forces_activation() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 3);
        b.add_arc(1, 3);
        b.add_arc(2, 3);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::LinearThreshold);
        for i in 0..50 {
            assert_eq!(sim.run(&[0, 1, 2], 4, i), 4);
        }
    }

    /// Two in-neighbors with weights 0.5 each: seeding one activates v
    /// with probability 0.5 (λ ≤ 0.5).
    #[test]
    fn partial_in_weight_partial_activation() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 2);
        b.add_arc(1, 2);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::LinearThreshold);
        let runs = 40_000u64;
        let total: u64 = (0..runs).map(|i| sim.run(&[0], 33, i)).sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}, expected ~1.5");
    }

    /// LT expected spread on a weighted-cascade line graph: each hop
    /// passes with probability equal to the edge weight 1 (single
    /// in-neighbor) — the whole line activates.
    #[test]
    fn weighted_cascade_line_fully_activates() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(2, 3);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        let mut sim = CascadeSimulator::new(&g, Model::LinearThreshold);
        for i in 0..20 {
            assert_eq!(sim.run(&[0], 8, i), 4);
        }
    }
}
