//! Forward cascade simulation under IC and LT.
//!
//! A [`CascadeSimulator`] owns reusable per-node scratch arrays
//! ([`CascadeBuffers`]) so consecutive simulations perform zero
//! allocations: activation marks use an epoch counter instead of clearing,
//! and the BFS queue is recycled.

mod ic;
mod lt;

use rand::RngCore;

use sns_graph::{Graph, NodeId};

use crate::rng::Xoshiro256pp;
use crate::Model;

/// Reusable scratch space for cascade simulation over a graph with `n`
/// nodes.
#[derive(Debug, Clone)]
pub struct CascadeBuffers {
    /// Epoch stamp marking active nodes (`active[v] == epoch`).
    pub(crate) active: Vec<u32>,
    /// Epoch stamp marking nodes whose LT threshold has been drawn.
    pub(crate) touched: Vec<u32>,
    /// Lazily drawn LT thresholds.
    pub(crate) threshold: Vec<f32>,
    /// Accumulated active in-weight per node (LT).
    pub(crate) incoming: Vec<f32>,
    /// BFS frontier queue.
    pub(crate) queue: Vec<NodeId>,
    /// Current epoch; bumped per simulation.
    pub(crate) epoch: u32,
}

impl CascadeBuffers {
    /// Allocates buffers for an `n`-node graph.
    pub fn new(n: u32) -> Self {
        let n = n as usize;
        CascadeBuffers {
            active: vec![0; n],
            touched: vec![0; n],
            threshold: vec![0.0; n],
            incoming: vec![0.0; n],
            queue: Vec::with_capacity(1024),
            epoch: 0,
        }
    }

    /// Advances the epoch, logically clearing all marks in O(1). On (the
    /// practically unreachable) wrap-around the arrays are hard-cleared.
    pub(crate) fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.active.fill(0);
            self.touched.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    pub(crate) fn is_active(&self, v: NodeId) -> bool {
        self.active[v as usize] == self.epoch
    }

    #[inline]
    pub(crate) fn activate(&mut self, v: NodeId) {
        self.active[v as usize] = self.epoch;
    }
}

/// Runs single forward cascades; see [`crate::SpreadEstimator`] for the
/// Monte Carlo average.
pub struct CascadeSimulator<'g> {
    graph: &'g Graph,
    model: Model,
    buffers: CascadeBuffers,
}

impl<'g> CascadeSimulator<'g> {
    /// Creates a simulator with fresh buffers.
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        CascadeSimulator { graph, model, buffers: CascadeBuffers::new(graph.num_nodes()) }
    }

    /// The diffusion model this simulator runs.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Runs one cascade from `seeds` using the RNG for logical sample
    /// `index` under `master_seed`, returning the number of activated
    /// nodes (seeds included). Duplicate seeds are counted once.
    pub fn run(&mut self, seeds: &[NodeId], master_seed: u64, index: u64) -> u64 {
        let mut rng = Xoshiro256pp::for_sample(master_seed, index);
        self.run_with_rng(seeds, &mut rng)
    }

    /// Runs one cascade with a caller-provided RNG.
    pub fn run_with_rng<R: RngCore>(&mut self, seeds: &[NodeId], rng: &mut R) -> u64 {
        self.buffers.next_epoch();
        match self.model {
            Model::IndependentCascade => ic::simulate(self.graph, seeds, rng, &mut self.buffers),
            Model::LinearThreshold => lt::simulate(self.graph, seeds, rng, &mut self.buffers),
        }
    }

    /// Runs one cascade and reports the set of activated nodes (for
    /// callers that need more than the count, e.g. targeted spread).
    pub fn run_collect<R: RngCore>(
        &mut self,
        seeds: &[NodeId],
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.buffers.next_epoch();
        match self.model {
            Model::IndependentCascade => {
                ic::simulate_collect(self.graph, seeds, rng, &mut self.buffers, out)
            }
            Model::LinearThreshold => {
                lt::simulate_collect(self.graph, seeds, rng, &mut self.buffers, out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_graph::{GraphBuilder, WeightModel};

    fn line(p: f32) -> Graph {
        // 0 -> 1 -> 2 -> 3, each with probability p
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, p);
        b.add_edge(1, 2, p);
        b.add_edge(2, 3, p);
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn deterministic_edges_activate_everything() {
        let g = line(1.0);
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let mut sim = CascadeSimulator::new(&g, model);
            for i in 0..20 {
                assert_eq!(sim.run(&[0], 7, i), 4, "{model}");
            }
        }
    }

    #[test]
    fn zero_probability_stops_at_seeds() {
        let g = line(0.0);
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let mut sim = CascadeSimulator::new(&g, model);
            assert_eq!(sim.run(&[0], 7, 0), 1, "{model}");
            assert_eq!(sim.run(&[0, 2], 7, 1), 2, "{model}");
        }
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = line(0.0);
        let mut sim = CascadeSimulator::new(&g, Model::IndependentCascade);
        assert_eq!(sim.run(&[1, 1, 1], 7, 0), 1);
    }

    #[test]
    fn collect_matches_count() {
        let g = line(1.0);
        let mut sim = CascadeSimulator::new(&g, Model::LinearThreshold);
        let mut out = Vec::new();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        use rand::SeedableRng;
        sim.run_collect(&[0], &mut rng, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn buffers_reused_across_runs() {
        // 200 runs on the same simulator must not interfere.
        let g = line(1.0);
        let mut sim = CascadeSimulator::new(&g, Model::IndependentCascade);
        for i in 0..200 {
            assert_eq!(sim.run(&[3], 9, i), 1); // sink node: nothing downstream
        }
    }
}
