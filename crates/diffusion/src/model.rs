//! The two propagation models of the paper (§2.1).

/// Diffusion model selector.
///
/// Both models run in discrete rounds from a seed set; once active, a node
/// stays active. They differ in how activation transfers across edges:
///
/// * **Independent Cascade (IC)** — when `u` activates it gets one chance
///   to activate each out-neighbor `v`, succeeding with probability
///   `w(u, v)` independently of everything else.
/// * **Linear Threshold (LT)** — each node `v` draws a uniform threshold
///   `λ_v ∈ [0,1]` once; `v` activates as soon as the total weight of its
///   active in-neighbors reaches `λ_v`. Requires `Σ_u w(u,v) ≤ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Independent Cascade.
    IndependentCascade,
    /// Linear Threshold.
    LinearThreshold,
}

impl Model {
    /// Short name used in reports ("IC" / "LT").
    pub fn short_name(&self) -> &'static str {
        match self {
            Model::IndependentCascade => "IC",
            Model::LinearThreshold => "LT",
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Model::IndependentCascade.to_string(), "IC");
        assert_eq!(Model::LinearThreshold.to_string(), "LT");
    }
}
