//! Root selection for RR-set sampling.
//!
//! Standard RIS picks the RR-set root uniformly from all nodes (Lemma 1:
//! `I(S) = n · Pr[S covers R]`). Targeted viral marketing (§7.3.1) uses
//! WRIS: the root is drawn proportional to per-node relevance weights
//! `b(v)`, giving `I_T(S) = Γ · Pr[S covers R]` with `Γ = Σ_v b(v)`.
//!
//! Two weighted implementations coexist: [`AliasTable`]-backed draws
//! (constant time, two-level indirection) and the [`BenefitTable`]
//! prefix-sum inverse CDF used by the benefit-weighted (CTVM) sampler —
//! a single binary search whose draw consumes exactly one `f64` from the
//! per-sample stream, which keeps the sample-index determinism contract
//! trivially auditable.

use std::sync::Arc;

use rand::{Rng, RngCore};

use sns_graph::{AliasTable, Graph, GraphError, NodeId};

/// Prefix-sum table for benefit-proportional root choice via inverse
/// CDF — the root sampler of cost-aware/benefit-weighted (CTVM-style)
/// viral marketing.
///
/// `prefix[v] = Σ_{u ≤ v} b(u)` is frozen at construction; a draw takes
/// one uniform `f64`, scales it by the total mass and binary-searches
/// the prefix array. Zero-benefit nodes occupy zero-length CDF segments
/// and are never returned. Each draw consumes **exactly one** `f64`
/// from the generator, so the per-sample-index streams of
/// [`crate::rng::Xoshiro256pp`] stay aligned with the uniform sampler's
/// accounting: sample `i` sees the same stream on any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct BenefitTable {
    /// Inclusive prefix sums of the benefits, strictly increasing at
    /// every positive-benefit node.
    prefix: Vec<f64>,
    /// Total benefit mass `Γ = Σ_v b(v)` (the last prefix entry).
    total: f64,
    /// Largest node id with positive benefit — the clamp target for the
    /// measure-zero case where `u · total` rounds up to `total`.
    last_positive: NodeId,
}

impl BenefitTable {
    /// Builds the table from per-node benefits `b(v) ≥ 0`.
    ///
    /// Returns [`GraphError::ZeroTotalWeight`] if the slice is empty or
    /// sums to zero, and [`GraphError::InvalidWeight`] if any benefit is
    /// negative or non-finite.
    pub fn new(benefits: &[f64]) -> Result<Self, GraphError> {
        let mut prefix = Vec::with_capacity(benefits.len());
        let mut total = 0.0f64;
        let mut last_positive: Option<NodeId> = None;
        for (i, &b) in benefits.iter().enumerate() {
            if !b.is_finite() || b < 0.0 {
                return Err(GraphError::InvalidWeight {
                    from: (i) as NodeId,
                    to: (i) as NodeId,
                    weight: (b) as f32,
                });
            }
            if b > 0.0 {
                last_positive = Some((i) as NodeId);
            }
            total += b;
            prefix.push(total);
        }
        let Some(last_positive) = last_positive else {
            return Err(GraphError::ZeroTotalWeight);
        };
        Ok(BenefitTable { prefix, total, last_positive })
    }

    /// Draws a node with probability proportional to its benefit, via
    /// inverse CDF: one uniform draw, one binary search.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> NodeId {
        let target = rng.gen::<f64>() * self.total;
        // First node whose prefix exceeds the target; zero-benefit nodes
        // share their predecessor's prefix and therefore never win.
        let idx = self.prefix.partition_point(|&p| p <= target);
        idx.min(self.last_positive as usize) as NodeId
    }

    /// Total benefit mass `Γ = Σ_v b(v)` (the estimator's normalizer).
    #[inline]
    pub fn total_benefit(&self) -> f64 {
        self.total
    }

    /// Number of nodes the table spans.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Whether the table is empty (never true for a successfully built
    /// table, provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// FNV-1a checksum over the exact f64 bits of the prefix sums. The
    /// prefix array determines the benefit vector (and vice versa, up to
    /// bit identity), so two tables agree iff they were built from
    /// bit-identical benefits — the content fingerprint the pool store
    /// records so a persisted benefit-weighted pool refuses to serve
    /// under a different vector, even one with the same total Γ.
    pub fn content_checksum(&self) -> u64 {
        let mut h = sns_graph::Fnv64::new();
        for &p in &self.prefix {
            h.write_u64(p.to_bits());
        }
        h.finish()
    }
}

/// Distribution of RR-set roots.
#[derive(Debug, Clone)]
pub enum RootDist {
    /// Uniform over all `n` nodes — plain RIS for influence maximization.
    Uniform,
    /// Proportional to node weights — WRIS for targeted viral marketing.
    /// Wrapped in [`Arc`] so cloning a sampler for another thread shares
    /// the table.
    Weighted(Arc<AliasTable>),
    /// Proportional to per-node benefits via the [`BenefitTable`]
    /// prefix-sum inverse CDF — the benefit-weighted (CTVM) sampler
    /// backing budgeted, cost-aware queries.
    Benefit(Arc<BenefitTable>),
}

impl RootDist {
    /// Builds a weighted distribution from per-node weights (length must
    /// equal the node count of the graph the sampler will run on).
    pub fn weighted(weights: &[f64]) -> Result<Self, GraphError> {
        Ok(RootDist::Weighted(Arc::new(AliasTable::new(weights)?)))
    }

    /// Builds a benefit-proportional distribution (prefix-sum inverse
    /// CDF) from per-node benefits (length must equal the node count of
    /// the graph the sampler will run on).
    pub fn benefit_weighted(benefits: &[f64]) -> Result<Self, GraphError> {
        Ok(RootDist::Benefit(Arc::new(BenefitTable::new(benefits)?)))
    }

    /// Draws a root.
    #[inline]
    pub fn sample<R: RngCore>(&self, n: u32, rng: &mut R) -> NodeId {
        match self {
            RootDist::Uniform => rng.gen_range(0..n),
            RootDist::Weighted(table) => table.sample(rng) as NodeId,
            RootDist::Benefit(table) => table.sample(rng),
        }
    }

    /// The universe mass Γ scaling coverage into influence: `n` for
    /// uniform RIS, `Σ_v b(v)` for the weighted samplers.
    #[inline]
    pub fn gamma(&self, graph: &Graph) -> f64 {
        match self {
            RootDist::Uniform => f64::from(graph.num_nodes()),
            RootDist::Weighted(table) => table.total_weight(),
            RootDist::Benefit(table) => table.total_benefit(),
        }
    }

    /// A content checksum of the weight/benefit vector behind this
    /// distribution, or `None` for the parameterless uniform case.
    /// Recorded in pool-store fingerprints: Γ alone cannot distinguish
    /// two different vectors with equal mass, this can (up to hash
    /// collision — it guards against operational mix-ups, not
    /// adversaries).
    pub fn content_checksum(&self) -> Option<u64> {
        match self {
            RootDist::Uniform => None,
            RootDist::Weighted(table) => Some(table.content_checksum()),
            RootDist::Benefit(table) => Some(table.content_checksum()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::SeedableRng;
    use sns_graph::{GraphBuilder, WeightModel};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.set_num_nodes(4);
        b.build(WeightModel::Constant(0.1)).unwrap()
    }

    #[test]
    fn uniform_gamma_is_n() {
        let g = tiny_graph();
        assert_eq!(RootDist::Uniform.gamma(&g), 4.0);
    }

    #[test]
    fn weighted_gamma_is_total_weight() {
        let g = tiny_graph();
        let d = RootDist::weighted(&[1.0, 2.0, 0.0, 1.0]).unwrap();
        assert_eq!(d.gamma(&g), 4.0);
    }

    #[test]
    fn weighted_sampling_respects_zeros() {
        let d = RootDist::weighted(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..500 {
            let v = d.sample(4, &mut rng);
            assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn uniform_sampling_covers_range() {
        let d = RootDist::Uniform;
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[d.sample(4, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_weights_rejected() {
        assert!(RootDist::weighted(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn benefit_table_rejects_degenerate_inputs() {
        assert!(matches!(BenefitTable::new(&[]), Err(sns_graph::GraphError::ZeroTotalWeight)));
        assert!(matches!(
            BenefitTable::new(&[0.0, 0.0]),
            Err(sns_graph::GraphError::ZeroTotalWeight)
        ));
        assert!(matches!(
            BenefitTable::new(&[1.0, -0.5]),
            Err(sns_graph::GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            BenefitTable::new(&[f64::NAN]),
            Err(sns_graph::GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn benefit_sampling_respects_zeros_and_mass() {
        let d = RootDist::benefit_weighted(&[0.0, 1.0, 0.0, 3.0]).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[d.sample(4, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        // 3:1 mass ratio within sampling noise
        let ratio = f64::from(counts[3]) / f64::from(counts[1]);
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio} off");
    }

    #[test]
    fn benefit_draws_are_per_sample_deterministic() {
        // One f64 per draw: replaying the same per-sample generator must
        // reproduce the root, independent of any other stream state.
        let d = RootDist::benefit_weighted(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        for idx in 0..50u64 {
            let a = d.sample(4, &mut Xoshiro256pp::for_sample(9, idx));
            let b = d.sample(4, &mut Xoshiro256pp::for_sample(9, idx));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn benefit_table_edges_are_clamped_to_positive_mass() {
        // Trailing zero-benefit node: even a draw landing at the very top
        // of the CDF must clamp to the last positive-benefit node.
        let t = BenefitTable::new(&[1.0, 2.0, 0.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.total_benefit() - 3.0).abs() < 1e-12);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..5_000 {
            assert!(t.sample(&mut rng) < 2);
        }
    }

    #[test]
    fn benefit_gamma_is_total_benefit() {
        let g = tiny_graph();
        let d = RootDist::benefit_weighted(&[1.0, 2.0, 0.0, 1.0]).unwrap();
        assert_eq!(d.gamma(&g), 4.0);
    }
}
