//! Root selection for RR-set sampling.
//!
//! Standard RIS picks the RR-set root uniformly from all nodes (Lemma 1:
//! `I(S) = n · Pr[S covers R]`). Targeted viral marketing (§7.3.1) uses
//! WRIS: the root is drawn proportional to per-node relevance weights
//! `b(v)`, giving `I_T(S) = Γ · Pr[S covers R]` with `Γ = Σ_v b(v)`.

use std::sync::Arc;

use rand::{Rng, RngCore};

use sns_graph::{AliasTable, Graph, GraphError, NodeId};

/// Distribution of RR-set roots.
#[derive(Debug, Clone)]
pub enum RootDist {
    /// Uniform over all `n` nodes — plain RIS for influence maximization.
    Uniform,
    /// Proportional to node weights — WRIS for targeted viral marketing.
    /// Wrapped in [`Arc`] so cloning a sampler for another thread shares
    /// the table.
    Weighted(Arc<AliasTable>),
}

impl RootDist {
    /// Builds a weighted distribution from per-node weights (length must
    /// equal the node count of the graph the sampler will run on).
    pub fn weighted(weights: &[f64]) -> Result<Self, GraphError> {
        Ok(RootDist::Weighted(Arc::new(AliasTable::new(weights)?)))
    }

    /// Draws a root.
    #[inline]
    pub fn sample<R: RngCore>(&self, n: u32, rng: &mut R) -> NodeId {
        match self {
            RootDist::Uniform => rng.gen_range(0..n),
            RootDist::Weighted(table) => table.sample(rng) as NodeId,
        }
    }

    /// The universe mass Γ scaling coverage into influence: `n` for
    /// uniform RIS, `Σ_v b(v)` for WRIS.
    #[inline]
    pub fn gamma(&self, graph: &Graph) -> f64 {
        match self {
            RootDist::Uniform => f64::from(graph.num_nodes()),
            RootDist::Weighted(table) => table.total_weight(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;
    use rand::SeedableRng;
    use sns_graph::{GraphBuilder, WeightModel};

    fn tiny_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.set_num_nodes(4);
        b.build(WeightModel::Constant(0.1)).unwrap()
    }

    #[test]
    fn uniform_gamma_is_n() {
        let g = tiny_graph();
        assert_eq!(RootDist::Uniform.gamma(&g), 4.0);
    }

    #[test]
    fn weighted_gamma_is_total_weight() {
        let g = tiny_graph();
        let d = RootDist::weighted(&[1.0, 2.0, 0.0, 1.0]).unwrap();
        assert_eq!(d.gamma(&g), 4.0);
    }

    #[test]
    fn weighted_sampling_respects_zeros() {
        let d = RootDist::weighted(&[0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..500 {
            let v = d.sample(4, &mut rng);
            assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn uniform_sampling_covers_range() {
        let d = RootDist::Uniform;
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[d.sample(4, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_weights_rejected() {
        assert!(RootDist::weighted(&[0.0, 0.0]).is_err());
    }
}
