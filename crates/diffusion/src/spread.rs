//! Monte Carlo influence-spread estimation.
//!
//! `I(S)` is a #P-hard expectation (Chen et al.); every evaluation number
//! in the paper's Figures 2–3 is a sample mean over forward cascades. The
//! estimator here is embarrassingly parallel and — because each simulation
//! index owns its RNG stream — returns bit-identical results for any
//! thread count.

use sns_graph::{Graph, NodeId};

use crate::forward::CascadeSimulator;
use crate::Model;

/// Monte Carlo estimator of the influence spread `I(S)`.
pub struct SpreadEstimator<'g> {
    graph: &'g Graph,
    model: Model,
    threads: usize,
}

impl<'g> SpreadEstimator<'g> {
    /// Creates an estimator that uses all available parallelism.
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        SpreadEstimator { graph, model, threads }
    }

    /// Overrides the worker-thread count (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Estimates `I(seeds)` as the mean activated-node count over
    /// `simulations` cascades (deterministic in `master_seed`).
    pub fn estimate(&self, seeds: &[NodeId], simulations: u64, master_seed: u64) -> f64 {
        if simulations == 0 || seeds.is_empty() {
            return if seeds.is_empty() { 0.0 } else { seeds.len() as f64 };
        }
        let total = if self.threads <= 1 || simulations < 64 {
            self.run_range(seeds, master_seed, 0, simulations)
        } else {
            self.run_parallel(seeds, simulations, master_seed)
        };
        total as f64 / simulations as f64
    }

    fn run_range(&self, seeds: &[NodeId], master_seed: u64, start: u64, end: u64) -> u64 {
        let mut sim = CascadeSimulator::new(self.graph, self.model);
        (start..end).map(|i| sim.run(seeds, master_seed, i)).sum()
    }

    fn run_parallel(&self, seeds: &[NodeId], simulations: u64, master_seed: u64) -> u64 {
        let workers = self.threads.min(simulations as usize).max(1);
        let chunk = simulations.div_ceil(workers as u64);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(simulations);
                    scope.spawn(move || {
                        if start >= end {
                            0
                        } else {
                            self.run_range(seeds, master_seed, start, end)
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("spread worker panicked")).sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_graph::{GraphBuilder, WeightModel};

    fn fanout(p: f32, leaves: u32) -> Graph {
        let mut b = GraphBuilder::new();
        for v in 1..=leaves {
            b.add_edge(0, v, p);
        }
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let g = fanout(0.5, 50);
        let seq = SpreadEstimator::new(&g, Model::IndependentCascade).with_threads(1).estimate(
            &[0],
            2000,
            7,
        );
        let par = SpreadEstimator::new(&g, Model::IndependentCascade).with_threads(8).estimate(
            &[0],
            2000,
            7,
        );
        assert_eq!(seq, par, "per-index RNG must make threading invisible");
    }

    #[test]
    fn converges_to_closed_form() {
        let g = fanout(0.2, 100);
        let est = SpreadEstimator::new(&g, Model::IndependentCascade).estimate(&[0], 30_000, 3);
        // E = 1 + 100 * 0.2 = 21
        assert!((est - 21.0).abs() < 0.5, "estimate {est}");
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let g = fanout(0.5, 5);
        let est = SpreadEstimator::new(&g, Model::LinearThreshold).estimate(&[], 100, 1);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn zero_simulations_defensible() {
        let g = fanout(0.5, 5);
        let est = SpreadEstimator::new(&g, Model::LinearThreshold).estimate(&[0], 0, 1);
        assert_eq!(est, 1.0); // seeds are always active
    }

    #[test]
    fn spread_monotone_in_seed_count() {
        let g = fanout(0.3, 30);
        let e = SpreadEstimator::new(&g, Model::IndependentCascade);
        let one = e.estimate(&[1], 4000, 5);
        let two = e.estimate(&[1, 2, 3], 4000, 5);
        assert!(two > one);
    }
}
