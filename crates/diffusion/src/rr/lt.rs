//! LT reverse reachable set growth: reverse random walk.

use rand::{Rng, RngCore};

use sns_graph::{Graph, NodeId};

/// Grows the RR set from `root` by the LT reverse walk: at the current
/// node `v`, pick in-neighbor `u` with probability `w(u, v)` and stop with
/// the residual probability `1 − Σ_u w(u, v)`; the walk also stops when it
/// would revisit a node (a cycle in the live-edge graph cannot extend the
/// reachable set).
///
/// This is the standard LT live-edge equivalence (Chen et al.): each node
/// selects at most one live in-edge, so reverse reachability is a path.
///
/// `out` already contains the root; returns the number of walk steps
/// (each step resolves one live-edge decision).
pub(super) fn grow<R: RngCore>(
    graph: &Graph,
    root: NodeId,
    rng: &mut R,
    visited: &mut [u32],
    epoch: u32,
    out: &mut Vec<NodeId>,
) -> u64 {
    let mut steps = 0u64;
    let mut current = root;
    loop {
        steps += 1;
        match graph.sample_in_neighbor_lt(current, rng.gen::<f32>()) {
            None => break,
            Some(u) => {
                if visited[u as usize] == epoch {
                    break;
                }
                visited[u as usize] = epoch;
                out.push(u);
                current = u;
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use crate::{Model, RrSampler};
    use sns_graph::{GraphBuilder, WeightModel};

    /// Under weighted cascade a node with one in-neighbor continues the
    /// walk with probability 1 — on a cycle the RR set is the whole cycle
    /// (walk stops on revisit).
    #[test]
    fn cycle_walk_collects_cycle() {
        let mut b = GraphBuilder::new();
        b.add_arc(0, 1);
        b.add_arc(1, 2);
        b.add_arc(2, 0);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        let mut s = RrSampler::new(&g, Model::LinearThreshold);
        let mut rr = Vec::new();
        for i in 0..60 {
            s.sample(i, &mut rr);
            let mut sorted = rr.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    /// With in-weight 0.5 the walk continues with probability 1/2 per
    /// step: RR size follows Geometric(1/2) starting at 1 on a long line,
    /// so the mean size is 2.
    #[test]
    fn geometric_walk_length() {
        let n = 2000u32;
        let mut b = GraphBuilder::new();
        for v in 1..n {
            b.add_edge(v - 1, v, 0.5);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let mut s = RrSampler::new(&g, Model::LinearThreshold);
        let mut rr = Vec::new();
        let mut sizes = 0u64;
        let samples = 30_000u64;
        for i in 0..samples {
            s.sample(i, &mut rr);
            sizes += rr.len() as u64;
        }
        let mean = sizes as f64 / samples as f64;
        // Roots near the line start truncate the geometric slightly; with
        // n = 2000 the truncation effect is negligible.
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}, expected ~2");
    }

    /// The walk picks exactly one in-neighbor: RR sets under LT are paths,
    /// so their size is bounded by the walk length, never branching.
    #[test]
    fn walk_never_branches() {
        let mut b = GraphBuilder::new();
        // node 3 has three in-neighbors with total weight 1
        b.add_arc(0, 3);
        b.add_arc(1, 3);
        b.add_arc(2, 3);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        let mut s = RrSampler::new(&g, Model::LinearThreshold);
        let mut rr = Vec::new();
        for i in 0..100 {
            let meta = s.sample(i, &mut rr);
            if meta.root == 3 {
                assert_eq!(rr.len(), 2, "root + exactly one in-neighbor");
            } else {
                assert_eq!(rr.len(), 1);
            }
        }
    }
}
