//! IC reverse reachable set growth: reverse BFS over live in-edges.

use rand::{Rng, RngCore};

use sns_graph::{Graph, NodeId};

/// Grows the RR set from `root` by reverse BFS. Each in-edge `(u, v)` of a
/// reached node `v` is live independently with probability `w(u, v)` —
/// the deferred-decision equivalent of sampling the whole live-edge graph
/// upfront (Borgs et al., SODA'14).
///
/// `out` already contains the root; returns the number of in-edges
/// examined.
pub(super) fn grow<R: RngCore>(
    graph: &Graph,
    root: NodeId,
    rng: &mut R,
    visited: &mut [u32],
    epoch: u32,
    queue: &mut Vec<NodeId>,
    out: &mut Vec<NodeId>,
) -> u64 {
    let mut edges = 0u64;
    queue.push(root);
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        edges += u64::from(graph.in_degree(v));
        for (u, w) in graph.in_edges(v) {
            if visited[u as usize] != epoch && rng.gen::<f32>() < w {
                visited[u as usize] = epoch;
                queue.push(u);
                out.push(u);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use crate::{Model, RrSampler};
    use sns_graph::{GraphBuilder, WeightModel};

    /// On a reversed star (all leaves point at the hub) with p = 0.5, an
    /// RR set rooted at the hub contains each leaf independently with
    /// probability 0.5.
    #[test]
    fn leaf_inclusion_probability() {
        let leaves = 40u32;
        let mut b = GraphBuilder::new();
        for u in 1..=leaves {
            b.add_edge(u, 0, 0.5);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let mut s = RrSampler::new(&g, Model::IndependentCascade);
        let mut rr = Vec::new();
        let mut size_sum = 0u64;
        let mut hub_rooted = 0u64;
        for i in 0..40_000u64 {
            let meta = s.sample(i, &mut rr);
            if meta.root == 0 {
                hub_rooted += 1;
                size_sum += rr.len() as u64;
            } else {
                // leaves have no in-edges: singleton RR set
                assert_eq!(rr.len(), 1);
            }
        }
        let mean = size_sum as f64 / hub_rooted as f64;
        // 1 (root) + 40 * 0.5 = 21
        assert!((mean - 21.0).abs() < 0.4, "mean RR size {mean}, expected ~21");
    }

    /// Edges-examined accounting: the hub's RR set always examines the
    /// hub's in-edges plus the in-edges of every included leaf (0 each).
    #[test]
    fn edge_examination_counts() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 0, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.build(WeightModel::Provided).unwrap();
        let mut s = RrSampler::new(&g, Model::IndependentCascade);
        let mut rr = Vec::new();
        for i in 0..50 {
            let meta = s.sample(i, &mut rr);
            if meta.root == 0 {
                assert_eq!(meta.edges_examined, 2);
                assert_eq!(rr.len(), 3);
            } else {
                assert_eq!(meta.edges_examined, 0);
            }
        }
    }
}
