//! Property-based tests for the diffusion layer, centred on the paper's
//! Lemma 1 — the identity every RIS algorithm stands on:
//!
//! ```text
//! I(S) = n · Pr[S ∩ R ≠ ∅]       (uniform-root RR sets)
//! ```

use proptest::collection::vec;
use proptest::prelude::*;

use sns_diffusion::{CascadeSimulator, Model, RrSampler, SpreadEstimator};
use sns_graph::{Graph, GraphBuilder, WeightModel};

const N: u32 = 8;

/// Arbitrary small weighted digraph over 8 nodes.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    vec(((0u32..N, 0u32..N), 0.05f32..=1.0), 1..20).prop_map(|edges| {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(N);
        for ((u, v), w) in edges {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        b.normalize_for_lt(true);
        b.build(WeightModel::Provided).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lemma 1: RR-coverage probability times n equals the forward
    /// influence, for every node, under both models.
    #[test]
    fn lemma1_holds_on_random_graphs(g in graph_strategy(), node in 0u32..N, seed in 0u64..50) {
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let samples = 40_000u64;
            let mut sampler = RrSampler::with_config(
                &g, model, sns_diffusion::RootDist::Uniform, seed);
            let mut rr = Vec::new();
            let mut hits = 0u64;
            for i in 0..samples {
                sampler.sample(i, &mut rr);
                if rr.contains(&node) {
                    hits += 1;
                }
            }
            let via_rr = f64::from(N) * hits as f64 / samples as f64;
            let via_fwd = SpreadEstimator::new(&g, model)
                .with_threads(1)
                .estimate(&[node], samples, seed ^ 0xABCD);
            // both are Monte Carlo with ~1/sqrt(40k) noise on means in [1, 8]
            prop_assert!(
                (via_rr - via_fwd).abs() < 0.12,
                "{model}: RR {via_rr:.3} vs forward {via_fwd:.3} for node {node}"
            );
        }
    }

    /// Spread is monotone under seed-set inclusion (submodular monotone
    /// objective), measured with common random numbers.
    #[test]
    fn spread_monotone_under_inclusion(g in graph_strategy(), a in 0u32..N, b in 0u32..N) {
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let est = SpreadEstimator::new(&g, model).with_threads(1);
            let single = est.estimate(&[a], 4000, 7);
            let pair = est.estimate(&[a, b], 4000, 7);
            prop_assert!(pair >= single - 1e-9, "{model}: adding {b} decreased spread");
        }
    }

    /// Cascades never activate more nodes than exist and always include
    /// the seeds.
    #[test]
    fn cascade_size_bounds(g in graph_strategy(), seeds in vec(0u32..N, 1..4), idx in 0u64..100) {
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let mut sim = CascadeSimulator::new(&g, model);
            let size = sim.run(&seeds, 3, idx);
            let mut unique = seeds.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert!(size >= unique.len() as u64);
            prop_assert!(size <= u64::from(N));
        }
    }

    /// RR sets only ever contain ancestors of the root: removing all
    /// edges ending anywhere near the root yields singletons.
    #[test]
    fn rr_sets_are_ancestor_sets(g in graph_strategy(), idx in 0u64..200) {
        for model in [Model::IndependentCascade, Model::LinearThreshold] {
            let mut sampler = RrSampler::new(&g, model);
            let mut rr = Vec::new();
            let meta = sampler.sample(idx, &mut rr);
            // every non-root member must have a path to the root in the
            // full graph (necessary condition of reverse reachability)
            let reachable = reverse_closure(&g, meta.root);
            for &v in &rr {
                prop_assert!(
                    reachable[v as usize],
                    "{model}: node {v} in RR set of {} but cannot reach it",
                    meta.root
                );
            }
        }
    }
}

/// Nodes with any directed path to `root`.
fn reverse_closure(g: &Graph, root: u32) -> Vec<bool> {
    let mut seen = vec![false; g.num_nodes() as usize];
    let mut stack = vec![root];
    seen[root as usize] = true;
    while let Some(v) = stack.pop() {
        for &u in g.in_neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                stack.push(u);
            }
        }
    }
    seen
}
