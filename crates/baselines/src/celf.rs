//! Simulation-based greedy baselines: plain Monte Carlo greedy (Kempe,
//! Kleinberg, Tardos — KDD'03), CELF (Leskovec et al. — KDD'07) and
//! CELF++ (Goyal, Lu, Lakshmanan — WWW'11).
//!
//! All three repeatedly add the node with the largest marginal spread
//! gain, with the spread oracle `σ(S)` evaluated by forward Monte Carlo
//! simulation. CELF exploits submodularity to skip re-evaluations (the
//! classic "lazy forward" trick, up to 700× over plain greedy); CELF++
//! additionally caches `σ(S ∪ {prev_best} ∪ {u})` so that when the
//! iteration's front-runner actually wins, queued nodes reuse their
//! cached gain without a new simulation batch.
//!
//! These algorithms are exponentially slower than RIS methods on large
//! graphs — the paper reports CELF++ 2·10⁹× slower than D-SSA on
//! Twitter — so [`Celf::with_timeout`] implements the paper's per-run
//! time limit: on expiry the partially built seed set is padded with the
//! best currently-queued candidates and the result is flagged.
//!
//! Statistics note: these baselines sample cascades, not RR sets, so
//! `RunResult::rr_sets_main == 0` and `total_edges_examined` counts
//! **forward simulations** instead.

// Sanctioned wall-clock reads: runtime stats plus the paper's per-run CELF
// timeout (lint-allow.toml carries the same exemptions for sns-lint).
#![allow(clippy::disallowed_methods)]

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use sns_core::bounds::certificate::StopCondition;
use sns_core::{CoreError, RunResult, SamplingContext};
use sns_diffusion::SpreadEstimator;
use sns_graph::NodeId;

/// Max-heap entry ordered by gain, tie-broken by node id (largest first,
/// matching the `(gain, id)` order of the RIS greedy in
/// `sns_rrset::CoverageView::select` — these baselines sample cascades
/// rather than RR sets, so they are the one greedy family that does *not*
/// run on the CSR-transposed coverage view, but keeping the tie-break
/// aligned keeps seed sets comparable across the two families on ties).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    gain: f64,
    node: NodeId,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain.total_cmp(&other.gain).then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared configuration of the simulation-greedy family.
#[derive(Debug, Clone)]
struct GreedyConfig {
    k: usize,
    simulations: u64,
    timeout: Option<Duration>,
}

impl GreedyConfig {
    fn new(k: usize) -> Self {
        GreedyConfig { k, simulations: 10_000, timeout: None }
    }
}

/// CELF: greedy with lazy marginal-gain re-evaluation.
#[derive(Debug, Clone)]
pub struct Celf {
    config: GreedyConfig,
}

/// CELF++: CELF plus the `prev_best`/`mg2` caching of Goyal et al.
#[derive(Debug, Clone)]
pub struct CelfPlusPlus {
    config: GreedyConfig,
}

macro_rules! shared_builders {
    ($t:ty) => {
        impl $t {
            /// Creates the algorithm for a budget of `k` seeds with the
            /// literature-standard 10 000 simulations per estimate.
            pub fn new(k: usize) -> Self {
                Self { config: GreedyConfig::new(k) }
            }

            /// Sets the Monte Carlo simulations per spread estimate.
            pub fn with_simulations(mut self, simulations: u64) -> Self {
                self.config.simulations = simulations.max(1);
                self
            }

            /// Sets a wall-clock budget (the paper limits every algorithm
            /// run to 24 hours; CELF++ is the only one that ever hits it).
            pub fn with_timeout(mut self, timeout: Duration) -> Self {
                self.config.timeout = Some(timeout);
                self
            }
        }
    };
}

shared_builders!(Celf);
shared_builders!(CelfPlusPlus);

/// Spread oracle with common random numbers: evaluating every candidate
/// on the same simulation seed makes marginal-gain comparisons consistent
/// and keeps the whole run deterministic.
struct Oracle<'g, 'c> {
    estimator: SpreadEstimator<'g>,
    ctx: &'c SamplingContext<'g>,
    simulations: u64,
    evals: u64,
}

impl<'g, 'c> Oracle<'g, 'c> {
    fn new(ctx: &'c SamplingContext<'g>, simulations: u64) -> Self {
        let estimator = SpreadEstimator::new(ctx.graph(), ctx.model()).with_threads(ctx.threads());
        Oracle { estimator, ctx, simulations, evals: 0 }
    }

    fn sigma(&mut self, seeds: &[NodeId]) -> f64 {
        self.evals += 1;
        self.estimator.estimate(seeds, self.simulations, self.ctx.stream_seed(0xCE1F))
    }

    fn simulations_run(&self) -> u64 {
        self.evals * self.simulations
    }
}

impl Celf {
    /// Runs CELF and returns the seed set with run statistics.
    pub fn run(&self, ctx: &SamplingContext<'_>) -> Result<RunResult, CoreError> {
        let start = Instant::now();
        let deadline = self.config.timeout.map(|t| start + t);
        let n = ctx.graph().num_nodes();
        let k = self.config.k.min(n as usize);
        let mut oracle = Oracle::new(ctx, self.config.simulations);

        // Initial pass: σ({u}) for every node.
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n as usize);
        let mut flag = vec![0usize; n as usize];
        let mut timed_out = false;
        for u in 0..n {
            if expired(deadline) {
                timed_out = true;
                // unevaluated nodes enter with an optimistic gain of n
                heap.push(Entry { gain: f64::from(n), node: u });
                continue;
            }
            heap.push(Entry { gain: oracle.sigma(&[u]), node: u });
        }

        let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
        let mut sigma_s = 0.0f64;
        let mut seed_buf: Vec<NodeId> = Vec::with_capacity(k + 1);
        while seeds.len() < k {
            let Some(top) = heap.pop() else { break };
            if timed_out || expired(deadline) {
                timed_out = true;
                // pad with the best currently queued candidates
                seeds.push(top.node);
                continue;
            }
            if flag[top.node as usize] == seeds.len() {
                seeds.push(top.node);
                sigma_s += top.gain;
            } else {
                seed_buf.clear();
                seed_buf.extend_from_slice(&seeds);
                seed_buf.push(top.node);
                let gain = oracle.sigma(&seed_buf) - sigma_s;
                flag[top.node as usize] = seeds.len();
                heap.push(Entry { gain, node: top.node });
            }
        }

        Ok(build_result(seeds, sigma_s, seeds_len_rounds(k), timed_out, start, &oracle))
    }
}

impl CelfPlusPlus {
    /// Runs CELF++ and returns the seed set with run statistics.
    pub fn run(&self, ctx: &SamplingContext<'_>) -> Result<RunResult, CoreError> {
        let start = Instant::now();
        let deadline = self.config.timeout.map(|t| start + t);
        let n = ctx.graph().num_nodes();
        let k = self.config.k.min(n as usize);
        let mut oracle = Oracle::new(ctx, self.config.simulations);

        const NONE: u32 = u32::MAX;
        let mut mg2 = vec![0.0f64; n as usize]; // σ gain w.r.t. S ∪ {prev_best}
        let mut prev_best = vec![NONE; n as usize];
        let mut flag = vec![0usize; n as usize];
        let mut timed_out = false;

        // Initial pass, tracking the running front-runner so mg2 can be
        // seeded without extra simulations beyond σ({u, cur_best}).
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n as usize);
        let mut cur_best: Option<(f64, NodeId)> = None;
        for u in 0..n {
            if expired(deadline) {
                timed_out = true;
                heap.push(Entry { gain: f64::from(n), node: u });
                continue;
            }
            let g1 = oracle.sigma(&[u]);
            if let Some((_, b)) = cur_best {
                let joint = oracle.sigma(&[u, b]);
                let sigma_b = cur_best.unwrap().0;
                mg2[u as usize] = joint - sigma_b;
                prev_best[u as usize] = b;
            } else {
                mg2[u as usize] = g1;
            }
            if cur_best.is_none_or(|(g, _)| g1 > g) {
                cur_best = Some((g1, u));
            }
            heap.push(Entry { gain: g1, node: u });
        }

        let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
        let mut sigma_s = 0.0f64;
        let mut last_seed = NONE;
        // σ(S ∪ {cur_best}) cache for the current round, keyed by node.
        let mut cur_best_round: Option<(f64, NodeId)> = None; // (mg1, node)
        let mut sigma_s_curbest: Option<(NodeId, f64)> = None;
        let mut seed_buf: Vec<NodeId> = Vec::with_capacity(k + 2);

        while seeds.len() < k {
            let Some(top) = heap.pop() else { break };
            let u = top.node;
            if timed_out || expired(deadline) {
                timed_out = true;
                seeds.push(u);
                continue;
            }
            if flag[u as usize] == seeds.len() {
                seeds.push(u);
                sigma_s += top.gain;
                last_seed = u;
                cur_best_round = None;
                sigma_s_curbest = None;
                continue;
            }
            let gain = if prev_best[u as usize] == last_seed && last_seed != NONE {
                // The cached mg2 was computed against exactly this S.
                mg2[u as usize]
            } else {
                seed_buf.clear();
                seed_buf.extend_from_slice(&seeds);
                seed_buf.push(u);
                let g1 = oracle.sigma(&seed_buf) - sigma_s;
                if let Some((_, b)) = cur_best_round {
                    // Cache σ(S ∪ {b}) once per round.
                    let base = match sigma_s_curbest {
                        Some((node, v)) if node == b => v,
                        _ => {
                            seed_buf.clear();
                            seed_buf.extend_from_slice(&seeds);
                            seed_buf.push(b);
                            let v = oracle.sigma(&seed_buf);
                            sigma_s_curbest = Some((b, v));
                            v
                        }
                    };
                    seed_buf.clear();
                    seed_buf.extend_from_slice(&seeds);
                    seed_buf.push(b);
                    seed_buf.push(u);
                    mg2[u as usize] = oracle.sigma(&seed_buf) - base;
                    prev_best[u as usize] = b;
                } else {
                    mg2[u as usize] = g1;
                    prev_best[u as usize] = NONE;
                }
                g1
            };
            flag[u as usize] = seeds.len();
            if cur_best_round.is_none_or(|(g, _)| gain > g) {
                cur_best_round = Some((gain, u));
            }
            heap.push(Entry { gain, node: u });
        }

        Ok(build_result(seeds, sigma_s, seeds_len_rounds(k), timed_out, start, &oracle))
    }
}

/// Plain Kempe-Kleinberg-Tardos greedy: re-evaluates every remaining node
/// each round. `O(n·k)` oracle calls — the exact reference for tiny
/// instances and the baseline CELF's 700× speedup is measured against.
pub fn monte_carlo_greedy(
    ctx: &SamplingContext<'_>,
    k: usize,
    simulations: u64,
) -> Result<RunResult, CoreError> {
    let start = Instant::now();
    let n = ctx.graph().num_nodes();
    let k = k.min(n as usize);
    let mut oracle = Oracle::new(ctx, simulations);
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut in_s = vec![false; n as usize];
    let mut sigma_s = 0.0f64;
    let mut buf = Vec::with_capacity(k + 1);
    for _ in 0..k {
        let mut best: Option<(f64, NodeId)> = None;
        for u in 0..n {
            if in_s[u as usize] {
                continue;
            }
            buf.clear();
            buf.extend_from_slice(&seeds);
            buf.push(u);
            let gain = oracle.sigma(&buf) - sigma_s;
            if best.is_none_or(|(g, b)| (gain, u) > (g, b)) {
                best = Some((gain, u));
            }
        }
        let Some((gain, u)) = best else { break };
        seeds.push(u);
        in_s[u as usize] = true;
        sigma_s += gain;
    }
    Ok(build_result(seeds, sigma_s, seeds_len_rounds(k), false, start, &oracle))
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn seeds_len_rounds(k: usize) -> u32 {
    sns_rrset::narrow::node_count(k)
}

fn build_result(
    seeds: Vec<NodeId>,
    sigma_s: f64,
    iterations: u32,
    timed_out: bool,
    start: Instant,
    oracle: &Oracle<'_, '_>,
) -> RunResult {
    RunResult {
        seeds,
        influence_estimate: sigma_s,
        rr_sets_main: 0,
        rr_sets_verify: 0,
        iterations,
        hit_cap: timed_out,
        stopping_rule: None,
        binding: if timed_out { StopCondition::Cap } else { StopCondition::Schedule },
        wall_time: start.elapsed(),
        peak_pool_bytes: 0,
        total_edges_examined: oracle.simulations_run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::{Params, SamplingContext};
    use sns_diffusion::Model;
    use sns_graph::{gen, Graph, GraphBuilder, WeightModel};

    fn two_stars() -> Graph {
        // node 0 -> 20 leaves (p=1), node 1 -> 10 leaves (p=1), disjoint
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            b.add_edge(0, 2 + i, 1.0);
        }
        for i in 0..10 {
            b.add_edge(1, 22 + i, 1.0);
        }
        b.build(WeightModel::Provided).unwrap()
    }

    #[test]
    fn celf_selects_both_hubs() {
        let g = two_stars();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(3);
        let r = Celf::new(2).with_simulations(200).run(&ctx).unwrap();
        let mut s = r.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
        assert!((r.influence_estimate - 32.0).abs() < 0.5);
        assert!(!r.hit_cap);
    }

    #[test]
    fn celfpp_selects_both_hubs() {
        let g = two_stars();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(3);
        let r = CelfPlusPlus::new(2).with_simulations(200).run(&ctx).unwrap();
        let mut s = r.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn plain_greedy_matches_celf_on_small_graph() {
        let g = gen::erdos_renyi(40, 200, 9).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(5);
        let a = monte_carlo_greedy(&ctx, 3, 400).unwrap();
        let b = Celf::new(3).with_simulations(400).run(&ctx).unwrap();
        // identical oracle (common random numbers) => identical greedy path
        assert_eq!(a.seeds, b.seeds);
        let c = CelfPlusPlus::new(3).with_simulations(400).run(&ctx).unwrap();
        assert_eq!(a.seeds, c.seeds);
    }

    #[test]
    fn celf_uses_fewer_evals_than_plain_greedy() {
        let g = gen::erdos_renyi(60, 300, 9).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(5);
        let plain = monte_carlo_greedy(&ctx, 4, 100).unwrap();
        let celf = Celf::new(4).with_simulations(100).run(&ctx).unwrap();
        assert!(
            celf.total_edges_examined < plain.total_edges_examined,
            "CELF {} sims vs plain {}",
            celf.total_edges_examined,
            plain.total_edges_examined
        );
    }

    #[test]
    fn timeout_returns_padded_result() {
        let g = gen::erdos_renyi(500, 3000, 2).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
        let r = Celf::new(5)
            .with_simulations(100_000)
            .with_timeout(Duration::from_millis(30))
            .run(&ctx)
            .unwrap();
        assert_eq!(r.seeds.len(), 5, "padded to k");
        assert!(r.hit_cap, "timeout must be flagged");
    }

    #[test]
    fn agrees_with_ris_methods_on_seed_quality() {
        let g = gen::rmat(300, 1800, gen::RmatParams::GRAPH500, 5)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(7);
        let celf = Celf::new(3).with_simulations(2_000).run(&ctx).unwrap();
        let dssa = sns_core::Dssa::new(Params::new(3, 0.3, 0.1).unwrap()).run(&ctx).unwrap();
        let est = SpreadEstimator::new(&g, Model::IndependentCascade);
        let sc = est.estimate(&celf.seeds, 20_000, 42);
        let sd = est.estimate(&dssa.seeds, 20_000, 42);
        assert!((sc - sd).abs() / sc.max(sd) < 0.15, "CELF {sc:.1} vs D-SSA {sd:.1}");
    }
}
