//! Guarantee-free heuristic baselines.
//!
//! The paper's related-work section contrasts RIS methods with "ad-hoc
//! heuristics without performance guarantees" — the two classics are
//! seeding by out-degree and seeding at random. They are included both as
//! evaluation floors (any algorithm with a guarantee must beat random,
//! and usually beats degree) and because they are the natural "no
//! algorithm" answer a practitioner would reach for.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use sns_graph::{Graph, NodeId};

/// The `k` nodes of highest out-degree (ties broken toward smaller ids,
/// deterministically).
pub fn top_degree_seeds(graph: &Graph, k: usize) -> Vec<NodeId> {
    let k = k.min(graph.num_nodes() as usize);
    let mut nodes: Vec<NodeId> = (0..graph.num_nodes()).collect();
    nodes.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    nodes.truncate(k);
    nodes
}

/// `k` uniformly random distinct nodes (deterministic in `seed`).
pub fn random_seeds(graph: &Graph, k: usize, seed: u64) -> Vec<NodeId> {
    let k = k.min(graph.num_nodes() as usize);
    let mut nodes: Vec<NodeId> = (0..graph.num_nodes()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::{Params, SamplingContext};
    use sns_diffusion::{Model, SpreadEstimator};
    use sns_graph::{gen, GraphBuilder, WeightModel};

    #[test]
    fn top_degree_finds_hubs() {
        let mut b = GraphBuilder::new();
        for v in 1..10 {
            b.add_arc(0, v);
        }
        b.add_arc(5, 6);
        b.add_arc(5, 7);
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        assert_eq!(top_degree_seeds(&g, 2), vec![0, 5]);
        assert_eq!(top_degree_seeds(&g, 100).len(), 10);
    }

    #[test]
    fn random_seeds_distinct_and_deterministic() {
        let g = gen::erdos_renyi(100, 500, 1).build(WeightModel::WeightedCascade).unwrap();
        let a = random_seeds(&g, 10, 7);
        let b = random_seeds(&g, 10, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert_ne!(a, random_seeds(&g, 10, 8));
    }

    /// The guarantee hierarchy the paper assumes implicitly:
    /// D-SSA ≥ top-degree ≥ random in spread on skewed graphs.
    #[test]
    fn guarantee_beats_heuristics() {
        let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 4)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let k = 20;
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(2);
        let dssa = sns_core::Dssa::new(Params::new(k, 0.2, 0.05).unwrap()).run(&ctx).unwrap();
        let est = SpreadEstimator::new(&g, Model::IndependentCascade);
        let s_dssa = est.estimate(&dssa.seeds, 10_000, 3);
        let s_degree = est.estimate(&top_degree_seeds(&g, k), 10_000, 3);
        let s_random = est.estimate(&random_seeds(&g, k, 9), 10_000, 3);
        // Empirical margin, not a theorem: with ε = 0.2 the guarantee is
        // only (1 − 1/e − ε)·OPT, and on some generated instances
        // top-degree is a near-optimal cover, so leave a few percent of
        // slack for sampling noise.
        assert!(
            s_dssa >= s_degree * 0.95,
            "D-SSA {s_dssa:.1} should not lose to degree {s_degree:.1}"
        );
        assert!(
            s_degree > s_random,
            "degree {s_degree:.1} should beat random {s_random:.1} on a skewed graph"
        );
    }
}
