//! IMM — "Influence Maximization in Near-Linear Time: A Martingale
//! Approach" (Tang, Shi, Xiao — SIGMOD'15).
//!
//! IMM is the best prior RIS algorithm and the main comparator of the
//! Stop-and-Stare paper. Two phases:
//!
//! 1. **Sampling** — estimate a lower bound `LB ≤ OPT_k` by testing the
//!    geometrically decreasing guesses `x = n/2^i`: for each guess,
//!    enlarge the pool to `θ_i = λ'/x` and accept
//!    `LB = n·F_R(S_i)/(1+ε')` once the greedy cover's estimate clears
//!    `(1+ε')·x`. Then enlarge the pool to `θ = λ*/LB`.
//! 2. **Node selection** — greedy Max-Coverage on the pool.
//!
//! Failure probability: IMM is parameterized by `l` with `δ = n^(−l)`;
//! we derive `l = ln(1/δ)/ln n` from the caller's δ and apply the
//! paper's `l ← l·(1 + ln 2/ln n)` correction so both phases jointly
//! fail with probability at most δ.
//!
//! Fidelity note: as in the original, the pool from phase 1 is *reused*
//! for node selection. Chen (2018) later observed this introduces a weak
//! dependence the martingale analysis glosses over; we reproduce the
//! original algorithm, since that is what the Stop-and-Stare paper
//! benchmarks against.

// Sanctioned wall-clock read: report-only elapsed-time stat (see lint-allow.toml).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use sns_core::bounds::certificate::StopCondition;
use sns_core::bounds::{ln_choose, ONE_MINUS_INV_E};
use sns_core::{CoreError, Params, RunResult, SamplingContext};
use sns_rrset::{max_coverage_with, GreedyScratch, RrCollection};

/// The IMM algorithm.
#[derive(Debug, Clone)]
pub struct Imm {
    params: Params,
}

impl Imm {
    /// IMM for the given `(k, ε, δ)`.
    pub fn new(params: Params) -> Self {
        Imm { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// Runs IMM and returns the seed set with run statistics.
    pub fn run(&self, ctx: &SamplingContext<'_>) -> Result<RunResult, CoreError> {
        let start = Instant::now();
        let n = ctx.graph().num_nodes() as u64;
        let nf = n as f64;
        let k = self.params.k.min(n as usize);
        let eps = self.params.epsilon;
        let gamma = ctx.gamma();

        // δ = n^{-l}  =>  l = ln(1/δ)/ln n, then the two-phase correction.
        let ln_n = nf.max(2.0).ln();
        let l = ((1.0 / self.params.delta).ln() / ln_n) * (1.0 + 2f64.ln() / ln_n);

        let lc = ln_choose(n, k as u64);
        let log2n = nf.log2().max(1.0);

        // Phase 1: LB estimation.
        let eps_prime = 2f64.sqrt() * eps;
        let lambda_prime = (2.0 + 2.0 * eps_prime / 3.0) * (lc + l * ln_n + log2n.ln()) * nf
            / (eps_prime * eps_prime);

        let mut pool = RrCollection::new(ctx.graph().num_nodes());
        let mut sampler = ctx.sampler(0);
        // Selection scratch shared by every LB-guess round and phase 2.
        let mut cover_scratch = GreedyScratch::new();
        let mut peak_bytes = 0u64;
        let mut iterations = 0u32;
        let mut lb = 1.0f64;

        let max_i = log2n.floor() as u32;
        for i in 1..max_i {
            iterations += 1;
            let x = nf / 2f64.powi(i as i32);
            let theta_i = (lambda_prime / x).ceil() as u64;
            let have = pool.len() as u64;
            if theta_i > have {
                if ctx.threads() > 1 {
                    pool.extend_parallel(&sampler, have, theta_i - have, ctx.threads());
                } else {
                    pool.extend_sequential(&mut sampler, have, theta_i - have);
                }
            }
            peak_bytes = peak_bytes.max(pool.memory_bytes());
            let cover = max_coverage_with(&pool, k, pool.id_range(), &mut cover_scratch);
            let est = gamma * cover.covered as f64 / pool.len() as f64;
            if est >= (1.0 + eps_prime) * x {
                lb = est / (1.0 + eps_prime);
                break;
            }
        }

        // Phase 1b: final pool size θ = λ*/LB.
        let alpha = (l * ln_n + 2f64.ln()).sqrt();
        let beta = (ONE_MINUS_INV_E * (lc + l * ln_n + 2f64.ln())).sqrt();
        let lambda_star = 2.0 * nf * (ONE_MINUS_INV_E * alpha + beta).powi(2) / (eps * eps);
        let theta = (lambda_star / lb).ceil() as u64;
        let have = pool.len() as u64;
        if theta > have {
            if ctx.threads() > 1 {
                pool.extend_parallel(&sampler, have, theta - have, ctx.threads());
            } else {
                pool.extend_sequential(&mut sampler, have, theta - have);
            }
        }
        peak_bytes = peak_bytes.max(pool.memory_bytes());
        iterations += 1;

        // Phase 2: node selection.
        let cover = max_coverage_with(&pool, k, pool.id_range(), &mut cover_scratch);
        let pool_size = pool.len() as u64;
        let i_hat = cover.influence_estimate(gamma, pool_size);

        Ok(RunResult {
            seeds: cover.seeds,
            influence_estimate: i_hat,
            rr_sets_main: pool_size,
            rr_sets_verify: 0,
            iterations,
            hit_cap: false,
            stopping_rule: None,
            binding: StopCondition::Schedule,
            wall_time: start.elapsed(),
            peak_pool_bytes: peak_bytes,
            total_edges_examined: pool.total_edges_examined(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::Model;
    use sns_graph::{gen, GraphBuilder, WeightModel};

    #[test]
    fn finds_the_dominating_seed() {
        let mut b = GraphBuilder::new();
        for v in 1..40 {
            b.add_edge(0, v, 1.0);
        }
        for v in 1..39 {
            b.add_edge(v, v + 1, 0.05);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
        let r = Imm::new(Params::new(1, 0.3, 0.1).unwrap()).run(&ctx).unwrap();
        assert_eq!(r.seeds, vec![0]);
        assert!((r.influence_estimate - 40.0).abs() < 8.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::erdos_renyi(300, 1800, 4).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let a = Imm::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(6))
            .unwrap();
        let b = Imm::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(6).with_threads(4))
            .unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.rr_sets_main, b.rr_sets_main);
    }

    #[test]
    fn uses_more_samples_than_dssa() {
        // The paper's Table 3 pattern: IMM's pool exceeds D-SSA's.
        let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 7)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let params = Params::new(50, 0.2, 0.05).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(5);
        let imm = Imm::new(params).run(&ctx).unwrap();
        let dssa = sns_core::Dssa::new(params).run(&ctx).unwrap();
        assert!(
            imm.rr_sets_main > dssa.rr_sets_total(),
            "IMM {} sets vs D-SSA {}",
            imm.rr_sets_main,
            dssa.rr_sets_total()
        );
    }

    #[test]
    fn quality_comparable_to_dssa() {
        let g = gen::rmat(1500, 9000, gen::RmatParams::GRAPH500, 3)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let params = Params::new(10, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(2);
        let imm = Imm::new(params).run(&ctx).unwrap();
        let dssa = sns_core::Dssa::new(params).run(&ctx).unwrap();
        // ground-truth spreads of both seed sets agree within the guarantee
        let est = sns_diffusion::SpreadEstimator::new(&g, Model::IndependentCascade);
        let si = est.estimate(&imm.seeds, 20_000, 99);
        let sd = est.estimate(&dssa.seeds, 20_000, 99);
        assert!((si - sd).abs() / si.max(sd) < 0.12, "IMM spread {si:.1} vs D-SSA spread {sd:.1}");
    }
}
