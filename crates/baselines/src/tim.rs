//! TIM and TIM+ — "Influence Maximization: Near-Optimal Time Complexity
//! Meets Practical Efficiency" (Tang, Xiao, Shi — SIGMOD'14).
//!
//! TIM was the first practical RIS algorithm. It estimates `KPT* ≤ OPT_k`
//! (the expected influence of a size-k node sample) from the *width* of
//! random RR sets, then draws `θ = λ/KPT` sets. TIM+ adds an intermediate
//! refinement: a greedy solution on the estimation pool is re-measured to
//! tighten KPT* into KPT+, often cutting θ substantially.
//!
//! The Stop-and-Stare paper's critique (§3.2): `OPT_k/KPT+` is not upper
//! bounded, so TIM can oversample arbitrarily — the experiments in §7
//! confirm both TIM variants trail IMM, which trails SSA/D-SSA.

// Sanctioned wall-clock read: report-only elapsed-time stat (see lint-allow.toml).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use sns_core::bounds::certificate::StopCondition;
use sns_core::bounds::ln_choose;
use sns_core::{CoreError, Params, RunResult, SamplingContext};
use sns_rrset::{max_coverage_with, GreedyScratch, RrCollection};

/// Which TIM variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimVariant {
    /// Plain TIM: `θ = λ/KPT*`.
    Plain,
    /// TIM+: refine KPT* into KPT+ with an intermediate greedy pass
    /// before computing θ.
    Plus,
}

/// The TIM / TIM+ algorithm.
#[derive(Debug, Clone)]
pub struct Tim {
    params: Params,
    variant: TimVariant,
}

impl Tim {
    /// Plain TIM for the given `(k, ε, δ)`.
    pub fn new(params: Params) -> Self {
        Tim { params, variant: TimVariant::Plain }
    }

    /// TIM+ for the given `(k, ε, δ)`.
    pub fn plus(params: Params) -> Self {
        Tim { params, variant: TimVariant::Plus }
    }

    /// The configured parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The configured variant.
    pub fn variant(&self) -> TimVariant {
        self.variant
    }

    /// Runs TIM/TIM+ and returns the seed set with run statistics.
    pub fn run(&self, ctx: &SamplingContext<'_>) -> Result<RunResult, CoreError> {
        let start = Instant::now();
        let g = ctx.graph();
        let n = g.num_nodes() as u64;
        let nf = n as f64;
        let m = g.num_arcs().max(1) as f64;
        let k = self.params.k.min(n as usize);
        let eps = self.params.epsilon;
        let gamma = ctx.gamma();

        let ln_n = nf.max(2.0).ln();
        let l = ((1.0 / self.params.delta).ln() / ln_n) * (1.0 + 2f64.ln() / ln_n);
        let log2n = nf.log2().max(2.0);

        // ---- KPT estimation (TIM Algorithm 2) -------------------------
        // κ(R) = 1 − (1 − w(R)/m)^k with w(R) the number of arcs into R;
        // E[κ] relates to the influence of a random size-k seed sample.
        let mut pool = RrCollection::new(g.num_nodes());
        let mut sampler = ctx.sampler(0);
        // Selection scratch shared by the TIM+ refinement and phase 2.
        let mut cover_scratch = GreedyScratch::new();
        let mut rr = Vec::new();
        let mut iterations = 0u32;
        let mut kpt_star = 1.0f64;
        let mut peak_bytes = 0u64;

        'estimate: for i in 1..(log2n.floor() as i32) {
            iterations += 1;
            let c_i = ((6.0 * l * ln_n + 6.0 * log2n.ln()) * 2f64.powi(i)).ceil() as u64;
            let mut sum = 0.0f64;
            let from = pool.len() as u64;
            for j in 0..c_i {
                let meta = sampler.sample(from + j, &mut rr);
                let width = g.width_of(&rr) as f64;
                let kappa = 1.0 - (1.0 - width / m).powi(k as i32);
                sum += kappa;
                pool.push(&rr, meta);
            }
            peak_bytes = peak_bytes.max(pool.memory_bytes());
            if sum / c_i as f64 > 1.0 / 2f64.powi(i) {
                kpt_star = nf * sum / (2.0 * c_i as f64);
                break 'estimate;
            }
        }

        // ---- KPT refinement (TIM+ Algorithm 3) ------------------------
        let kpt = match self.variant {
            TimVariant::Plain => kpt_star,
            TimVariant::Plus => {
                iterations += 1;
                // ε' = 5·∛(l·ε²/(k+l)) — the paper's recommended balance.
                let eps_ref = 5.0 * (l * eps * eps / (k as f64 + l)).cbrt();
                let eps_ref = eps_ref.min(0.9); // keep the estimator sane
                let cover = max_coverage_with(&pool, k, pool.id_range(), &mut cover_scratch);
                let lambda_ref = (2.0 + eps_ref) * l * nf * ln_n / (eps_ref * eps_ref);
                let theta_ref = (lambda_ref / kpt_star).ceil() as u64;
                // Fresh, independent sets measure the greedy candidate.
                let mut verifier = ctx.sampler(1);
                let mut is_seed = vec![false; n as usize];
                for &s in &cover.seeds {
                    is_seed[s as usize] = true;
                }
                let mut covered = 0u64;
                for j in 0..theta_ref {
                    verifier.sample(j, &mut rr);
                    if rr.iter().any(|&v| is_seed[v as usize]) {
                        covered += 1;
                    }
                }
                let kpt_prime = gamma * covered as f64 / theta_ref.max(1) as f64 / (1.0 + eps_ref);
                kpt_star.max(kpt_prime)
            }
        };

        // ---- Main sampling: θ = λ/KPT ---------------------------------
        let lambda =
            (8.0 + 2.0 * eps) * nf * (l * ln_n + ln_choose(n, k as u64) + 2f64.ln()) / (eps * eps);
        let theta = (lambda / kpt).ceil() as u64;
        let have = pool.len() as u64;
        if theta > have {
            if ctx.threads() > 1 {
                pool.extend_parallel(&sampler, have, theta - have, ctx.threads());
            } else {
                pool.extend_sequential(&mut sampler, have, theta - have);
            }
        }
        peak_bytes = peak_bytes.max(pool.memory_bytes());
        iterations += 1;

        let cover = max_coverage_with(&pool, k, pool.id_range(), &mut cover_scratch);
        let pool_size = pool.len() as u64;
        let i_hat = cover.influence_estimate(gamma, pool_size);

        Ok(RunResult {
            seeds: cover.seeds,
            influence_estimate: i_hat,
            rr_sets_main: pool_size,
            rr_sets_verify: 0,
            iterations,
            hit_cap: false,
            stopping_rule: None,
            binding: StopCondition::Schedule,
            wall_time: start.elapsed(),
            peak_pool_bytes: peak_bytes,
            total_edges_examined: pool.total_edges_examined(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_diffusion::Model;
    use sns_graph::{gen, GraphBuilder, WeightModel};

    #[test]
    fn finds_the_dominating_seed() {
        let mut b = GraphBuilder::new();
        for v in 1..40 {
            b.add_edge(0, v, 1.0);
        }
        for v in 1..39 {
            b.add_edge(v, v + 1, 0.05);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(1);
        for algo in [
            Tim::new(Params::new(1, 0.3, 0.1).unwrap()),
            Tim::plus(Params::new(1, 0.3, 0.1).unwrap()),
        ] {
            let r = algo.run(&ctx).unwrap();
            assert_eq!(r.seeds, vec![0], "{:?}", algo.variant());
        }
    }

    #[test]
    fn plus_never_uses_more_sets_than_plain() {
        // KPT+ ≥ KPT* ⇒ θ(TIM+) ≤ θ(TIM).
        let g = gen::rmat(1500, 9000, gen::RmatParams::GRAPH500, 3)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let params = Params::new(20, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(4);
        let plain = Tim::new(params).run(&ctx).unwrap();
        let plus = Tim::plus(params).run(&ctx).unwrap();
        assert!(
            plus.rr_sets_main <= plain.rr_sets_main,
            "TIM+ {} vs TIM {}",
            plus.rr_sets_main,
            plain.rr_sets_main
        );
    }

    #[test]
    fn uses_more_samples_than_imm() {
        // Figures 4–5 pattern: TIM+ ≥ IMM ≥ D-SSA in sampling effort.
        let g = gen::rmat(1200, 7000, gen::RmatParams::GRAPH500, 9)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let params = Params::new(20, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::LinearThreshold).with_seed(8);
        let tim = Tim::plus(params).run(&ctx).unwrap();
        let imm = crate::Imm::new(params).run(&ctx).unwrap();
        // allow slack — both are concentration bounds — but TIM+ should
        // not beat IMM by more than a small factor
        assert!(
            tim.rr_sets_main as f64 > 0.5 * imm.rr_sets_main as f64,
            "TIM+ {} vs IMM {}",
            tim.rr_sets_main,
            imm.rr_sets_main
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::erdos_renyi(300, 1800, 4).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let a = Tim::plus(params)
            .run(&SamplingContext::new(&g, Model::IndependentCascade).with_seed(6))
            .unwrap();
        let b = Tim::plus(params)
            .run(&SamplingContext::new(&g, Model::IndependentCascade).with_seed(6))
            .unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.rr_sets_main, b.rr_sets_main);
    }
}
