//! Baseline influence-maximization algorithms from the paper's
//! evaluation (§7.1, "Algorithms compared").
//!
//! All baselines share the `(1 − 1/e − ε)`-approximation guarantee of
//! SSA/D-SSA — that is the paper's point: at *equal* guarantees, the
//! stop-and-stare algorithms need orders of magnitude fewer samples.
//!
//! * [`Imm`] — IMM (Tang, Shi, Xiao — SIGMOD'15), the strongest prior
//!   RIS method: martingale analysis, a lower-bound estimation phase, and
//!   `θ = λ*/LB` samples.
//! * [`Tim`] — TIM and TIM+ (Tang, Xiao, Shi — SIGMOD'14): KPT*
//!   estimation by sampling-cost heuristics, optional KPT+ refinement,
//!   and `θ = λ/KPT` samples.
//! * [`Celf`] / [`CelfPlusPlus`] — lazy-forward greedy over Monte Carlo
//!   spread estimation (Leskovec et al. KDD'07; Goyal et al. WWW'11) —
//!   the classic simulation-based family, included to reproduce the
//!   paper's "2·10⁹ times faster" anecdote at feasible scales.
//! * [`monte_carlo_greedy`] — the plain Kempe-Kleinberg-Tardos greedy,
//!   exact oracle for tiny test instances.
//!
//! Every algorithm consumes the same [`sns_core::SamplingContext`] and
//! returns the same [`sns_core::RunResult`] as SSA/D-SSA, so harness code
//! treats all of them uniformly.

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

mod celf;
mod heuristics;
mod imm;
mod tim;

pub use celf::{monte_carlo_greedy, Celf, CelfPlusPlus};
pub use heuristics::{random_seeds, top_degree_seeds};
pub use imm::Imm;
pub use tim::{Tim, TimVariant};
