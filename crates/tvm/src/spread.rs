//! Forward Monte Carlo estimation of the *targeted* influence
//! `I_T(S) = Σ_v b(v)·Pr[v activated]`.

use sns_diffusion::{CascadeSimulator, Model};
use sns_graph::{Graph, NodeId};

use crate::TargetWeights;

/// Monte Carlo estimator of targeted spread. The weighted analogue of
/// [`sns_diffusion::SpreadEstimator`]: each cascade contributes the sum
/// of weights of its activated nodes.
pub struct TargetedSpreadEstimator<'g, 'w> {
    graph: &'g Graph,
    model: Model,
    weights: &'w TargetWeights,
    threads: usize,
}

impl<'g, 'w> TargetedSpreadEstimator<'g, 'w> {
    /// Creates an estimator (sequential by default).
    pub fn new(graph: &'g Graph, model: Model, weights: &'w TargetWeights) -> Self {
        TargetedSpreadEstimator { graph, model, weights, threads: 1 }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Estimates `I_T(seeds)` over `simulations` cascades, deterministic
    /// in `master_seed` and independent of the thread count.
    ///
    /// Unlike the integer-count IM estimator, the targeted sum is a float
    /// reduction, so partial sums are computed per fixed-size block and
    /// combined in block order — making the rounding, and therefore the
    /// result, identical for every thread count.
    pub fn estimate(&self, seeds: &[NodeId], simulations: u64, master_seed: u64) -> f64 {
        if simulations == 0 || seeds.is_empty() {
            return 0.0;
        }
        const BLOCK: u64 = 1024;
        let num_blocks = simulations.div_ceil(BLOCK);
        let mut block_sums = vec![0.0f64; num_blocks as usize];
        let block_range = |b: u64| (b * BLOCK, ((b + 1) * BLOCK).min(simulations));

        if self.threads <= 1 || num_blocks == 1 {
            for (b, slot) in block_sums.iter_mut().enumerate() {
                let (s, e) = block_range(b as u64);
                *slot = self.run_range(seeds, master_seed, s, e);
            }
        } else {
            let workers = self.threads.min(num_blocks as usize);
            let per_worker = num_blocks.div_ceil(workers as u64) as usize;
            std::thread::scope(|scope| {
                for (w, chunk) in block_sums.chunks_mut(per_worker).enumerate() {
                    let first_block = (w * per_worker) as u64;
                    scope.spawn(move || {
                        for (i, slot) in chunk.iter_mut().enumerate() {
                            let (s, e) = block_range(first_block + i as u64);
                            *slot = self.run_range(seeds, master_seed, s, e);
                        }
                    });
                }
            });
        }
        block_sums.iter().sum::<f64>() / simulations as f64
    }

    fn run_range(&self, seeds: &[NodeId], master_seed: u64, start: u64, end: u64) -> f64 {
        use rand::SeedableRng;
        let mut sim = CascadeSimulator::new(self.graph, self.model);
        let mut activated = Vec::new();
        let mut total = 0.0f64;
        for i in start..end {
            let mut rng = sns_diffusion::rng::Xoshiro256pp::seed_from_u64(
                sns_diffusion::rng::seed_for(master_seed, i),
            );
            sim.run_collect(seeds, &mut rng, &mut activated);
            total += activated.iter().map(|&v| self.weights.weight_of(v)).sum::<f64>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_graph::{GraphBuilder, WeightModel};

    #[test]
    fn only_targeted_nodes_count() {
        // 0 -> 1 -> 2 deterministic; only node 2 is targeted.
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build(WeightModel::Provided).unwrap();
        let w = TargetWeights::from_weights(vec![0.0, 0.0, 5.0]).unwrap();
        let est = TargetedSpreadEstimator::new(&g, Model::IndependentCascade, &w);
        let v = est.estimate(&[0], 200, 1);
        assert!((v - 5.0).abs() < 1e-9, "got {v}");
        // seeding the target directly scores the same
        assert!((est.estimate(&[2], 200, 1) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_match_plain_spread() {
        let g =
            sns_graph::gen::erdos_renyi(150, 900, 4).build(WeightModel::WeightedCascade).unwrap();
        let w = TargetWeights::uniform_all(150);
        let targeted = TargetedSpreadEstimator::new(&g, Model::LinearThreshold, &w).estimate(
            &[0, 1],
            20_000,
            9,
        );
        let plain = sns_diffusion::SpreadEstimator::new(&g, Model::LinearThreshold)
            .with_threads(1)
            .estimate(&[0, 1], 20_000, 9);
        assert!(
            (targeted - plain).abs() < 1e-9,
            "uniform TVM {targeted} must equal IM {plain} on identical streams"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let g =
            sns_graph::gen::erdos_renyi(100, 600, 4).build(WeightModel::WeightedCascade).unwrap();
        let w = TargetWeights::synthetic_topic(&g, 0.2, 1.0, 5).unwrap();
        let seq = TargetedSpreadEstimator::new(&g, Model::IndependentCascade, &w).estimate(
            &[3, 4],
            2000,
            11,
        );
        let par = TargetedSpreadEstimator::new(&g, Model::IndependentCascade, &w)
            .with_threads(8)
            .estimate(&[3, 4], 2000, 11);
        assert_eq!(seq, par);
    }
}
