//! The TVM algorithms: SSA-TVM, D-SSA-TVM and the KB-TIM baseline.
//!
//! All three are the IM algorithms run over the weighted (WRIS) sampling
//! context — exactly the paper's §7.3.1 construction: "In the same way,
//! we incorporate WRIS into D-SSA and SSA for solving TVM". The core
//! crate's algorithms are universe-generic (they consume `Γ` and a root
//! distribution through [`SamplingContext`]), so each wrapper here just
//! assembles the weighted context.

use sns_baselines::Tim;
use sns_core::{CoreError, Dssa, Params, RunResult, SamplingContext, Ssa};
use sns_diffusion::Model;
use sns_graph::Graph;

use crate::TargetWeights;

/// Builds the weighted sampling context shared by the TVM algorithms.
fn weighted_ctx<'g>(
    graph: &'g Graph,
    model: Model,
    weights: &TargetWeights,
    seed: u64,
    threads: usize,
) -> Result<SamplingContext<'g>, CoreError> {
    Ok(SamplingContext::new(graph, model)
        .with_seed(seed)
        .with_threads(threads)
        .with_weighted_roots(weights.weights())?)
}

/// SSA over weighted RIS — the paper's SSA-TVM.
#[derive(Debug, Clone)]
pub struct SsaTvm {
    inner: Ssa,
}

impl SsaTvm {
    /// SSA-TVM with the recommended ε-split.
    pub fn new(params: Params) -> Self {
        SsaTvm { inner: Ssa::new(params) }
    }

    /// Runs SSA-TVM; the returned influence estimates are targeted
    /// influences in `[0, Γ]`.
    pub fn run(
        &self,
        graph: &Graph,
        model: Model,
        weights: &TargetWeights,
        seed: u64,
        threads: usize,
    ) -> Result<RunResult, CoreError> {
        self.inner.run(&weighted_ctx(graph, model, weights, seed, threads)?)
    }
}

/// D-SSA over weighted RIS — the paper's D-SSA-TVM.
#[derive(Debug, Clone)]
pub struct DssaTvm {
    inner: Dssa,
}

impl DssaTvm {
    /// D-SSA-TVM for the given `(k, ε, δ)`.
    pub fn new(params: Params) -> Self {
        DssaTvm { inner: Dssa::new(params) }
    }

    /// Runs D-SSA-TVM.
    pub fn run(
        &self,
        graph: &Graph,
        model: Model,
        weights: &TargetWeights,
        seed: u64,
        threads: usize,
    ) -> Result<RunResult, CoreError> {
        self.inner.run(&weighted_ctx(graph, model, weights, seed, threads)?)
    }
}

/// KB-TIM (Li, Zhang, Tan — VLDB'15): the prior best TVM method, i.e.
/// TIM+ with weighted RIS sampling. (The original additionally maintains
/// disk-resident per-keyword sample indexes for real-time queries; the
/// sampling/guarantee core reproduced here is what the paper's Figure 8
/// measures against.)
#[derive(Debug, Clone)]
pub struct KbTim {
    inner: Tim,
}

impl KbTim {
    /// KB-TIM for the given `(k, ε, δ)`.
    pub fn new(params: Params) -> Self {
        KbTim { inner: Tim::plus(params) }
    }

    /// Runs KB-TIM.
    pub fn run(
        &self,
        graph: &Graph,
        model: Model,
        weights: &TargetWeights,
        seed: u64,
        threads: usize,
    ) -> Result<RunResult, CoreError> {
        self.inner.run(&weighted_ctx(graph, model, weights, seed, threads)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TargetedSpreadEstimator;
    use sns_graph::{gen, GraphBuilder, WeightModel};

    /// Two communities; only community B is targeted. TVM must seed B's
    /// hub even though A's hub has higher raw influence.
    fn two_communities() -> (Graph, TargetWeights) {
        let mut b = GraphBuilder::new();
        // community A: hub 0 -> 50 leaves (nodes 2..52)
        for v in 0..50 {
            b.add_edge(0, 2 + v, 1.0);
        }
        // community B: hub 1 -> 20 leaves (nodes 52..72)
        for v in 0..20 {
            b.add_edge(1, 52 + v, 1.0);
        }
        let g = b.build(WeightModel::Provided).unwrap();
        let mut w = vec![0.0f64; g.num_nodes() as usize];
        w[1] = 1.0;
        for v in 52..72 {
            w[v as usize] = 1.0;
        }
        (g, TargetWeights::from_weights(w).unwrap())
    }

    #[test]
    fn tvm_targets_the_right_community() {
        let (g, w) = two_communities();
        let params = Params::new(1, 0.3, 0.1).unwrap();
        for name in ["ssa", "dssa", "kbtim"] {
            let r = match name {
                "ssa" => SsaTvm::new(params).run(&g, Model::IndependentCascade, &w, 4, 1),
                "dssa" => DssaTvm::new(params).run(&g, Model::IndependentCascade, &w, 4, 1),
                _ => KbTim::new(params).run(&g, Model::IndependentCascade, &w, 4, 1),
            }
            .unwrap();
            assert_eq!(r.seeds, vec![1], "{name} picked {:?}", r.seeds);
            // targeted influence of {1} is exactly 21 (hub + 20 leaves)
            assert!(
                (r.influence_estimate - 21.0).abs() < 4.0,
                "{name} Î_T = {}",
                r.influence_estimate
            );
        }
    }

    #[test]
    fn uniform_weights_reduce_to_im() {
        let g = gen::erdos_renyi(300, 1800, 6).build(WeightModel::WeightedCascade).unwrap();
        let w = TargetWeights::uniform_all(300);
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let tvm = DssaTvm::new(params).run(&g, Model::LinearThreshold, &w, 9, 1).unwrap();
        // compare seed *quality* (not identity: root streams differ
        // between uniform and alias sampling)
        let im = sns_core::Dssa::new(params)
            .run(&SamplingContext::new(&g, Model::LinearThreshold).with_seed(9))
            .unwrap();
        let est = sns_diffusion::SpreadEstimator::new(&g, Model::LinearThreshold);
        let st = est.estimate(&tvm.seeds, 20_000, 5);
        let si = est.estimate(&im.seeds, 20_000, 5);
        assert!(
            (st - si).abs() / si.max(st) < 0.1,
            "TVM-uniform spread {st:.1} vs IM spread {si:.1}"
        );
    }

    #[test]
    fn dssa_tvm_uses_fewer_sets_than_kbtim() {
        let g = gen::rmat(2000, 12_000, gen::RmatParams::GRAPH500, 5)
            .build(WeightModel::WeightedCascade)
            .unwrap();
        let w = TargetWeights::synthetic_topic(&g, 0.05, 1.0, 3).unwrap();
        let params = Params::new(10, 0.3, 0.1).unwrap();
        let d = DssaTvm::new(params).run(&g, Model::LinearThreshold, &w, 6, 1).unwrap();
        let kb = KbTim::new(params).run(&g, Model::LinearThreshold, &w, 6, 1).unwrap();
        assert!(
            d.rr_sets_total() < kb.rr_sets_total(),
            "D-SSA-TVM {} vs KB-TIM {}",
            d.rr_sets_total(),
            kb.rr_sets_total()
        );
    }

    #[test]
    fn seed_query_through_the_engine_targets_the_group() {
        // The serving path: one frozen *uniform-root* pool, per-query
        // topic weights. The engine must find B's hub and estimate its
        // targeted influence (21) without any WRIS resampling.
        let (g, w) = two_communities();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(4);
        let engine = sns_core::SeedQueryEngine::sample(&ctx, 4000);
        let ans = engine.answer(&w.seed_query(1)).unwrap();
        assert_eq!(ans.seeds, vec![1], "engine picked {:?}", ans.seeds);
        assert!((ans.influence_estimate - 21.0).abs() < 4.0, "Î_T = {}", ans.influence_estimate);
        // an unweighted query on the same pool prefers A's bigger hub
        let im = engine.answer(&sns_core::SeedQuery::top_k(1)).unwrap();
        assert_eq!(im.seeds, vec![0]);
    }

    #[test]
    fn seed_quality_verified_by_targeted_forward_simulation() {
        let (g, w) = two_communities();
        let params = Params::new(2, 0.3, 0.1).unwrap();
        let r = DssaTvm::new(params).run(&g, Model::IndependentCascade, &w, 4, 1).unwrap();
        let est = TargetedSpreadEstimator::new(&g, Model::IndependentCascade, &w);
        let spread = est.estimate(&r.seeds, 2000, 8);
        assert!(spread >= 21.0 - 1e-9, "targeted spread {spread}");
    }
}
