//! Targeted Viral Marketing (TVM) — §7.3 of the Stop-and-Stare paper.
//!
//! TVM generalizes influence maximization: instead of counting every
//! activated node, each node `v` carries a relevance weight `b(v) ≥ 0`
//! (how interested that user is in the campaign topic) and the objective
//! is the *targeted* influence `I_T(S) = Σ_v b(v)·Pr[v activated]`.
//!
//! The reduction (Li, Zhang, Tan — VLDB'15, adopted by the paper) is
//! weighted RIS ("WRIS"): draw the RR-set root proportional to `b(v)`
//! instead of uniformly; then `I_T(S) = Γ·Pr[S covers R]` with
//! `Γ = Σ_v b(v)`, and every RIS algorithm runs unchanged with `n`
//! replaced by `Γ`. This crate provides
//!
//! * [`TargetWeights`] — validated weight vectors, including the
//!   synthetic topic model standing in for the paper's tweet-keyword
//!   mining (Table 4; see `DESIGN.md` §4),
//! * [`SsaTvm`] / [`DssaTvm`] — the paper's Stop-and-Stare TVM
//!   algorithms (thin wrappers: the core crate is already
//!   universe-generic),
//! * [`KbTim`] — the prior state of the art (TIM+ over WRIS),
//! * [`TargetedSpreadEstimator`] — forward Monte Carlo estimation of
//!   `I_T(S)` for evaluating seed quality.
//!
//! # Example
//!
//! ```
//! use sns_graph::{gen::erdos_renyi, WeightModel};
//! use sns_diffusion::Model;
//! use sns_core::Params;
//! use sns_tvm::{DssaTvm, TargetWeights};
//!
//! let g = erdos_renyi(300, 1500, 3).build(WeightModel::WeightedCascade).unwrap();
//! let topic = TargetWeights::synthetic_topic(&g, 0.1, 1.0, 42).unwrap();
//! let r = DssaTvm::new(Params::new(3, 0.3, 0.1).unwrap())
//!     .run(&g, Model::LinearThreshold, &topic, 7, 1)
//!     .unwrap();
//! assert_eq!(r.seeds.len(), 3);
//! ```

//!
//! The repository-level pipeline walk-through (sampler → inverted
//! index → coverage view → gain snapshots → query engine) lives in
//! `docs/ARCHITECTURE.md` at the workspace root; the stopping-rule
//! math is derived in `docs/DERIVATIONS.md`.

#![warn(missing_docs)]

mod algorithms;
mod spread;
mod weights;

pub use algorithms::{DssaTvm, KbTim, SsaTvm};
pub use spread::TargetedSpreadEstimator;
pub use weights::{TargetWeights, TopicSpec, TOPIC_1, TOPIC_2};
