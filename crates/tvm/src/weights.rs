//! Target-group weights and the synthetic topic model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sns_graph::{Graph, GraphError, NodeId};

/// One row of the paper's Table 4: a topic, its mined keywords, and the
/// size of the targeted user group on the 41.7M-node Twitter network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopicSpec {
    /// Topic label as in Table 4.
    pub name: &'static str,
    /// The keyword group whose tweet/retweet matches define the target
    /// users in the paper.
    pub keywords: &'static [&'static str],
    /// Targeted users mined from the tweet corpus (Table 4 "#Users").
    pub users: u64,
    /// Fraction of the Twitter network the group represents; used to
    /// scale the synthetic group to stand-in graphs.
    pub fraction: f64,
}

/// Table 4, topic 1 (997 034 of 41.7M users ≈ 2.39%).
pub const TOPIC_1: TopicSpec = TopicSpec {
    name: "Topic 1",
    keywords: &["bill clinton", "iran", "north korea", "president obama", "obama"],
    users: 997_034,
    fraction: 997_034.0 / 41_700_000.0,
};

/// Table 4, topic 2 (507 465 of 41.7M users ≈ 1.22%).
pub const TOPIC_2: TopicSpec = TopicSpec {
    name: "Topic 2",
    keywords: &["senator ted kenedy", "oprah", "kayne west", "marvel", "jackass"],
    users: 507_465,
    fraction: 507_465.0 / 41_700_000.0,
};

/// Source of the process-unique topic ids handed to
/// [`TargetWeights::topic_id`]. Minted from the upper half of the `u64`
/// space so ids never collide with the small integers callers naturally
/// pick for hand-managed `SeedQuery::with_topic` ids (a collision only
/// thrashes the weighted-snapshot cache — `Arc` identity keeps answers
/// correct — but disjoint namespaces avoid even that).
static NEXT_TOPIC_ID: AtomicU64 = AtomicU64::new(1 << 63);

/// Validated per-node relevance weights `b(v) ≥ 0` with `Γ = Σ b(v) > 0`.
///
/// The weight vector is stored behind an [`Arc`] and every instance
/// carries a process-unique [`TargetWeights::topic_id`], so queries
/// minted by [`TargetWeights::seed_query`] share the allocation (no
/// n-length clone per query) and `sns_core::SeedQueryEngine` can cache
/// one weighted gain snapshot per `(range, topic)` across repeated
/// queries. Clones share both the weights and the id — they *are* the
/// same topic.
#[derive(Debug, Clone)]
pub struct TargetWeights {
    weights: Arc<[f64]>,
    gamma: f64,
    num_targeted: u32,
    topic_id: u64,
}

impl TargetWeights {
    /// Wraps an explicit weight vector (one entry per node).
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, GraphError> {
        let mut gamma = 0.0f64;
        let mut num_targeted = 0u32;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidWeight {
                    from: i as u32,
                    to: i as u32,
                    weight: w as f32,
                });
            }
            if w > 0.0 {
                num_targeted += 1;
            }
            gamma += w;
        }
        if weights.is_empty() || gamma <= 0.0 {
            return Err(GraphError::ZeroTotalWeight);
        }
        Ok(TargetWeights {
            weights: weights.into(),
            gamma,
            num_targeted,
            topic_id: NEXT_TOPIC_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Uniform weight 1 on every node — TVM degenerates to classic IM
    /// (`Γ = n`, roots effectively uniform).
    pub fn uniform_all(n: u32) -> Self {
        TargetWeights {
            weights: vec![1.0; n as usize].into(),
            gamma: f64::from(n),
            num_targeted: n,
            topic_id: NEXT_TOPIC_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Synthesizes a topic's target group on `graph` — the stand-in for
    /// the paper's tweet-keyword mining (`DESIGN.md` §4):
    ///
    /// * a `fraction` of nodes is targeted, selected with bias toward
    ///   high out-degree nodes (keyword activity correlates with account
    ///   activity);
    /// * relevance weights follow a Zipf law with exponent
    ///   `zipf_exponent` (tweet-frequency counts are heavy-tailed).
    ///
    /// Deterministic in `seed`.
    pub fn synthetic_topic(
        graph: &Graph,
        fraction: f64,
        zipf_exponent: f64,
        seed: u64,
    ) -> Result<Self, GraphError> {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        assert!(zipf_exponent >= 0.0, "zipf exponent must be non-negative");
        let n = graph.num_nodes();
        let group = ((f64::from(n) * fraction).round() as u32).clamp(1, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

        // Degree-biased selection without replacement: shuffle candidates
        // weighted by (1 + out-degree) via exponential sort keys
        // (Efraimidis–Spirakis reservoir ordering).
        let mut keyed: Vec<(f64, NodeId)> = (0..n)
            .map(|v| {
                let w = 1.0 + f64::from(graph.out_degree(v));
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                (u.ln() / w, v) // larger key = more likely selected
            })
            .collect();
        keyed.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("keys finite"));
        let mut members: Vec<NodeId> = keyed[..group as usize].iter().map(|&(_, v)| v).collect();
        // Zipf ranks are assigned in random order within the group so the
        // heaviest users are not mechanically the highest-degree ones.
        members.shuffle(&mut rng);

        let mut weights = vec![0.0f64; n as usize];
        for (rank, &v) in members.iter().enumerate() {
            weights[v as usize] = 1.0 / ((rank + 1) as f64).powf(zipf_exponent);
        }
        Self::from_weights(weights)
    }

    /// Scales a Table 4 topic onto a stand-in graph (same fraction of the
    /// population, Zipf exponent 1).
    pub fn from_topic(graph: &Graph, topic: &TopicSpec, seed: u64) -> Result<Self, GraphError> {
        Self::synthetic_topic(graph, topic.fraction, 1.0, seed)
    }

    /// The per-node weights `b(v)`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The shared weight allocation — hand this to query constructors to
    /// avoid copying the n-length vector.
    pub fn shared_weights(&self) -> Arc<[f64]> {
        Arc::clone(&self.weights)
    }

    /// The process-unique id of this topic's weight vector (shared by
    /// clones), under which serving engines cache weighted snapshots.
    pub fn topic_id(&self) -> u64 {
        self.topic_id
    }

    /// `Γ = Σ_v b(v)`, the targeted universe mass.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of nodes with positive weight (the target group size,
    /// Table 4's "#Users").
    pub fn num_targeted(&self) -> u32 {
        self.num_targeted
    }

    /// Weight of one node.
    pub fn weight_of(&self, v: NodeId) -> f64 {
        self.weights[v as usize]
    }

    /// The best-`k`-seeds question for this target group, ready for
    /// `sns_core::SeedQueryEngine` — one frozen uniform-root pool can
    /// answer it for every topic without resampling (the engine
    /// reweights each RR set by its root's `b(v)`; see
    /// `sns_rrset::snapshot` for the estimator and its caveat on sparse
    /// groups). The query shares this topic's weight `Arc` and carries
    /// its [`TargetWeights::topic_id`], so repeated queries on one topic
    /// hit the engine's weighted-snapshot cache instead of re-running
    /// the weighted gain pass. Refine further with the `SeedQuery`
    /// builders (ranges, forced/excluded seeds).
    pub fn seed_query(&self, k: usize) -> sns_core::SeedQuery {
        sns_core::SeedQuery::top_k(k)
            .with_root_weights(self.shared_weights())
            .with_topic(self.topic_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_graph::{gen, WeightModel};

    #[test]
    #[allow(clippy::assertions_on_constants)] // spec cross-check reads better inline
    fn topic_specs_match_table4() {
        assert_eq!(TOPIC_1.users, 997_034);
        assert_eq!(TOPIC_2.users, 507_465);
        assert_eq!(TOPIC_1.keywords.len(), 5);
        assert!(TOPIC_1.fraction > TOPIC_2.fraction);
    }

    #[test]
    fn from_weights_validates() {
        assert!(TargetWeights::from_weights(vec![]).is_err());
        assert!(TargetWeights::from_weights(vec![0.0, 0.0]).is_err());
        assert!(TargetWeights::from_weights(vec![1.0, -1.0]).is_err());
        assert!(TargetWeights::from_weights(vec![1.0, f64::NAN]).is_err());
        let t = TargetWeights::from_weights(vec![1.0, 0.0, 2.0]).unwrap();
        assert_eq!(t.gamma(), 3.0);
        assert_eq!(t.num_targeted(), 2);
        assert_eq!(t.weight_of(1), 0.0);
    }

    #[test]
    fn uniform_reduces_to_im() {
        let t = TargetWeights::uniform_all(10);
        assert_eq!(t.gamma(), 10.0);
        assert_eq!(t.num_targeted(), 10);
    }

    #[test]
    fn synthetic_topic_hits_requested_fraction() {
        let g = gen::erdos_renyi(1000, 5000, 3).build(WeightModel::WeightedCascade).unwrap();
        let t = TargetWeights::synthetic_topic(&g, 0.05, 1.0, 7).unwrap();
        assert_eq!(t.num_targeted(), 50);
        assert!(t.gamma() > 0.0);
        // Zipf: heaviest weight is 1, total < harmonic bound
        let max = t.weights().iter().cloned().fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_topic_deterministic() {
        let g = gen::erdos_renyi(500, 2500, 3).build(WeightModel::WeightedCascade).unwrap();
        let a = TargetWeights::synthetic_topic(&g, 0.1, 1.0, 9).unwrap();
        let b = TargetWeights::synthetic_topic(&g, 0.1, 1.0, 9).unwrap();
        assert_eq!(a.weights(), b.weights());
        let c = TargetWeights::synthetic_topic(&g, 0.1, 1.0, 10).unwrap();
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    fn degree_bias_prefers_hubs() {
        // star graph: node 0 has degree 500, everyone else ~0
        let mut b = sns_graph::GraphBuilder::new();
        for v in 1..=500 {
            b.add_arc(0, v);
        }
        let g = b.build(WeightModel::WeightedCascade).unwrap();
        // tiny group: the hub should almost always be included
        let mut included = 0;
        for seed in 0..20 {
            let t = TargetWeights::synthetic_topic(&g, 0.01, 1.0, seed).unwrap();
            if t.weight_of(0) > 0.0 {
                included += 1;
            }
        }
        assert!(included >= 18, "hub included only {included}/20 times");
    }
}
