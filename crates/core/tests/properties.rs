//! Property-based tests for the RIS bounds and parameter machinery.

use proptest::prelude::*;

use sns_core::bounds::{
    chernoff_lower_tail, chernoff_upper_tail, ln_choose, ln_gamma, max_iterations, nmax,
    prior_thresholds, upsilon,
};
use sns_core::{Params, SsaEpsilons};

proptest! {
    /// Υ is monotone: tighter ε or smaller δ never needs fewer samples.
    #[test]
    fn upsilon_monotone(
        eps in 0.01f64..0.9,
        delta in 1e-9f64..0.5,
        shrink in 0.1f64..0.99,
    ) {
        let base = upsilon(eps, delta);
        prop_assert!(upsilon(eps * shrink, delta) > base);
        prop_assert!(upsilon(eps, delta * shrink) > base);
    }

    /// ln C(n, k) is symmetric, monotone in n, and matches the gamma
    /// function formulation.
    #[test]
    fn ln_choose_properties(n in 2u64..200_000, k_frac in 0.0f64..=1.0) {
        let k = ((n as f64) * k_frac) as u64;
        let direct = ln_choose(n, k);
        prop_assert!((direct - ln_choose(n, n - k)).abs() < 1e-6 * direct.abs().max(1.0));
        prop_assert!(ln_choose(n + 1, k.max(1)) >= direct - 1e-9);
        if k > 0 && k < n {
            let via_gamma = ln_gamma(n as f64 + 1.0)
                - ln_gamma(k as f64 + 1.0)
                - ln_gamma((n - k) as f64 + 1.0);
            prop_assert!(
                (direct - via_gamma).abs() / direct.abs().max(1.0) < 1e-8,
                "C({}, {}): {} vs {}", n, k, direct, via_gamma
            );
        }
    }

    /// The recommended ε-split always satisfies the Eq. 18 constraint
    /// and never leaves more than 20% of the budget on the table.
    #[test]
    fn recommended_split_valid(eps in 0.005f64..0.55) {
        let split = SsaEpsilons::recommended(eps);
        prop_assert!(split.validate(eps).is_ok(), "eps = {eps}");
        prop_assert!(split.effective_epsilon() > 0.8 * eps, "eps = {eps} wasteful");
    }

    /// Nmax and imax scale sanely: doubling from Υ(ε, δ/3) must reach
    /// 2·Nmax within imax iterations but not long before (no wasted cap).
    #[test]
    fn cap_and_iterations_consistent(
        n in 100u64..1_000_000,
        k in 1u64..500,
        eps in 0.05f64..0.3,
    ) {
        prop_assume!(k < n);
        let delta = 1.0 / n as f64;
        let cap = nmax(n, k, eps, delta, n as f64 / k as f64);
        prop_assert!(cap > 0.0 && cap.is_finite());
        let imax = max_iterations(cap, eps, delta);
        let base = upsilon(eps, delta / 3.0);
        prop_assert!(base * 2f64.powi(imax as i32) >= 2.0 * cap);
        if imax > 1 {
            prop_assert!(base * 2f64.powi(imax as i32 - 1) < 2.0 * cap);
        }
    }

    /// The prior-threshold hierarchy (IMM ≤ TIM) holds across the whole
    /// parameter space, and both shrink as OPT grows.
    #[test]
    fn prior_threshold_hierarchy(
        n in 1000u64..10_000_000,
        k in 1u64..1000,
        eps in 0.05f64..0.3,
        opt_mult in 1.0f64..100.0,
    ) {
        prop_assume!(k < n / 2);
        let delta = 1.0 / n as f64;
        let opt = k as f64 * opt_mult;
        let t = prior_thresholds(n, k, eps, delta, opt);
        prop_assert!(t.imm < t.tim, "IMM {} vs TIM {}", t.imm, t.tim);
        let t_bigger_opt = prior_thresholds(n, k, eps, delta, opt * 2.0);
        prop_assert!(t_bigger_opt.imm < t.imm);
        prop_assert!(t_bigger_opt.tim < t.tim);
    }

    /// Chernoff tails decay with samples and are valid probabilities.
    #[test]
    fn chernoff_tails_behave(
        samples in 1.0f64..1e7,
        mu in 1e-6f64..0.5,
        eps in 0.01f64..1.0,
    ) {
        let up = chernoff_upper_tail(samples, mu, eps);
        let low = chernoff_lower_tail(samples, mu, eps);
        prop_assert!((0.0..=1.0).contains(&up));
        prop_assert!((0.0..=1.0).contains(&low));
        prop_assert!(chernoff_upper_tail(samples * 2.0, mu, eps) <= up);
        // the upper tail (2 + 2ε/3 denominator) is never tighter than the
        // lower tail (2 denominator)
        prop_assert!(up >= low * 0.999999);
    }

    /// Params validation accepts exactly its documented domain.
    #[test]
    fn params_domain(k in 0usize..5, eps in -0.5f64..1.5, delta in -0.5f64..1.5) {
        let ok = k >= 1
            && eps > 0.0
            && eps < 1.0 - 1.0 / std::f64::consts::E
            && delta > 0.0
            && delta < 1.0;
        prop_assert_eq!(Params::new(k, eps, delta).is_ok(), ok);
    }
}
