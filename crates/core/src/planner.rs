//! Batch planning and admission control — the serving front end in
//! front of [`SeedQueryEngine`](crate::SeedQueryEngine).
//!
//! Production query traffic is skewed and bursty: many concurrent
//! campaigns ask variations of the same few questions (same pool slice,
//! same audience topic, different budgets and constraints), and arrival
//! rates spike far above the sustainable service rate. Two pieces turn
//! the raw batch engine into a front end that survives that:
//!
//! * **[`BatchPlan`]** groups an incoming [`SeedQuery`] batch by the
//!   snapshot each query needs — the pool id range for plain queries,
//!   `(range, topic)` for topic-weighted ones — so one
//!   [`GainSnapshot`](sns_rrset::GainSnapshot) resolution serves every
//!   member of a group. The engine's LRU cache already makes repeated
//!   *hits* cheap; planning makes *misses* shared: a cold 64-query batch
//!   over 4 distinct ranges builds 4 snapshots, not up to 64 racing
//!   ones. [`SeedQueryEngine::answer_planned`](crate::SeedQueryEngine::answer_planned)
//!   executes a plan bit-identically to
//!   [`answer_batch`](crate::SeedQueryEngine::answer_batch).
//! * **[`AdmissionQueue`]** bounds how much work may wait. Every query
//!   is admitted with a [`Priority`] and an optional deadline on a
//!   **virtual clock** measured in deterministic cost units
//!   ([`estimated_cost`]); admission refuses — with a typed
//!   [`RejectReason`] the caller can surface — when the queue is at
//!   capacity or when the backlog ahead already makes the deadline
//!   unmeetable. Rejecting at the door with a reason is the graceful
//!   form of degradation: latency stays bounded for everything that is
//!   admitted, instead of every query getting slower without limit.
//!
//! The virtual clock is what makes the whole front end testable: cost
//! units are a pure function of the query and pool, so admission
//! decisions, queue order, rejects and virtual sojourn times are exactly
//! reproducible — the `sns-bench` traffic simulator replays a seeded
//! arrival schedule and CI diffs the resulting counters byte-for-byte.
//!
//! See `docs/ARCHITECTURE.md` (repository root) for the
//! plan → admit → build-or-hit → select → respond pipeline walk-through.

use std::collections::BTreeMap;

use sns_rrset::NodeCosts;

use crate::SeedQuery;

/// The snapshot identity a query resolves against — the grouping key of
/// [`BatchPlan`]. Queries with equal keys share one snapshot resolution.
/// `Ord` because the planner's grouping index is a `BTreeMap` (the
/// workspace determinism contract bans hash-order iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GroupKey {
    /// Unweighted queries over one pool id range: they share the range's
    /// plain [`GainSnapshot`](sns_rrset::GainSnapshot).
    Plain {
        /// Range start (pool set id).
        start: u32,
        /// Range end (exclusive).
        end: u32,
    },
    /// Topic-weighted queries over one range: they share the
    /// [`WeightedGainSnapshot`](sns_rrset::WeightedGainSnapshot) keyed
    /// by the topic id.
    Topic {
        /// Range start (pool set id).
        start: u32,
        /// Range end (exclusive).
        end: u32,
        /// The weight vector's stable identity ([`SeedQuery::topic`]).
        topic: u64,
    },
    /// A query that cannot share anything: weighted but without a topic
    /// id, so no identity ties its weight vector to any other query's.
    /// Each such query is its own group (keyed by batch index).
    Solo {
        /// The query's index in the planned batch.
        index: usize,
    },
}

/// One group of a [`BatchPlan`]: the queries (by batch index, ascending)
/// that resolve the same snapshot.
#[derive(Debug, Clone)]
pub struct PlanGroup {
    /// The shared snapshot identity.
    pub key: GroupKey,
    /// Member indices into the planned batch, in input order.
    pub members: Vec<usize>,
}

/// A grouped execution plan for one query batch — see the module docs.
/// Build with [`BatchPlan::build`]; execute with
/// [`SeedQueryEngine::answer_planned`](crate::SeedQueryEngine::answer_planned).
#[derive(Debug, Clone)]
pub struct BatchPlan {
    groups: Vec<PlanGroup>,
    queries: usize,
    pool_len: u32,
    /// The pool directory generation this plan was built against, when
    /// the planner ran inside a pinned engine entry point
    /// ([`BatchPlan::build_for_generation`]). `None` for free-standing
    /// plans built against a bare pool length.
    generation: Option<u64>,
}

impl BatchPlan {
    /// Plans `queries` against a pool of `pool_len` sets (needed to
    /// resolve the default whole-pool range). Groups appear in order of
    /// first member appearance and members stay in input order, so the
    /// plan — like everything downstream of it — is a pure deterministic
    /// function of the batch.
    pub fn build(queries: &[SeedQuery], pool_len: u32) -> Self {
        Self::plan(queries, pool_len, None)
    }

    /// Like [`BatchPlan::build`], but stamps the plan with the pool
    /// directory generation the batch pinned — under grow-while-serving,
    /// the record of *which published pool prefix* answered this batch.
    pub fn build_for_generation(queries: &[SeedQuery], pool_len: u32, generation: u64) -> Self {
        Self::plan(queries, pool_len, Some(generation))
    }

    fn plan(queries: &[SeedQuery], pool_len: u32, generation: Option<u64>) -> Self {
        let mut groups: Vec<PlanGroup> = Vec::new();
        let mut index: BTreeMap<GroupKey, usize> = BTreeMap::new();
        for (i, q) in queries.iter().enumerate() {
            let range = q.range.clone().unwrap_or(0..pool_len);
            let key = match (&q.root_weights, q.topic) {
                (Some(_), Some(topic)) => {
                    GroupKey::Topic { start: range.start, end: range.end, topic }
                }
                (Some(_), None) => GroupKey::Solo { index: i },
                (None, _) => GroupKey::Plain { start: range.start, end: range.end },
            };
            match index.get(&key) {
                // The index only ever stores positions of pushed groups,
                // so the lookup always succeeds — checked access keeps
                // the serving path panic-free regardless.
                Some(&g) => {
                    if let Some(group) = groups.get_mut(g) {
                        group.members.push(i);
                    }
                }
                None => {
                    index.insert(key, groups.len());
                    groups.push(PlanGroup { key, members: vec![i] });
                }
            }
        }
        BatchPlan { groups, queries: queries.len(), pool_len, generation }
    }

    /// The plan's groups, in first-appearance order.
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }

    /// Number of groups formed.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of queries planned.
    pub fn num_queries(&self) -> usize {
        self.queries
    }

    /// The pool length the plan resolved default ranges against.
    pub fn pool_len(&self) -> u32 {
        self.pool_len
    }

    /// The pool directory generation the plan was built against, if it
    /// was built through [`BatchPlan::build_for_generation`].
    pub fn generation(&self) -> Option<u64> {
        self.generation
    }

    /// Snapshot resolutions the grouping saved: every member beyond the
    /// first of a shareable (non-[`GroupKey::Solo`]) group rides on its
    /// group's single resolution instead of paying its own lookup —
    /// and, on a cold cache, its own build.
    pub fn builds_saved(&self) -> u64 {
        self.groups
            .iter()
            .filter(|g| !matches!(g.key, GroupKey::Solo { .. }))
            .map(|g| g.members.len() as u64 - 1)
            .sum()
    }
}

/// Service priority of an admitted query. Higher priorities drain first;
/// within a priority the queue is FIFO by admission order, so service
/// order is fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background traffic — analytics sweeps, prefetching.
    Low,
    /// The default interactive class.
    Normal,
    /// Latency-critical traffic; drained before everything else.
    High,
}

/// Why the admission queue refused a query. Returned to the caller so a
/// front end can answer "try later" / "relax the deadline" instead of
/// silently degrading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue already holds `capacity` queries; admitting more would
    /// grow latency without bound.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// Even served right after the backlog of equal-or-higher priority
    /// ahead of it, the query would finish past its deadline.
    DeadlineUnmeetable {
        /// Virtual time the query could finish at, at the earliest.
        earliest_finish: u64,
        /// The deadline it asked for.
        deadline: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} queries waiting)")
            }
            RejectReason::DeadlineUnmeetable { earliest_finish, deadline } => write!(
                f,
                "deadline unmeetable: earliest finish at virtual time {earliest_finish}, \
                 deadline {deadline}"
            ),
        }
    }
}

/// Deterministic service-cost estimate of one query, in abstract cost
/// units — the currency of the admission queue's virtual clock.
/// Snapshot and selection work scale with the queried range, the greedy
/// loop with the number of selection rounds, so the estimate is
/// `1 + range_len/256 + effective_k`. For cardinality queries the round
/// count is `k`; for budgeted queries it is the budget divided by the
/// cheapest node cost, rounded up — the most rounds the ratio greedy can
/// possibly run. Only *relative* magnitudes matter (deadlines and
/// backlog are measured in the same units); the estimate never
/// influences answers.
pub fn estimated_cost(query: &SeedQuery, pool_len: u32) -> u64 {
    let range = query.range.clone().unwrap_or(0..pool_len);
    let range_len = u64::from(range.end.saturating_sub(range.start));
    (1 + range_len / 256).saturating_add(effective_k(query))
}

/// Upper bound on the number of greedy selection rounds a query can
/// drive: `k` for cardinality queries, `ceil(budget / min_cost)` for
/// budgeted ones. Admission runs *before* engine validation, so
/// malformed budgets or cost tables must degrade to the `k` estimate
/// instead of panicking (the planner is on the panic-free serving path).
fn effective_k(query: &SeedQuery) -> u64 {
    let Some(budget) = query.budget else {
        return query.k as u64;
    };
    let min_cost = match &query.costs {
        NodeCosts::Uniform => 1.0,
        NodeCosts::PerNode(costs) => {
            let mut min = f64::INFINITY;
            for &c in costs.iter() {
                if c.is_finite() && c > 0.0 && c < min {
                    min = c;
                }
            }
            min
        }
    };
    if !budget.is_finite() || budget < 0.0 || !min_cost.is_finite() {
        return query.k as u64;
    }
    // `f64 as u64` saturates, so even absurd budgets stay well-defined.
    let seats = (budget / min_cost).ceil();
    (seats) as u64
}

/// One admitted query waiting in (or drained from) an [`AdmissionQueue`].
#[derive(Debug, Clone)]
pub struct Pending {
    /// The query itself.
    pub query: SeedQuery,
    /// Its service class.
    pub priority: Priority,
    /// Latest acceptable completion, on the virtual clock; `None` waits
    /// indefinitely.
    pub deadline: Option<u64>,
    /// Estimated service cost ([`estimated_cost`]) in virtual units.
    pub cost: u64,
    /// Virtual time the query was admitted at.
    pub arrived: u64,
    /// Admission ticket: unique, ascending in admission order.
    pub ticket: u64,
}

/// Cumulative counters of an [`AdmissionQueue`] — the deterministic
/// half of the serving telemetry (wall-clock latency is measured by the
/// caller; these never depend on timing or threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted into the queue.
    pub admitted: u64,
    /// Queries refused because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Queries refused because their deadline was already unmeetable.
    pub rejected_deadline: u64,
    /// Admitted queries dropped at drain time because their deadline had
    /// passed while they waited (burst aftermath).
    pub expired: u64,
    /// Queries handed to the engine by [`AdmissionQueue::drain`].
    pub drained: u64,
}

/// A bounded, priority-ordered admission queue over a deterministic
/// virtual clock — see the module docs. All state transitions are pure
/// functions of the admission sequence, so two replays of the same
/// arrival schedule produce identical queues, rejects and counters.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    entries: Vec<Pending>,
    /// Sum of queued costs per priority (index = `Priority as usize`),
    /// kept incrementally for O(1) backlog-ahead computation.
    backlog: [u64; 3],
    next_ticket: u64,
    stats: AdmissionStats,
}

impl AdmissionQueue {
    /// An empty queue admitting at most `capacity` waiting queries.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            entries: Vec::new(),
            backlog: [0; 3],
            next_ticket: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total estimated cost of all waiting queries, in virtual units.
    pub fn backlog_cost(&self) -> u64 {
        self.backlog.iter().sum()
    }

    /// The queue's cumulative counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Estimated cost of the queued work that would be served before a
    /// query of `priority`: everything of equal or higher priority.
    /// Destructuring instead of `backlog[priority as usize..]` keeps the
    /// serving path free of unchecked indexing (sns-lint `panics/index`).
    fn backlog_ahead(&self, priority: Priority) -> u64 {
        let [low, normal, high] = self.backlog;
        match priority {
            Priority::Low => low + normal + high,
            Priority::Normal => normal + high,
            Priority::High => high,
        }
    }

    /// The backlog accumulator for one priority class, by `match` — the
    /// array has exactly one slot per [`Priority`] variant.
    fn backlog_slot(&mut self, priority: Priority) -> &mut u64 {
        match priority {
            Priority::Low => &mut self.backlog[0],
            Priority::Normal => &mut self.backlog[1],
            Priority::High => &mut self.backlog[2],
        }
    }

    /// Offers `query` for admission at virtual time `now` against a pool
    /// of `pool_len` sets. On success the query is queued and its ticket
    /// returned; on failure nothing is queued and the [`RejectReason`]
    /// says why. A deadline of `Some(d)` means "useless unless finished
    /// by virtual time `d`": admission refuses immediately when
    /// `now + backlog_ahead + cost > d`, so callers learn at submission
    /// time — not after waiting — that the answer cannot arrive in time.
    pub fn admit(
        &mut self,
        query: SeedQuery,
        priority: Priority,
        deadline: Option<u64>,
        now: u64,
        pool_len: u32,
    ) -> Result<u64, RejectReason> {
        if self.entries.len() >= self.capacity {
            self.stats.rejected_queue_full += 1;
            return Err(RejectReason::QueueFull { capacity: self.capacity });
        }
        let cost = estimated_cost(&query, pool_len);
        let earliest_finish = now + self.backlog_ahead(priority) + cost;
        if let Some(deadline) = deadline {
            if earliest_finish > deadline {
                self.stats.rejected_deadline += 1;
                return Err(RejectReason::DeadlineUnmeetable { earliest_finish, deadline });
            }
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        *self.backlog_slot(priority) += cost;
        self.entries.push(Pending { query, priority, deadline, cost, arrived: now, ticket });
        self.stats.admitted += 1;
        Ok(ticket)
    }

    /// Removes and returns up to `max` queries in service order —
    /// priority descending, FIFO within a priority — at virtual time
    /// `now`. Admitted queries whose deadline has already passed are
    /// dropped (counted in [`AdmissionStats::expired`], not returned):
    /// after a burst it is better to shed work nobody can use than to
    /// serve it late at the expense of queries that can still make it.
    pub fn drain(&mut self, now: u64, max: usize) -> Vec<Pending> {
        // Service order must not depend on Vec layout games: sort by
        // (priority desc, ticket asc) — a total, deterministic order.
        self.entries
            .sort_by(|a, b| b.priority.cmp(&a.priority).then_with(|| a.ticket.cmp(&b.ticket)));
        let mut out = Vec::new();
        let mut kept = Vec::new();
        let mut drained = std::mem::take(&mut self.entries).into_iter();
        for entry in drained.by_ref() {
            if entry.deadline.is_some_and(|d| d < now) {
                *self.backlog_slot(entry.priority) -= entry.cost;
                self.stats.expired += 1;
                continue;
            }
            if out.len() < max {
                *self.backlog_slot(entry.priority) -= entry.cost;
                self.stats.drained += 1;
                out.push(entry);
            } else {
                kept.push(entry);
            }
        }
        kept.extend(drained);
        self.entries = kept;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(k: usize) -> SeedQuery {
        SeedQuery::top_k(k)
    }

    #[test]
    fn plan_groups_by_range_and_topic() {
        let weights: std::sync::Arc<[f64]> = vec![1.0; 10].into();
        let batch = vec![
            q(1),                                                  // full range
            q(2).over_range(0..50),                                // range A
            q(3),                                                  // full range again
            q(4).over_range(0..50),                                // range A again
            q(5).with_root_weights(weights.clone()).with_topic(7), // topic 7
            q(6).with_root_weights(weights.clone()).with_topic(7), // topic 7 again
            q(7).with_root_weights(weights.clone()),               // solo (no topic)
            q(8).with_root_weights(weights).with_topic(9),         // topic 9
        ];
        let plan = BatchPlan::build(&batch, 100);
        assert_eq!(plan.num_queries(), 8);
        assert_eq!(plan.num_groups(), 5);
        assert_eq!(plan.builds_saved(), 3);
        let keys: Vec<GroupKey> = plan.groups().iter().map(|g| g.key).collect();
        assert_eq!(
            keys,
            vec![
                GroupKey::Plain { start: 0, end: 100 },
                GroupKey::Plain { start: 0, end: 50 },
                GroupKey::Topic { start: 0, end: 100, topic: 7 },
                GroupKey::Solo { index: 6 },
                GroupKey::Topic { start: 0, end: 100, topic: 9 },
            ]
        );
        assert_eq!(plan.groups()[0].members, vec![0, 2]);
        assert_eq!(plan.groups()[1].members, vec![1, 3]);
        assert_eq!(plan.groups()[2].members, vec![4, 5]);
        // every index appears exactly once across groups
        let mut all: Vec<usize> = plan.groups().iter().flat_map(|g| g.members.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn plans_record_pool_len_and_generation() {
        let batch = vec![q(1), q(2).over_range(0..50)];
        let bare = BatchPlan::build(&batch, 100);
        assert_eq!(bare.pool_len(), 100);
        assert_eq!(bare.generation(), None);
        let pinned = BatchPlan::build_for_generation(&batch, 100, 3);
        assert_eq!(pinned.generation(), Some(3));
        // the stamp is metadata only: grouping is identical
        let keys = |p: &BatchPlan| p.groups().iter().map(|g| g.key).collect::<Vec<_>>();
        assert_eq!(keys(&bare), keys(&pinned));
        assert_eq!(bare.builds_saved(), pinned.builds_saved());
    }

    #[test]
    fn cost_model_scales_with_range_and_k() {
        assert_eq!(estimated_cost(&q(5), 256), 1 + 1 + 5);
        assert_eq!(estimated_cost(&q(5).over_range(0..512), 10_000), 1 + 2 + 5);
        assert!(estimated_cost(&q(1), 1_000_000) > estimated_cost(&q(1), 1000));
    }

    #[test]
    fn cost_model_derives_effective_k_from_the_budget() {
        // Uniform costs: ceil(budget / 1) rounds of selection at most.
        assert_eq!(estimated_cost(&SeedQuery::budgeted(5.0), 256), 1 + 1 + 5);
        assert_eq!(estimated_cost(&SeedQuery::budgeted(4.2), 256), 1 + 1 + 5);
        // Per-node costs: the cheapest node bounds the round count.
        let costs = NodeCosts::per_node(vec![2.0, 0.5, 4.0].into());
        assert_eq!(estimated_cost(&SeedQuery::budgeted(4.0).with_costs(costs), 256), 1 + 1 + 8);
        // A budgeted q(5) and a top-5 query cost the same: the admission
        // clock sees through the phrasing of the workload.
        assert_eq!(estimated_cost(&SeedQuery::budgeted(5.0), 256), estimated_cost(&q(5), 256));
    }

    #[test]
    fn cost_model_survives_malformed_budgeted_queries() {
        // Admission runs before engine validation: garbage budgets or
        // cost tables must fall back to the `k` estimate, not panic.
        assert_eq!(estimated_cost(&q(3).with_budget(f64::NAN), 256), 1 + 1 + 3);
        assert_eq!(estimated_cost(&q(3).with_budget(-1.0), 256), 1 + 1 + 3);
        let all_bad = NodeCosts::per_node(vec![f64::NAN, -2.0, 0.0].into());
        assert_eq!(estimated_cost(&q(3).with_budget(4.0).with_costs(all_bad), 256), 1 + 1 + 3);
        // Saturating cast: an absurd budget yields a huge but defined cost.
        assert!(estimated_cost(&SeedQuery::budgeted(f64::MAX), 256) > 1 << 60);
    }

    #[test]
    fn queue_full_rejects_with_capacity() {
        let mut queue = AdmissionQueue::new(2);
        assert!(queue.admit(q(1), Priority::Normal, None, 0, 100).is_ok());
        assert!(queue.admit(q(1), Priority::Normal, None, 0, 100).is_ok());
        let rejected = queue.admit(q(1), Priority::High, None, 0, 100);
        assert_eq!(rejected, Err(RejectReason::QueueFull { capacity: 2 }));
        let s = queue.stats();
        assert_eq!((s.admitted, s.rejected_queue_full), (2, 1));
    }

    #[test]
    fn unmeetable_deadline_rejects_at_the_door() {
        let mut queue = AdmissionQueue::new(16);
        // backlog of two normal queries, each cost 1 + 100/256 + 10 = 11
        queue.admit(q(10).over_range(0..100), Priority::Normal, None, 0, 100).unwrap();
        queue.admit(q(10).over_range(0..100), Priority::Normal, None, 0, 100).unwrap();
        // same query with a deadline inside the backlog: rejected, and the
        // reason carries the realizable finish time
        let r = queue.admit(q(10).over_range(0..100), Priority::Normal, Some(20), 0, 100);
        assert_eq!(r, Err(RejectReason::DeadlineUnmeetable { earliest_finish: 33, deadline: 20 }));
        // a High query only waits for High backlog (none): it fits
        assert!(queue.admit(q(10).over_range(0..100), Priority::High, Some(20), 0, 100).is_ok());
        assert_eq!(queue.stats().rejected_deadline, 1);
        // generous deadline admits
        assert!(queue.admit(q(10).over_range(0..100), Priority::Low, Some(1000), 0, 100).is_ok());
    }

    #[test]
    fn drain_orders_by_priority_then_fifo_and_expires() {
        let mut queue = AdmissionQueue::new(16);
        let t0 = queue.admit(q(1), Priority::Low, None, 0, 100).unwrap();
        let t1 = queue.admit(q(2), Priority::Normal, None, 0, 100).unwrap();
        let t2 = queue.admit(q(3), Priority::High, Some(5), 0, 100).unwrap();
        let t3 = queue.admit(q(4), Priority::Normal, None, 0, 100).unwrap();
        // each query costs 1 (base) + k; range 0..100 adds nothing
        assert_eq!(queue.backlog_cost(), 4 + (1 + 2 + 3 + 4));
        // virtual time 10: the High query's deadline (5) has passed
        let drained = queue.drain(10, 2);
        let tickets: Vec<u64> = drained.iter().map(|p| p.ticket).collect();
        assert_eq!(tickets, vec![t1, t3], "expired High dropped, Normal FIFO next");
        assert!(!tickets.contains(&t2));
        let s = queue.stats();
        assert_eq!((s.expired, s.drained), (1, 2));
        // the Low query is still waiting, backlog accounted
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.backlog_cost(), 2);
        let rest = queue.drain(10, 10);
        assert_eq!(rest[0].ticket, t0);
        assert!(queue.is_empty());
        assert_eq!(queue.backlog_cost(), 0);
    }

    #[test]
    fn replayed_admission_schedules_are_identical() {
        let run = || {
            let mut queue = AdmissionQueue::new(4);
            let mut log = Vec::new();
            let mut now = 0u64;
            for step in 0u64..40 {
                let pri = match step % 5 {
                    0 => Priority::High,
                    4 => Priority::Low,
                    _ => Priority::Normal,
                };
                let deadline = (step % 3 == 0).then_some(now + 20);
                let r = queue.admit(q((step % 7) as usize + 1), pri, deadline, now, 2000);
                log.push(r);
                if step % 4 == 3 {
                    for p in queue.drain(now, 2) {
                        now += p.cost;
                        log.push(Ok(p.ticket + 1000));
                    }
                }
            }
            (log, queue.stats())
        };
        assert_eq!(run(), run());
        let (_, stats) = run();
        assert!(stats.rejected_queue_full > 0 || stats.rejected_deadline > 0, "{stats:?}");
    }
}
