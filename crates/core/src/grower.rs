//! The single-writer growth handle: grow the pool while queries keep
//! serving, without a reader-side lock anywhere.
//!
//! [`Grower::extend`] clones the currently published (fully sealed)
//! pool, appends `additional` deterministically sampled sets, seals them
//! as one new epoch, pre-freezes the epoch's
//! [`GainSnapshot`](sns_rrset::GainSnapshot) into the engine's cache,
//! and publishes the grown pool as the next generation of the engine's
//! [`EpochDirectory`](sns_rrset::EpochDirectory). Query workers that
//! pinned the old generation keep answering against it untouched; new
//! queries pin the grown pool and find the new epoch's snapshot already
//! frozen — growth never induces a query-level cache miss.
//!
//! The clone-extend-publish shape is what makes the reader side
//! lock-free: readers never observe a pool mid-mutation because the pool
//! they pinned is immutable forever. The clone costs `O(pool bytes)`,
//! the same asymptotics as the seal's counting-sort rebuild that an
//! in-place extension already paid — growth work stays proportional to
//! the pool, queries stay wait-free.
//!
//! Exclusive growth is enforced by a writer mutex on the engine
//! ([`SeedQueryEngine::grower`](crate::SeedQueryEngine::grower) hands
//! out borrows freely; concurrent `extend` calls serialize). That mutex
//! is the *only* lock growth takes, and no query path ever touches it.

use std::sync::{Arc, PoisonError};

use sns_rrset::{DirectoryWriter, RrCollection, SealOutcome};

use crate::{SamplingContext, SeedQueryEngine};

/// The engine's writer-side state, owned by the engine behind its writer
/// mutex: the directory publish handle plus the deterministic sample
/// cursor.
#[derive(Debug)]
pub(crate) struct GrowerState {
    /// Publish handle of the engine's pool directory. Its `current()`
    /// value is always the latest published, fully sealed pool.
    pub(crate) dir_writer: DirectoryWriter<RrCollection>,
    /// Next sample index of the deterministic stream — growth continues
    /// where the constructor stopped, so a grown engine's pool is
    /// bit-identical to sampling the final size in one shot.
    pub(crate) next_sample_index: u64,
}

/// What one [`Grower::extend`] call did. Carries the [`SealOutcome`] so
/// a grow loop can distinguish "nothing was pending" from "a new epoch
/// was published".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthOutcome {
    generation: u64,
    seal: SealOutcome,
    pool_len: u64,
}

impl GrowthOutcome {
    /// The directory generation serving after this call — a fresh one if
    /// an epoch was published, the unchanged current one otherwise.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the call sealed (and published) a new epoch, and its id
    /// range if so.
    pub fn seal(&self) -> &SealOutcome {
        &self.seal
    }

    /// Sets in the pool this call left published.
    pub fn pool_len(&self) -> u64 {
        self.pool_len
    }
}

/// A borrowed growth handle on a [`SeedQueryEngine`] — see the module
/// docs. Obtain with [`SeedQueryEngine::grower`]; needs only `&self`, so
/// one thread can grow while others answer from the same shared engine.
#[derive(Debug)]
pub struct Grower<'e> {
    engine: &'e SeedQueryEngine,
}

impl<'e> Grower<'e> {
    pub(crate) fn new(engine: &'e SeedQueryEngine) -> Self {
        Grower { engine }
    }

    /// Grows the published pool by `additional` sets (continuing the
    /// deterministic stream, so the result is bit-identical to having
    /// sampled the final size up front), seals them as **one new
    /// epoch**, pre-freezes that epoch's gain snapshot, and publishes
    /// the grown pool as the next directory generation. Queries running
    /// concurrently keep answering from whatever generation they pinned;
    /// nothing cached is invalidated (epoch boundaries are append-only).
    ///
    /// With `additional == 0` nothing is pending: no epoch is sealed, no
    /// generation is published, and the returned
    /// [`GrowthOutcome::seal`] is [`SealOutcome::AlreadySealed`].
    ///
    /// Concurrent `extend` calls serialize on the engine's writer mutex.
    /// The mutex recovers from poisoning: all writer state is mutated
    /// only after the fallible sampling/sealing work succeeded, so a
    /// panicking grower leaves the directory and cursor consistent and
    /// the next call simply retries.
    pub fn extend(&self, ctx: &SamplingContext<'_>, additional: u64) -> GrowthOutcome {
        let mut state = self.engine.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let mut pool: RrCollection = (**state.dir_writer.current()).clone();
        let old_len = pool.len();
        let bounds_before = pool.epoch_boundaries().len();
        let from = state.next_sample_index;
        let threads = self.engine.threads;
        if threads > 1 {
            pool.extend_parallel(&ctx.sampler(0), from, additional, threads);
        } else {
            let mut sampler = ctx.sampler(0);
            pool.extend_sequential(&mut sampler, from, additional);
        }
        // `extend_*` may already have sealed the tail (the index compacts
        // once enough entries are pending), so this raw outcome can say
        // `AlreadySealed` even though the pool grew. Publishing is
        // therefore decided by growth, and the reported outcome covers
        // the full appended range.
        let _ = pool.seal_parallel(threads);
        let pool_len = pool.len() as u64;
        let (generation, seal) = if pool.len() > old_len {
            let pool = Arc::new(pool);
            // Freeze every newly sealed epoch's snapshot *before*
            // publishing: the first query against the grown pool finds
            // them cached (no query-level miss), and queries pinned to
            // older generations never see the entries' keys.
            let bounds = pool.epoch_boundaries().to_vec();
            for e in bounds_before..bounds.len() {
                let lo = if e == 0 { 0 } else { bounds[e - 1] };
                self.engine.freeze_epoch(&pool, &(lo..bounds[e]));
            }
            let generation = state.dir_writer.publish(Arc::clone(&pool));
            state.next_sample_index += additional;
            let epoch =
                sns_rrset::narrow::set_count(old_len)..sns_rrset::narrow::set_count(pool.len());
            (generation, SealOutcome::EpochSealed { epoch })
        } else {
            // Nothing pending — keep serving the current generation
            // rather than publishing an identical clone.
            (self.engine.directory.generation(), SealOutcome::AlreadySealed)
        };
        GrowthOutcome { generation, seal, pool_len }
    }
}
