//! Error type for the algorithm layer.

use std::fmt;

/// Errors from SSA/D-SSA and the surrounding framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Parameters outside their valid domain (message explains which).
    InvalidParams(String),
    /// Propagated graph-layer failure (e.g. building a weighted root
    /// distribution from degenerate weights).
    Graph(sns_graph::GraphError),
    /// Propagated persistent-pool-store failure (corruption, fingerprint
    /// mismatch, I/O) from saving or loading a
    /// [`crate::SeedQueryEngine`].
    Store(sns_rrset::StoreError),
    /// A broken internal invariant the serving path refuses to panic
    /// over (e.g. a batch worker left an answer slot empty). Seeing this
    /// is a bug in this crate, not in the caller's input — but it is
    /// reported as an error, per the panic-path contract
    /// (`docs/ARCHITECTURE.md` §6), instead of taking the process down.
    Internal(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Store(e) => write!(f, "pool store error: {e}"),
            CoreError::Internal(msg) => {
                write!(f, "internal invariant violated (bug in sns-core): {msg}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sns_graph::GraphError> for CoreError {
    fn from(e: sns_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<sns_rrset::StoreError> for CoreError {
    fn from(e: sns_rrset::StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidParams("k must be >= 1".into());
        assert!(e.to_string().contains("k must be"));
        assert!(e.source().is_none());
        let e: CoreError = sns_graph::GraphError::EmptyGraph.into();
        assert!(e.source().is_some());
    }
}
