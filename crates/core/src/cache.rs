//! The engine's snapshot cache, restructured for lock-free reads.
//!
//! PR-4 made snapshots epoch-incremental; this module makes looking them
//! up wait-free for query workers. The map of cached snapshots is an
//! immutable [`BTreeMap`] published through an
//! [`EpochDirectory`](sns_rrset::EpochDirectory) — readers pin the
//! current map generation with one atomic load and search it without
//! acquiring anything. Mutation is copy-on-write behind a single writer
//! mutex: an insert clones the map, applies the change plus any LRU
//! evictions, and publishes the new map as the next generation. Readers
//! that pinned the old map keep using it (their `Arc` keeps it alive);
//! new lookups see the new one.
//!
//! LRU stamps ride *outside* the copy-on-write value: each entry is an
//! `Arc<CacheEntry>` shared by every published map generation, and its
//! `last_used` stamp is an atomic the lock-free read path updates in
//! place. Eviction order therefore sees every touch, even ones made
//! through older pinned maps. Counters are plain atomics; under
//! sequential use they reproduce the exact values the pre-refactor
//! locked cache reported (the engine's pinned counter tests keep
//! passing unchanged), and under concurrency they are exact except for
//! the documented racing double-build, which may count one extra miss.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use sns_rrset::{DirectoryWriter, EpochDirectory, GainSnapshot, WeightedGainSnapshot};

use crate::engine::QueryStats;

/// Key of one snapshot-cache entry. `Ord` because the cache map is a
/// `BTreeMap` — iteration order (and therefore any eviction tie-break)
/// must be deterministic, per the workspace determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum CacheKey {
    /// Unweighted snapshot of `start..end`, built when `epochs` sealed
    /// boundaries were ≤ `end`. With today's growth paths the signature
    /// is constant per range — every constructor and the grower fully
    /// seal the pool before publishing it, so no queried `end` ever
    /// gains a later boundary at or below it. It is part of the key so
    /// that a future non-sealing append path re-keys (rather than serves
    /// forever) entries that covered then-pending sets: the stale entry
    /// would still be *correct* (ranges are immutable), just built
    /// without the epoch structure, and ages out by LRU.
    Plain {
        /// Range start (pool set id).
        start: u32,
        /// Range end (exclusive).
        end: u32,
        /// Sealed-boundary count at or below `end` when built.
        epochs: u32,
    },
    /// Weighted snapshot of `start..end` under the weight vector named
    /// by `topic`. No epoch signature: weighted snapshots are built
    /// whole-range and an id range's contents never change.
    Weighted {
        /// Range start (pool set id).
        start: u32,
        /// Range end (exclusive).
        end: u32,
        /// The weight vector's stable identity ([`crate::SeedQuery::topic`]).
        topic: u64,
    },
}

/// One cached snapshot (see [`CacheKey`]).
#[derive(Debug, Clone)]
pub(crate) enum CachedSnapshot {
    Plain(Arc<GainSnapshot>),
    /// Holds the weight vector the snapshot was built with: `Arc`
    /// identity verifies the caller's same-topic-same-weights contract,
    /// and keeping the allocation alive ensures the address cannot be
    /// recycled into a false match.
    Weighted(Arc<WeightedGainSnapshot>, Arc<[f64]>),
}

impl CachedSnapshot {
    fn bytes(&self) -> u64 {
        match self {
            CachedSnapshot::Plain(s) => s.memory_bytes(),
            // The retained weight vector counts against the budget: the
            // cache entry keeps it alive even after the caller drops its
            // handle, so it is memory this cache pins.
            CachedSnapshot::Weighted(s, w) => {
                s.memory_bytes() + (w.len() * std::mem::size_of::<f64>()) as u64
            }
        }
    }
}

/// One cache entry. Shared by `Arc` across published map generations so
/// the atomic `last_used` stamp is one cell no matter how many map
/// versions reference the entry. (`pub(crate)` only because the
/// `writer` field it flows through is — nothing outside this module
/// touches entries.)
#[derive(Debug)]
pub(crate) struct CacheEntry {
    snap: CachedSnapshot,
    bytes: u64,
    /// LRU stamp, updated in place by lock-free readers.
    last_used: AtomicU64,
}

/// The published, immutable cache state: a snapshot-keyed map whose
/// values are shared entries (see [`CacheEntry`]).
type CacheMap = BTreeMap<CacheKey, Arc<CacheEntry>>;

/// Cumulative counters, all relaxed atomics — bumped from the lock-free
/// read path and the writer alike. See [`QueryStats`] for field
/// semantics.
#[derive(Debug, Default)]
struct CacheCounters {
    snapshot_hits: AtomicU64,
    snapshot_misses: AtomicU64,
    weighted_hits: AtomicU64,
    weighted_misses: AtomicU64,
    evictions: AtomicU64,
    epochs_frozen: AtomicU64,
    merges: AtomicU64,
    cached_bytes: AtomicU64,
    planned_batches: AtomicU64,
    planner_groups: AtomicU64,
    planner_builds_saved: AtomicU64,
}

/// The engine's snapshot cache: one map for per-epoch, merged-range and
/// weighted-by-topic snapshots, LRU-evicted against a byte budget.
/// Reads ([`SnapshotCache::get`], [`SnapshotCache::stats`]) acquire no
/// locks; only inserts serialize behind the writer mutex.
#[derive(Debug)]
pub(crate) struct SnapshotCache {
    /// The published map; readers pin it with one atomic load.
    map: Arc<EpochDirectory<CacheMap>>,
    /// The single-writer publish handle. `pub(crate)` so the engine's
    /// poison test can wound it the way a crashed worker would.
    pub(crate) writer: Mutex<DirectoryWriter<CacheMap>>,
    /// Monotone access clock backing the LRU order.
    clock: AtomicU64,
    /// Byte budget; plain atomic so reconfiguring it never blocks reads.
    budget: AtomicU64,
    counters: CacheCounters,
}

impl SnapshotCache {
    pub(crate) fn new(budget: u64) -> Self {
        let (map, writer) = EpochDirectory::new(Arc::new(CacheMap::new()));
        SnapshotCache {
            map,
            writer: Mutex::new(writer),
            clock: AtomicU64::new(0),
            budget: AtomicU64::new(budget),
            counters: CacheCounters::default(),
        }
    }

    /// Looks `key` up in the currently published map and refreshes its
    /// LRU stamp — no locks, one atomic pin. Does not touch the hit/miss
    /// counters; the query-level callers decide what counts.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<CachedSnapshot> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let (_, map) = self.map.pin();
        let entry = map.get(key)?;
        entry.last_used.store(now, Ordering::Relaxed);
        Some(entry.snap.clone())
    }

    /// Inserts (or replaces) `key` copy-on-write and publishes the new
    /// map, then evicts least-recently-used entries until the budget
    /// holds again. The entry just inserted is never evicted — a cache
    /// too small for one snapshot still serves it to its own query. The
    /// writer mutex recovers from poisoning: cache contents are pure
    /// functions of the sealed pool (at worst a half-done publish costs
    /// a rebuild), so a worker that panicked mid-insert must not wedge
    /// every subsequent miss.
    pub(crate) fn insert(&self, key: CacheKey, snap: CachedSnapshot) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let mut map: CacheMap = (**writer.current()).clone();
        let bytes = snap.bytes();
        map.insert(key, Arc::new(CacheEntry { snap, bytes, last_used: AtomicU64::new(now) }));
        let budget = self.budget.load(Ordering::Relaxed);
        let mut total: u64 = map.values().map(|e| e.bytes).sum();
        // `len > 1` guarantees a non-inserted entry exists, but the
        // serving path must not panic on a broken invariant — a `None`
        // victim (impossible today) just stops evicting, leaving the
        // cache over budget until the next insert.
        while total > budget && map.len() > 1 {
            let victim = map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            let Some(evicted) = victim.and_then(|v| map.remove(&v)) else { break };
            total -= evicted.bytes;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.counters.cached_bytes.store(total, Ordering::Relaxed);
        writer.publish(Arc::new(map));
    }

    /// Reconfigures the byte budget. Takes effect at the next insert;
    /// never blocks or invalidates readers.
    pub(crate) fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// Assembles the cumulative counters — pure atomic loads, no locks.
    pub(crate) fn stats(&self) -> QueryStats {
        let c = &self.counters;
        QueryStats {
            snapshot_hits: c.snapshot_hits.load(Ordering::Relaxed),
            snapshot_misses: c.snapshot_misses.load(Ordering::Relaxed),
            weighted_hits: c.weighted_hits.load(Ordering::Relaxed),
            weighted_misses: c.weighted_misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            epochs_frozen: c.epochs_frozen.load(Ordering::Relaxed),
            merges: c.merges.load(Ordering::Relaxed),
            cached_bytes: c.cached_bytes.load(Ordering::Relaxed),
            budget_bytes: self.budget.load(Ordering::Relaxed),
            planned_batches: c.planned_batches.load(Ordering::Relaxed),
            planner_groups: c.planner_groups.load(Ordering::Relaxed),
            planner_builds_saved: c.planner_builds_saved.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_snapshot_hit(&self) {
        self.counters.snapshot_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_snapshot_miss(&self) {
        self.counters.snapshot_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_weighted_hit(&self) {
        self.counters.weighted_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_weighted_miss(&self) {
        self.counters.weighted_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_merge(&self) {
        self.counters.merges.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_epoch_frozen(&self) {
        self.counters.epochs_frozen.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one planned batch: its group count and the snapshot
    /// resolutions its grouping saved.
    pub(crate) fn note_planned(&self, groups: u64, builds_saved: u64) {
        self.counters.planned_batches.fetch_add(1, Ordering::Relaxed);
        self.counters.planner_groups.fetch_add(groups, Ordering::Relaxed);
        self.counters.planner_builds_saved.fetch_add(builds_saved, Ordering::Relaxed);
    }
}
