//! The frozen-pool seed-query engine — the serving-side counterpart of
//! the one-shot SSA/D-SSA solvers.
//!
//! A solver run ends with a pool of RR sets whose greedy cover *is* the
//! answer; a service wants to keep that pool and answer many follow-up
//! questions against it: different budgets `k`, different pool slices,
//! "what if these influencers are unavailable" (excluded seeds), "we
//! already signed these" (forced seeds), and "how does it look for
//! *this* target group" (per-query weighted universes via TVM root
//! weights). [`SeedQueryEngine`] seals a pool once, freezes the
//! initial-gain state of each queried slice in a
//! [`sns_rrset::GainSnapshot`] (built on first use, cached per range),
//! and answers [`SeedQuery`] batches thread-parallel with per-worker
//! [`GreedyScratch`]es. Results are **bit-identical** to calling
//! [`sns_rrset::max_coverage_range`] (or the constrained/weighted
//! selection) directly, and batch answers are independent of thread
//! count and batch composition.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sns_graph::NodeId;
use sns_rrset::{CoverageView, GainSnapshot, GreedyScratch, RrCollection, SeedConstraints};

use crate::{CoreError, SamplingContext};

/// One seed-selection question against a frozen pool. Construct with
/// [`SeedQuery::top_k`] and refine with the builder methods; the
/// defaults mean "plain greedy over the whole pool".
#[derive(Debug, Clone, Default)]
pub struct SeedQuery {
    /// Seed budget (clamped to the node count like the solvers).
    pub k: usize,
    /// Pool id slice to select over; `None` means the whole pool.
    pub range: Option<Range<u32>>,
    /// Seeds selected unconditionally first, consuming budget and
    /// coverage (e.g. influencers already under contract).
    pub forced: Vec<NodeId>,
    /// Nodes the answer must never contain — not even as padding.
    pub excluded: Vec<NodeId>,
    /// Per-node target weights `b(v)`: when set, the query maximizes the
    /// covered *weight* mass (`w_set = b(root)`, uniform-root pools) and
    /// the influence estimate becomes a targeted influence. See
    /// `sns_rrset::snapshot` for the estimator.
    pub root_weights: Option<Vec<f64>>,
}

impl SeedQuery {
    /// The plain question: the best `k` seeds over the whole pool.
    pub fn top_k(k: usize) -> Self {
        SeedQuery { k, ..SeedQuery::default() }
    }

    /// Restricts selection to a pool id slice.
    pub fn over_range(mut self, range: Range<u32>) -> Self {
        self.range = Some(range);
        self
    }

    /// Pre-selects `seeds` (in order) before the greedy loop.
    pub fn with_forced(mut self, seeds: Vec<NodeId>) -> Self {
        self.forced = seeds;
        self
    }

    /// Forbids `nodes` from appearing in the answer.
    pub fn with_excluded(mut self, nodes: Vec<NodeId>) -> Self {
        self.excluded = nodes;
        self
    }

    /// Targets the query at the group weighted by `weights` (one
    /// finite nonnegative entry per node).
    pub fn with_root_weights(mut self, weights: Vec<f64>) -> Self {
        self.root_weights = Some(weights);
        self
    }
}

/// Answer to one [`SeedQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeedAnswer {
    /// Selected seeds, in selection order (forced seeds first).
    pub seeds: Vec<NodeId>,
    /// Covered in-range sets (unweighted queries) or covered weight mass
    /// (weighted queries).
    pub covered: f64,
    /// `Γ·covered/|slice|` — the Lemma-1 influence estimate of `seeds`
    /// over the queried slice (targeted influence for weighted queries).
    pub influence_estimate: f64,
    /// Marginal (weighted) coverage gain of each seed when selected.
    pub marginal_gains: Vec<f64>,
    /// The pool id slice the query ran over.
    pub range: Range<u32>,
}

/// A sealed RR-set pool plus cached per-range [`GainSnapshot`]s, serving
/// [`SeedQuery`] batches (see the module docs).
#[derive(Debug)]
pub struct SeedQueryEngine {
    pool: RrCollection,
    gamma: f64,
    threads: usize,
    /// Frozen initial-gain state per queried `(start, end)` slice, built
    /// on first use. Snapshot contents are a pure function of the sealed
    /// pool and the range, so a racing double-build is harmless — both
    /// instances are identical and either may be cached.
    snapshots: Mutex<HashMap<(u32, u32), Arc<GainSnapshot>>>,
    /// Selection scratch reused by [`SeedQueryEngine::answer`] — its
    /// stamp/gain tables stay at high-water size instead of costing an
    /// `O(n + range)` allocation-plus-zeroing per single query, which
    /// would rival the very histogram work the snapshot path saves.
    /// (`answer_batch` workers carry their own, uncontended.)
    answer_scratch: Mutex<GreedyScratch>,
}

impl SeedQueryEngine {
    /// Freezes `pool` (sealing its pending index tier) for serving.
    /// `gamma` is the universe mass behind influence estimates (`n` for
    /// uniform-root pools, `Σ b(v)` if the pool itself was WRIS-sampled).
    pub fn from_pool(mut pool: RrCollection, gamma: f64) -> Self {
        pool.seal();
        SeedQueryEngine {
            pool,
            gamma,
            threads: 1,
            snapshots: Mutex::new(HashMap::new()),
            answer_scratch: Mutex::new(GreedyScratch::new()),
        }
    }

    /// Samples a fresh `count`-set pool from `ctx` (stream 0, the same
    /// deterministic stream the solvers draw from, parallel per
    /// `ctx.threads()`) and freezes it. The paper's estimate-then-select
    /// split as a service: size the pool once with the RIS thresholds of
    /// [`crate::bounds`] or a prior [`crate::Ssa`]/[`crate::Dssa`] run,
    /// then answer every follow-up question from the frozen samples.
    pub fn sample(ctx: &SamplingContext<'_>, count: u64) -> Self {
        let mut pool = RrCollection::new(ctx.graph().num_nodes());
        if ctx.threads() > 1 {
            pool.extend_parallel(&ctx.sampler(0), 0, count, ctx.threads());
        } else {
            let mut sampler = ctx.sampler(0);
            pool.extend_sequential(&mut sampler, 0, count);
        }
        Self::from_pool(pool, ctx.gamma()).with_threads(ctx.threads())
    }

    /// Sets the worker-thread budget for [`SeedQueryEngine::answer_batch`]
    /// (answers never depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The frozen pool.
    pub fn pool(&self) -> &RrCollection {
        &self.pool
    }

    /// The universe mass Γ behind influence estimates.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Answers one query, reusing the engine's cached selection scratch
    /// (serialized behind a lock — concurrent callers should use
    /// [`SeedQueryEngine::answer_batch`], whose workers scratch
    /// independently). Per-range gain snapshots are cached either way.
    pub fn answer(&self, query: &SeedQuery) -> Result<SeedAnswer, CoreError> {
        self.validate(query)?;
        let mut scratch = self.answer_scratch.lock().expect("answer scratch poisoned");
        Ok(self.answer_validated(query, &mut scratch))
    }

    /// Answers a batch of heterogeneous queries, thread-parallel across
    /// queries with per-worker scratches. `answers[i]` corresponds to
    /// `queries[i]` and is bit-identical to answering sequentially (each
    /// answer depends only on the frozen pool and its query). The whole
    /// batch is validated before any work starts.
    pub fn answer_batch(&self, queries: &[SeedQuery]) -> Result<Vec<SeedAnswer>, CoreError> {
        for (i, q) in queries.iter().enumerate() {
            self.validate(q).map_err(|e| CoreError::InvalidParams(format!("query {i}: {e}")))?;
        }
        let workers = self.threads.min(queries.len()).max(1);
        if workers == 1 {
            let mut scratch = GreedyScratch::new();
            return Ok(queries.iter().map(|q| self.answer_validated(q, &mut scratch)).collect());
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<SeedAnswer>> = queries.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut scratch = GreedyScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(query) = queries.get(i) else { break };
                        let answer = self.answer_validated(query, &mut scratch);
                        slots[i].set(answer).expect("each query index claimed once");
                    }
                });
            }
        });
        Ok(slots.into_iter().map(|s| s.into_inner().expect("all queries answered")).collect())
    }

    fn validate(&self, query: &SeedQuery) -> Result<(), CoreError> {
        let err = |msg: String| Err(CoreError::InvalidParams(msg));
        let n = self.pool.num_nodes();
        if query.k == 0 {
            return err("k must be >= 1".into());
        }
        if let Some(r) = &query.range {
            if r.start > r.end || r.end as usize > self.pool.len() {
                return err(format!(
                    "range {r:?} out of bounds for a pool of {} sets",
                    self.pool.len()
                ));
            }
        }
        if query.forced.len() > query.k.min(n as usize) {
            return err(format!(
                "{} forced seeds exceed the budget k = {}",
                query.forced.len(),
                query.k.min(n as usize)
            ));
        }
        for &v in query.forced.iter().chain(&query.excluded) {
            if v >= n {
                return err(format!("node {v} out of range (n = {n})"));
            }
        }
        if let Some(f) = query.forced.iter().find(|f| query.excluded.contains(f)) {
            return err(format!("node {f} is both forced and excluded"));
        }
        if let Some(w) = &query.root_weights {
            if w.len() != n as usize {
                return err(format!("{} weights for {n} nodes", w.len()));
            }
            if let Some((v, &bad)) = w.iter().enumerate().find(|(_, w)| !w.is_finite() || **w < 0.0)
            {
                return err(format!("weight b({v}) = {bad} is not finite and nonnegative"));
            }
        }
        Ok(())
    }

    /// Answers a pre-validated query. Infallible and side-effect-free
    /// modulo the snapshot cache — the invariant the parallel batch path
    /// relies on.
    fn answer_validated(&self, query: &SeedQuery, scratch: &mut GreedyScratch) -> SeedAnswer {
        let range = query.range.clone().unwrap_or(0..self.pool.len() as u32);
        let len = (range.end - range.start) as u64;
        let view = CoverageView::build(&self.pool, range.clone());
        let constraints = SeedConstraints { forced: &query.forced, excluded: &query.excluded };
        match &query.root_weights {
            Some(weights) => {
                let r = view.select_weighted(query.k, weights, &constraints, scratch);
                let influence =
                    if len == 0 { 0.0 } else { self.gamma * r.covered_weight / len as f64 };
                SeedAnswer {
                    seeds: r.seeds,
                    covered: r.covered_weight,
                    influence_estimate: influence,
                    marginal_gains: r.marginal_gains,
                    range,
                }
            }
            None => {
                let snapshot = self.snapshot_for(&range);
                let r = view.select_from_snapshot_constrained(
                    &snapshot,
                    query.k,
                    &constraints,
                    scratch,
                );
                let influence = r.influence_estimate(self.gamma, len);
                SeedAnswer {
                    seeds: r.seeds,
                    covered: r.covered as f64,
                    influence_estimate: influence,
                    marginal_gains: r.marginal_gains.iter().map(|&g| g as f64).collect(),
                    range,
                }
            }
        }
    }

    fn snapshot_for(&self, range: &Range<u32>) -> Arc<GainSnapshot> {
        let key = (range.start, range.end);
        if let Some(snap) = self.snapshots.lock().expect("snapshot cache poisoned").get(&key) {
            return Arc::clone(snap);
        }
        // Built outside the lock: O(entries) histogram work must not
        // serialize the whole batch behind one slow range.
        let built = Arc::new(GainSnapshot::build(&CoverageView::build(&self.pool, range.clone())));
        let mut cache = self.snapshots.lock().expect("snapshot cache poisoned");
        Arc::clone(cache.entry(key).or_insert(built))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dssa, Params};
    use sns_diffusion::Model;
    use sns_graph::{gen, WeightModel};
    use sns_rrset::max_coverage_range;

    fn engine(sets: u64, seed: u64) -> SeedQueryEngine {
        let g = gen::erdos_renyi(300, 1800, seed).build(WeightModel::WeightedCascade).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(seed);
        SeedQueryEngine::sample(&ctx, sets)
    }

    #[test]
    fn engine_matches_direct_max_coverage() {
        let e = engine(2000, 1);
        for k in [1usize, 5, 20] {
            let ans = e.answer(&SeedQuery::top_k(k)).unwrap();
            let direct = max_coverage_range(e.pool(), k, 0..2000);
            assert_eq!(ans.seeds, direct.seeds, "k = {k}");
            assert_eq!(ans.covered, direct.covered as f64);
        }
        // ranged query against the matching direct call
        let ans = e.answer(&SeedQuery::top_k(4).over_range(500..1500)).unwrap();
        let direct = max_coverage_range(e.pool(), 4, 500..1500);
        assert_eq!(ans.seeds, direct.seeds);
        assert_eq!(ans.range, 500..1500);
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let e = engine(1500, 2);
        let queries: Vec<SeedQuery> = (1..=12)
            .map(|k| {
                let q = SeedQuery::top_k(k);
                if k % 2 == 0 {
                    q.over_range(0..750)
                } else {
                    q
                }
            })
            .collect();
        let sequential = e.answer_batch(&queries).unwrap();
        let parallel = engine(1500, 2).with_threads(4).answer_batch(&queries).unwrap();
        assert_eq!(sequential, parallel);
        for (k, ans) in (1..=12).zip(&sequential) {
            assert_eq!(ans.seeds.len(), k);
        }
    }

    #[test]
    fn snapshot_cache_serves_repeated_ranges() {
        let e = engine(1000, 3);
        let a = e.answer(&SeedQuery::top_k(3).over_range(0..500)).unwrap();
        let b = e.answer(&SeedQuery::top_k(3).over_range(0..500)).unwrap();
        assert_eq!(a, b);
        assert_eq!(e.snapshots.lock().unwrap().len(), 1);
        e.answer(&SeedQuery::top_k(3)).unwrap();
        assert_eq!(e.snapshots.lock().unwrap().len(), 2);
    }

    #[test]
    fn forced_and_excluded_seeds_respected() {
        let e = engine(1200, 4);
        let plain = e.answer(&SeedQuery::top_k(5)).unwrap();
        let star = plain.seeds[0];
        let without = e.answer(&SeedQuery::top_k(5).with_excluded(vec![star])).unwrap();
        assert!(!without.seeds.contains(&star));
        assert!(without.covered <= plain.covered);
        let forced = e.answer(&SeedQuery::top_k(5).with_forced(vec![7, 9])).unwrap();
        assert_eq!(&forced.seeds[..2], &[7, 9]);
        assert_eq!(forced.seeds.len(), 5);
    }

    #[test]
    fn weighted_query_targets_the_group() {
        // Weight only nodes 0..30: the engine must report targeted
        // influence ≤ the group mass and pick seeds covering it.
        let e = engine(3000, 5);
        let mut w = vec![0.0f64; 300];
        for slot in w.iter_mut().take(30) {
            *slot = 1.0;
        }
        let ans = e.answer(&SeedQuery::top_k(5).with_root_weights(w.clone())).unwrap();
        assert_eq!(ans.seeds.len(), 5);
        // Γ_query = 30, estimate uses the engine's Γ = n with the
        // weighted coverage — bounded by the actual group reach
        assert!(ans.influence_estimate <= 30.0 * 1.5, "Î_T = {}", ans.influence_estimate);
        assert!(ans.covered > 0.0);
    }

    #[test]
    fn validation_rejects_malformed_queries() {
        let e = engine(500, 6);
        assert!(e.answer(&SeedQuery::top_k(0)).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).over_range(0..501)).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let backwards = SeedQuery::top_k(1).over_range(10..5);
        assert!(e.answer(&backwards).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_forced(vec![1, 2])).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_forced(vec![300])).is_err());
        assert!(e
            .answer(&SeedQuery::top_k(3).with_forced(vec![5]).with_excluded(vec![5]))
            .is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_root_weights(vec![1.0; 3])).is_err());
        assert!(e.answer(&SeedQuery::top_k(1).with_root_weights(vec![-1.0; 300])).is_err());
        // a batch with one bad query fails closed, naming the query
        let batch = [SeedQuery::top_k(1), SeedQuery::top_k(0)];
        let err = e.answer_batch(&batch).unwrap_err().to_string();
        assert!(err.contains("query 1"), "{err}");
    }

    #[test]
    fn engine_reuses_a_solver_sized_pool() {
        // The intended deployment: D-SSA sizes the pool, the engine
        // serves from a pool of that size and reproduces the solution.
        let g = gen::erdos_renyi(300, 1800, 7).build(WeightModel::WeightedCascade).unwrap();
        let params = Params::new(5, 0.3, 0.1).unwrap();
        let ctx = SamplingContext::new(&g, Model::IndependentCascade).with_seed(11);
        let run = Dssa::new(params).run(&ctx).unwrap();
        let e = SeedQueryEngine::sample(&ctx, run.rr_sets_main);
        // D-SSA selected over its find half [0, main/2)
        let ans =
            e.answer(&SeedQuery::top_k(5).over_range(0..run.rr_sets_main as u32 / 2)).unwrap();
        assert_eq!(ans.seeds, run.seeds, "engine must reproduce the solver's cover");
    }
}
